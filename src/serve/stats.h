// Thread-safe service telemetry: per-endpoint latency histograms (reusing
// util/histogram bin layout for the p50/p99 quantiles), admission/rejection/
// QPS counters, queue-depth samples, and the micro-batcher's batch-size
// distribution. Dumpable through the repo's standard ASCII-table/CSV
// renderer. Latencies are wall-clock measurements and reporting-only: no
// request result depends on them.
//
// The record path is lock-free by construction. Writers land on one of a
// small number of *stripes* — slabs of relaxed atomics selected by a
// per-thread slot — so concurrent workers never contend on a mutex (the
// pre-stripe design serialized every record_* call on one lock, which showed
// up as the flat 1→8-client scaling curve in BENCH_serve.json). Readers
// aggregate across stripes on demand (merge-on-read).
//
// Memory-ordering contract:
//   * Every record_* increment is a relaxed atomic RMW; every read-side
//     aggregation is a relaxed load. Individual counters are never torn and
//     never lost.
//   * No ordering is promised BETWEEN counters: a reader racing a writer may
//     observe `completed` ahead of `accepted`, or a histogram total that
//     lags its bins. Monotone per-counter, eventually consistent overall.
//   * Exact totals (e.g. `accepted == completed` after drain) hold once the
//     reader has a real happens-before edge over the writers — joining the
//     worker pool (TuningService::stop) or any acquire/release handoff.
//     Tests and benches read after stop()/join and therefore see exact
//     values; live dashboards see a crossing-lag of at most a few ops.
//   * Every atomic op in this file names its ordering explicitly (the
//     kRelaxed alias) — enforced tree-wide for src/serve/ and src/net/ by
//     the `memory-order` rule in tools/check_determinism.py, so a future
//     edit cannot silently fall back to seq_cst or, worse, look ordered
//     without being chosen. There are no locks below the stripes; this
//     file is the leaf of the lock hierarchy (DESIGN.md §5e).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "serve/types.h"
#include "util/histogram.h"
#include "util/table.h"

namespace rafiki::serve {

struct StatsOptions {
  /// Latency histogram range [0, latency_hi_us) in microseconds; samples
  /// beyond are clamped into the last bin.
  double latency_hi_us = 20000.0;
  std::size_t latency_bins = 400;
  /// Batch-size histogram range [1, max_batch + 1).
  std::size_t max_batch = 64;
  /// Retrain latency histogram range [0, retrain_hi_us): background GA runs
  /// are orders of magnitude slower than request service.
  double retrain_hi_us = 5.0e6;
  std::size_t retrain_bins = 200;
  /// Hot-path stripe count (rounded up to a power of two). Each recording
  /// thread hashes to one stripe; more stripes = less false sharing at the
  /// cost of read-time aggregation work. 8 covers typical worker pools.
  std::size_t stripes = 8;
};

class ServiceStats {
 public:
  explicit ServiceStats(StatsOptions options = {});

  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    /// Turned away at admission: the bounded queue was full. Only
    /// record_reject touches this — never accepted work.
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t not_ready = 0;
    /// Turned away at admission: the service was already stopping.
    std::uint64_t rejected_shutdown = 0;
    /// Accepted, then finished with kShuttingDown (e.g. drained by stop()
    /// with no worker). Distinct from rejected_shutdown so admission-reject
    /// columns stay truthful and `accepted == completed` after drain.
    std::uint64_t failed_shutdown = 0;
    /// Accepted, then finished with kOverloaded (not currently produced by
    /// any path; kept so the failed-after-accept split is total).
    std::uint64_t failed_overload = 0;
    /// Responses served with Response::stale set (kObserveWindow only): the
    /// cache-missed window answered with the previous config while a
    /// background optimization was pending.
    std::uint64_t stale = 0;

    void merge(const Counters& other) noexcept;
  };

  /// Background-retrain telemetry (the RetrainWorker's counters).
  struct RetrainCounters {
    std::uint64_t runs = 0;       ///< tasks executed by the worker thread
    std::uint64_t coalesced = 0;  ///< enqueues absorbed by a pending same-bucket task
    std::uint64_t rejected = 0;   ///< enqueues dropped on a full retrain queue
    std::uint64_t cancelled = 0;  ///< queued tasks cancelled at shutdown
  };

  /// Fleet-admission telemetry (the tenant::TenantFleet's fairness counters):
  /// how many requests each admission stage turned away before the backend
  /// ever saw them. `admitted + quota_rejected + inflight_rejected +
  /// unknown_tenant` equals the number of try_submit calls that reached the
  /// fleet (exact after a happens-before edge, like every counter here).
  struct FleetCounters {
    std::uint64_t admitted = 0;           ///< passed tenant admission control
    std::uint64_t quota_rejected = 0;     ///< token-bucket rate limit (Overloaded)
    std::uint64_t inflight_rejected = 0;  ///< per-tenant in-flight cap (Overloaded)
    std::uint64_t unknown_tenant = 0;     ///< tenant id outside the fleet (NotReady)
  };

  /// Wire-level telemetry from the RPC front-end (net::Server). Folded into
  /// the same sink as the request counters so one stats object describes the
  /// whole serving process.
  struct WireCounters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t frames_in = 0;   ///< well-formed frames decoded off sockets
    std::uint64_t frames_out = 0;  ///< response + error frames queued for write
    /// Malformed frames (bad magic/version/length/enum/payload). Recoverable
    /// ones are answered with an error frame; fatal ones close the connection.
    std::uint64_t decode_errors = 0;
    std::uint64_t error_frames_sent = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    /// Write-coalescing telemetry: one "flush" is one per-connection drain
    /// attempt that issued at least one send(); `flushed_frames` counts the
    /// response/error frames those drains completed, so flushed_frames /
    /// flushes is the mean wire batch size and flush_syscalls / frames_out
    /// is the syscall cost per frame.
    std::uint64_t flushes = 0;
    std::uint64_t flush_syscalls = 0;
    std::uint64_t flushed_frames = 0;
    /// Flushes that hit EAGAIN (partial write parked for writability).
    std::uint64_t flush_eagain = 0;
    /// Connections still open: accepted - closed.
    std::uint64_t active() const noexcept { return connections_accepted - connections_closed; }
    double frames_per_flush() const noexcept {
      return flushes != 0 ? static_cast<double>(flushed_frames) / static_cast<double>(flushes)
                          : 0.0;
    }
    double flush_syscalls_per_frame() const noexcept {
      return frames_out != 0
                 ? static_cast<double>(flush_syscalls) / static_cast<double>(frames_out)
                 : 0.0;
    }
  };

  /// Merge-on-read view of one endpoint: every stripe of this stats object
  /// folded together. The sharded router merges these across shards to
  /// render one fleet-wide table (ShardedTuningService::stats_table).
  struct EndpointAggregate {
    explicit EndpointAggregate(const StatsOptions& options);
    Counters counters;
    Histogram latency;
    Histogram wire_latency;
    std::uint64_t latency_count = 0;
    double latency_sum = 0.0;
    std::uint64_t wire_count = 0;
    double wire_sum = 0.0;

    double mean_latency_us() const noexcept;
    /// Folds another shard's aggregate in; histogram ranges must match
    /// (same StatsOptions), which shards sharing one template guarantee.
    void merge(const EndpointAggregate& other) noexcept;
  };

  /// A request passed admission control; `queue_depth` is sampled just after.
  void record_accept(Endpoint endpoint, std::size_t queue_depth);
  /// A request was turned away at admission (Overloaded / ShuttingDown).
  void record_reject(Endpoint endpoint, Status reason);
  /// A request ran (or was triaged) by a worker; latency is queue + service
  /// time in microseconds.
  void record_done(Endpoint endpoint, Status status, double latency_us);
  /// One Predict micro-batch was executed with this many coalesced requests.
  void record_batch(std::size_t batch_size);
  /// A stale-marked response was served on this endpoint.
  void record_stale(Endpoint endpoint);

  // --- wire-level recording (called by net::Server) ---
  void record_connection_open();
  void record_connection_close();
  /// Bytes moved on sockets, counted per read()/write() chunk.
  void record_wire_read(std::size_t bytes);
  void record_wire_write(std::size_t bytes);
  void record_frame_in();
  void record_frame_out();
  void record_decode_error();
  void record_error_frame();
  /// Wire-side latency (decode -> response queued for write) per endpoint.
  void record_wire_latency(Endpoint endpoint, double latency_us);
  /// One per-connection flush: `frames` completed in `syscalls` send()s
  /// (frames is 0 when the drain parked on EAGAIN — the completing flush
  /// credits them); `hit_eagain` marks a partial write.
  void record_wire_flush(std::size_t frames, std::size_t syscalls, bool hit_eagain);

  // --- fleet-admission recording (called by tenant::TenantFleet) ---
  void record_tenant_admit();
  void record_quota_reject();
  void record_inflight_reject();
  void record_unknown_tenant();

  /// One background retrain task finished; latency is the task's run time.
  void record_retrain(double latency_us);
  /// A retrain task was enqueued; `queue_depth` is sampled just after.
  void record_retrain_enqueue(std::size_t queue_depth);
  void record_retrain_coalesced();
  void record_retrain_rejected();
  void record_retrain_cancelled(std::uint64_t count);

  Counters counters(Endpoint endpoint) const;
  Counters totals() const;
  EndpointAggregate endpoint_aggregate(Endpoint endpoint) const;
  RetrainCounters retrain_counters() const;
  FleetCounters fleet_counters() const;
  WireCounters wire_counters() const;
  double wire_latency_quantile(Endpoint endpoint, double q) const;
  double mean_wire_latency_us(Endpoint endpoint) const;
  double latency_quantile(Endpoint endpoint, double q) const;
  double mean_latency_us(Endpoint endpoint) const;
  double retrain_latency_quantile(double q) const;
  double mean_retrain_latency_us() const;
  double mean_retrain_depth() const;
  double max_retrain_depth() const;
  double mean_batch_size() const;
  double max_batch_size() const;
  double batch_quantile(double q) const;
  double mean_queue_depth() const;
  double max_queue_depth() const;
  std::uint64_t batches() const;

  /// Per-endpoint summary table ("endpoint | accepted | ok | overloaded |
  /// deadline | p50 | p99 | mean"); render() / to_csv() for output.
  Table table() const;
  /// Renders the standard per-endpoint table from externally merged
  /// aggregates, one entry per Endpoint in enum order — the sharded router's
  /// merge-on-read output shares the exact layout of a single service.
  static Table table_of(std::span<const EndpointAggregate> per_endpoint);
  /// Wire-level summary ("metric | value" rows: connections, frames, bytes,
  /// decode errors, per-endpoint wire p50/p99).
  Table wire_table() const;

  const StatsOptions& options() const noexcept { return options_; }

 private:
  /// Relaxed-atomic count/sum/max accumulator (the striped stand-in for the
  /// old Welford OnlineStats; only mean/max/count were ever consumed).
  struct AtomicAccum {
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
    void add(double x) noexcept {
      n.fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(x, std::memory_order_relaxed);
      double seen = max.load(std::memory_order_relaxed);
      while (x > seen &&
             !max.compare_exchange_weak(seen, x, std::memory_order_relaxed)) {
      }
    }
  };

  /// Relaxed-atomic fixed-bin histogram with the same bin layout as
  /// util/Histogram (uniform [lo, hi), clamped edges).
  struct AtomicHist {
    AtomicHist(double lo, double hi, std::size_t bins);
    void add(double x) noexcept;
    /// Folds this stripe's bins into a plain histogram (relaxed loads).
    void merge_into(Histogram& out) const noexcept;
    double lo;
    double hi;
    double width;
    std::vector<std::atomic<std::uint64_t>> bins;
  };

  enum CtrIdx : std::size_t {
    kIdxAccepted = 0,
    kIdxCompleted,
    kIdxOk,
    kIdxRejOverload,
    kIdxRejDeadline,
    kIdxNotReady,
    kIdxRejShutdown,
    kIdxFailedShutdown,
    kIdxFailedOverload,
    kIdxStale,
    kCtrCount,
  };

  enum WireIdx : std::size_t {
    kIdxConnOpen = 0,
    kIdxConnClosed,
    kIdxFramesIn,
    kIdxFramesOut,
    kIdxDecodeErr,
    kIdxErrFrames,
    kIdxBytesIn,
    kIdxBytesOut,
    kIdxFlushes,
    kIdxFlushSyscalls,
    kIdxFlushedFrames,
    kIdxFlushEagain,
    kWireCount,
  };

  struct EndpointStripe {
    explicit EndpointStripe(const StatsOptions& options);
    std::array<std::atomic<std::uint64_t>, kCtrCount> counters{};
    AtomicHist latency;
    AtomicAccum latency_stats;
    AtomicHist wire_latency;
    AtomicAccum wire_stats;
  };

  /// One writer slab. alignas keeps separate stripes off each other's cache
  /// lines; within a stripe, (mostly) one thread writes. Endpoint slabs sit
  /// behind unique_ptr because atomics make them non-movable.
  struct alignas(64) Stripe {
    explicit Stripe(const StatsOptions& options);
    std::vector<std::unique_ptr<EndpointStripe>> per_endpoint;  // kEndpointCount
    AtomicHist batch_hist;
    AtomicAccum batch_stats;
    std::atomic<std::uint64_t> batches{0};
    AtomicAccum depth_stats;
    std::array<std::atomic<std::uint64_t>, kWireCount> wire{};
  };

  Stripe& stripe() noexcept;
  EndpointStripe& endpoint_stripe(Endpoint endpoint) noexcept {
    return *stripe().per_endpoint[static_cast<std::size_t>(endpoint)];
  }
  std::uint64_t sum_counter(Endpoint endpoint, std::size_t idx) const noexcept;
  void fill_counters(Endpoint endpoint, Counters& out) const noexcept;

  StatsOptions options_;
  std::size_t stripe_mask_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Retrain telemetry is written by one background thread plus low-rate
  // enqueuers: plain (unstriped) relaxed atomics are contention-free enough.
  std::array<std::atomic<std::uint64_t>, 4> retrain_counters_{};
  // Fleet admission telemetry: written on the front-end's submit path, but
  // behind a per-tenant quota check that already does an atomic RMW — one
  // more unstriped relaxed counter does not change the contention picture.
  std::array<std::atomic<std::uint64_t>, 4> fleet_counters_{};
  AtomicHist retrain_hist_;
  AtomicAccum retrain_stats_;
  AtomicAccum retrain_depth_stats_;
};

}  // namespace rafiki::serve
