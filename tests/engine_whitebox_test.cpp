// White-box tests of the server's internal machinery through the public
// introspection hooks: backpressure, busy-set discipline, preload structure,
// cache warm state, window accounting, and the step() building block.
#include <gtest/gtest.h>

#include <unordered_set>

#include "engine/server.h"
#include "workload/generator.h"

namespace rafiki::engine {
namespace {

std::vector<workload::Op> writes(std::size_t n, std::int64_t first_key,
                                 std::uint32_t bytes = 256) {
  std::vector<workload::Op> ops(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops[i] = {workload::Op::Kind::kInsert, first_key + static_cast<std::int64_t>(i),
              bytes};
  }
  return ops;
}

std::vector<workload::Op> reads(std::size_t n, std::int64_t first_key) {
  std::vector<workload::Op> ops(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops[i] = {workload::Op::Kind::kRead, first_key + static_cast<std::int64_t>(i), 0};
  }
  return ops;
}

TEST(ServerWhitebox, StepReturnsPositiveVirtualTime) {
  Server server(Config::defaults());
  const auto batch = writes(256, 0);
  const double t = server.step(batch);
  EXPECT_GT(t, 0.0);
  EXPECT_NEAR(server.virtual_seconds(), t / 1e6, 1e-12);
  EXPECT_EQ(server.write_count(), 256u);
}

TEST(ServerWhitebox, EmptyStepIsFree) {
  Server server(Config::defaults());
  EXPECT_DOUBLE_EQ(server.step({}), 0.0);
}

TEST(ServerWhitebox, SustainedWritesFreezeAndFlushMemtables) {
  Server server(Config::defaults());
  std::int64_t key = 0;
  // Push enough bytes to force several flush cycles.
  for (int batch = 0; batch < 80; ++batch) {
    const auto ops = writes(256, key);
    key += 256;
    server.step(ops);
  }
  EXPECT_GT(server.flush_count(), 0u);
  EXPECT_GT(server.sstables().size(), 0u);
}

TEST(ServerWhitebox, ExtremeThresholdTriggersBackpressureStalls) {
  // Giant flush threshold plus a burst bigger than the memtable space:
  // freezing must force-complete flushes and record stall time.
  auto config = Config::defaults()
                    .with(ParamId::kMemtableCleanupThreshold, 0.8)
                    .with(ParamId::kMemtableSpaceMb, 1024)
                    .with(ParamId::kMemtableFlushWriters, 1);
  Server server(config);
  std::int64_t key = 0;
  for (int batch = 0; batch < 120; ++batch) {
    server.step(writes(256, key, 2048));  // large rows fill space fast
    key += 256;
  }
  EXPECT_GT(server.flush_count(), 1u);
  EXPECT_GT(server.write_stall_us(), 0.0);
}

TEST(ServerWhitebox, BusyTablesNeverOverlapAcrossJobs) {
  // Drive a write-heavy phase with eager compaction and verify on every
  // epoch that no table id is claimed by two active jobs (busy-set
  // discipline is what keeps merges linearizable).
  auto config = Config::defaults()
                    .with(ParamId::kMinCompactionThreshold, 3)
                    .with(ParamId::kConcurrentCompactors, 8)
                    .with(ParamId::kCompactionThroughputMbs, 8);  // slow: jobs linger
  Server server(config);
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.0);
  spec.initial_keys = 10000;
  workload::Generator generator(spec, 3);
  server.preload(generator.preload_keys(), spec.value_bytes);
  for (int batch = 0; batch < 150; ++batch) {
    server.step(generator.batch(256));
    // All live table ids unique (tables_ is the single source of truth).
    std::unordered_set<std::uint32_t> ids;
    for (const auto& table : server.sstables()) {
      EXPECT_TRUE(ids.insert(table.id()).second) << "duplicate table id";
    }
  }
  EXPECT_GT(server.active_compaction_count() + server.compaction_count(), 0u);
}

TEST(ServerWhitebox, PreloadLeveledBuildsStripedLevels) {
  auto config = Config::defaults().with(ParamId::kCompactionMethod, 1);
  Server server(config);
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 30000; ++k) keys.push_back(k);
  server.preload(keys, 256);

  int max_level = 0;
  std::size_t l0 = 0;
  for (const auto& table : server.sstables()) {
    max_level = std::max(max_level, table.level());
    l0 += table.level() == 0;
  }
  EXPECT_GE(max_level, 2) << "preload should populate multiple levels";
  EXPECT_LE(l0, 1u) << "only the recent-versions run may sit in L0";
  EXPECT_TRUE(leveled_invariant_holds(server.sstables()));
}

TEST(ServerWhitebox, PreloadWarmsThePageCache) {
  // Immediately after preload, a read-only burst must not hit the disk.
  Server server(Config::defaults());
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 20000; ++k) keys.push_back(k);
  server.preload(keys, 256);
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(1.0);
  spec.initial_keys = 20000;
  workload::Generator generator(spec, 9);
  RunOptions opts;
  opts.ops = 5000;
  const auto stats = server.run(generator, opts);
  EXPECT_EQ(stats.disk_random_reads, 0u);
  EXPECT_GT(stats.os_cache_hit_rate, 0.95);
}

TEST(ServerWhitebox, VersionDupRaisesSizeTieredProbes) {
  auto probes_with_dup = [](double dup) {
    Server server(Config::defaults());
    std::vector<std::int64_t> keys;
    for (std::int64_t k = 0; k < 20000; ++k) keys.push_back(k);
    server.preload(keys, 256, dup);
    workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(1.0);
    spec.initial_keys = 20000;
    workload::Generator generator(spec, 5);
    RunOptions opts;
    opts.ops = 8000;
    return server.run(generator, opts).avg_sstables_probed;
  };
  EXPECT_GT(probes_with_dup(1.5), probes_with_dup(0.0) + 0.8);
}

TEST(ServerWhitebox, WindowAccountingConservesOps) {
  Server server(Config::defaults());
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 15000; ++k) keys.push_back(k);
  server.preload(keys, 256);
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.5);
  spec.initial_keys = 15000;
  workload::Generator generator(spec, 7);
  RunOptions opts;
  opts.ops = 40000;
  opts.record_windows = true;
  opts.window_s = 0.05;
  const auto stats = server.run(generator, opts);
  // Sum of per-window ops (throughput x window length) must not exceed the
  // total and should cover most of it (the last partial window is dropped).
  double windowed_ops = 0.0;
  for (double w : stats.window_throughput) windowed_ops += w * opts.window_s;
  EXPECT_LE(windowed_ops, static_cast<double>(stats.ops) * 1.001);
  EXPECT_GT(windowed_ops, static_cast<double>(stats.ops) * 0.7);
}

TEST(ServerWhitebox, LatencyMetricsAreReported) {
  Server server(Config::defaults());
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 15000; ++k) keys.push_back(k);
  server.preload(keys, 256);
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.5);
  spec.initial_keys = 15000;
  workload::Generator generator(spec, 7);
  RunOptions opts;
  opts.ops = 20000;
  const auto stats = server.run(generator, opts);
  // Latencies in a plausible band: tens to hundreds of microseconds.
  EXPECT_GT(stats.mean_read_latency_us, 20.0);
  EXPECT_LT(stats.mean_read_latency_us, 5000.0);
  EXPECT_GT(stats.mean_write_latency_us, 20.0);
  EXPECT_LT(stats.mean_write_latency_us, 5000.0);
}

TEST(ServerWhitebox, ReadLatencyGrowsWithVersionDuplication) {
  auto latency_with_dup = [](double dup) {
    Server server(Config::defaults());
    std::vector<std::int64_t> keys;
    for (std::int64_t k = 0; k < 15000; ++k) keys.push_back(k);
    server.preload(keys, 256, dup);
    workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(1.0);
    spec.initial_keys = 15000;
    workload::Generator generator(spec, 5);
    RunOptions opts;
    opts.ops = 8000;
    return server.run(generator, opts).mean_read_latency_us;
  };
  EXPECT_GT(latency_with_dup(2.0), latency_with_dup(0.0) * 1.15);
}

TEST(ServerWhitebox, ResetCountersPreservesStateButClearsStats) {
  Server server(Config::defaults());
  server.step(writes(256, 0));
  const auto tables_before = server.sstables().size();
  server.reset_counters();
  EXPECT_EQ(server.read_count(), 0u);
  EXPECT_EQ(server.write_count(), 0u);
  EXPECT_EQ(server.flush_count(), 0u);
  EXPECT_EQ(server.sstables().size(), tables_before);  // state intact
  EXPECT_GT(server.virtual_seconds(), 0.0);            // clock intact
}

TEST(ServerWhitebox, ReadsOfAbsentKeysPayBloomOnly) {
  Server server(Config::defaults());
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 10000; ++k) keys.push_back(k);
  server.preload(keys, 256);
  // Keys far outside any table's range: candidates filter on range, so
  // probes stay ~0 (only bloom false positives would count, and range
  // checks already excluded these).
  server.step(reads(512, 5000000));
  EXPECT_LT(server.total_probes() / 512.0, 0.05);
}

}  // namespace
}  // namespace rafiki::engine
