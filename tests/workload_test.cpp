#include <gtest/gtest.h>

#include <unordered_set>

#include "util/stats.h"
#include "workload/characterize.h"
#include "workload/generator.h"
#include "workload/mgrast.h"

namespace rafiki::workload {
namespace {

TEST(Generator, RealizedReadRatioMatchesSpec) {
  for (double rr : {0.0, 0.3, 0.7, 1.0}) {
    Generator generator(WorkloadSpec::with_read_ratio(rr), 5);
    std::size_t reads = 0;
    constexpr std::size_t kN = 20000;
    for (std::size_t i = 0; i < kN; ++i) {
      if (generator.next().kind == Op::Kind::kRead) ++reads;
    }
    EXPECT_NEAR(static_cast<double>(reads) / kN, rr, 0.02) << "rr=" << rr;
  }
}

TEST(Generator, InsertsUseFreshMonotonicKeys) {
  WorkloadSpec spec = WorkloadSpec::with_read_ratio(0.0);
  spec.insert_fraction = 1.0;
  spec.initial_keys = 100;
  Generator generator(spec, 3);
  std::unordered_set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto op = generator.next();
    ASSERT_EQ(op.kind, Op::Kind::kInsert);
    EXPECT_GE(op.key, 100);
    EXPECT_TRUE(seen.insert(op.key).second) << "duplicate insert key";
  }
}

TEST(Generator, KeyReuseDistanceIsApproximatelyExponential) {
  WorkloadSpec spec = WorkloadSpec::with_read_ratio(1.0);
  spec.krd_mean = 500.0;
  spec.initial_keys = 1000000;  // huge keyspace: reuse only via the history
  Generator generator(spec, 11);
  std::vector<TraceRecord> trace;
  for (int i = 0; i < 60000; ++i) trace.push_back({static_cast<double>(i), generator.next()});
  const auto distances = reuse_distances(trace);
  ASSERT_GT(distances.size(), 1000u);
  const double fitted = fit_exponential_mean(distances);
  // Short-distance reuse dominates what is observable; the fit should land
  // in the right order of magnitude around the configured mean.
  EXPECT_GT(fitted, 200.0);
  EXPECT_LT(fitted, 1500.0);
}

TEST(Generator, PreloadKeysAreDense) {
  WorkloadSpec spec;
  spec.initial_keys = 1234;
  Generator generator(spec, 1);
  const auto keys = generator.preload_keys();
  ASSERT_EQ(keys.size(), 1234u);
  EXPECT_EQ(keys.front(), 0);
  EXPECT_EQ(keys.back(), 1233);
}

TEST(Generator, ValueBytesVaryAroundMean) {
  WorkloadSpec spec = WorkloadSpec::with_read_ratio(0.0);
  spec.value_bytes = 256;
  Generator generator(spec, 21);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(generator.next().value_bytes);
  EXPECT_NEAR(stats.mean(), 256.0, 20.0);
  EXPECT_GT(stats.stddev(), 30.0);
}

TEST(Generator, SetReadRatioTakesEffectMidStream) {
  Generator generator(WorkloadSpec::with_read_ratio(1.0), 31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(generator.next().kind, Op::Kind::kRead);
  generator.set_read_ratio(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_NE(generator.next().kind, Op::Kind::kRead);
}

TEST(MgRast, WindowCountMatchesDuration) {
  MgRastTraceOptions options;
  const auto windows = synthesize_mgrast_windows(options, 1);
  EXPECT_EQ(windows.size(), 384u);  // 4 days of 15-minute windows
  for (const auto& w : windows) {
    EXPECT_GE(w.read_ratio, 0.0);
    EXPECT_LE(w.read_ratio, 1.0);
  }
}

TEST(MgRast, MostlyReadHeavyWithAbruptTransitions) {
  const auto windows = synthesize_mgrast_windows({}, 7);
  std::size_t read_heavy = 0, big_jumps = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (windows[i].read_ratio >= 0.7) ++read_heavy;
    if (i && std::abs(windows[i].read_ratio - windows[i - 1].read_ratio) > 0.3) ++big_jumps;
  }
  // Figure 3's qualitative pattern: read-heavy dominates; regime switches
  // are abrupt and recur throughout the 4 days.
  EXPECT_GT(read_heavy, windows.size() / 3);
  EXPECT_GT(big_jumps, 10u);
}

TEST(MgRast, QuerySynthesisHonoursWindows) {
  std::vector<TraceWindow> windows = {{0.0, 1.0}, {900.0, 0.0}};
  const auto records = synthesize_mgrast_queries(windows, 500, {}, 900.0, 3);
  ASSERT_EQ(records.size(), 1000u);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(records[i].op.kind, Op::Kind::kRead);
    EXPECT_LT(records[i].t_s, 900.0);
  }
  for (std::size_t i = 500; i < 1000; ++i) {
    EXPECT_NE(records[i].op.kind, Op::Kind::kRead);
    EXPECT_GE(records[i].t_s, 900.0);
  }
}

TEST(MgRast, TraceCsvRoundTrips) {
  const auto windows = synthesize_mgrast_windows({}, 4);
  const auto records = synthesize_mgrast_queries(
      {windows.begin(), windows.begin() + 3}, 50, {}, 900.0, 5);
  const auto csv = trace_to_csv(records);
  const auto parsed = parse_trace_csv(csv);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].op.kind, records[i].op.kind);
    EXPECT_EQ(parsed[i].op.key, records[i].op.key);
    EXPECT_EQ(parsed[i].op.value_bytes, records[i].op.value_bytes);
    EXPECT_NEAR(parsed[i].t_s, records[i].t_s, 1e-3);
  }
}

TEST(MgRast, ParseRejectsGarbage) {
  EXPECT_THROW(parse_trace_csv("t_s,kind,key,bytes\nnot-a-line"), std::invalid_argument);
  EXPECT_THROW(parse_trace_csv("t_s,kind,key,bytes\n1.0,9,5,10"), std::invalid_argument);
}

TEST(Characterize, ReadRatioSeriesPerWindow) {
  std::vector<TraceRecord> trace;
  for (int i = 0; i < 100; ++i) {
    TraceRecord r;
    r.t_s = i;  // 100 seconds
    r.op.kind = i < 50 ? Op::Kind::kRead : Op::Kind::kUpdate;
    r.op.key = i;
    trace.push_back(r);
  }
  const auto series = read_ratio_series(trace, 50.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
}

TEST(Characterize, ReuseDistancesCountIntermediateQueries) {
  std::vector<TraceRecord> trace;
  const std::int64_t keys[] = {1, 2, 3, 1, 2};
  for (int i = 0; i < 5; ++i) {
    TraceRecord r;
    r.t_s = i;
    r.op.key = keys[i];
    trace.push_back(r);
  }
  const auto distances = reuse_distances(trace);
  ASSERT_EQ(distances.size(), 2u);
  EXPECT_DOUBLE_EQ(distances[0], 2.0);  // key 1: positions 0 -> 3
  EXPECT_DOUBLE_EQ(distances[1], 2.0);  // key 2: positions 1 -> 4
}

TEST(Characterize, FindsStationaryWindowOnRegimeTrace) {
  // Regimes change every 900s; quarter-window statistics disagree strongly
  // below that scale.
  const auto windows = synthesize_mgrast_windows({}, 13);
  const auto records = synthesize_mgrast_queries(windows, 4000, {}, 900.0, 17);
  const std::vector<double> candidates = {112.5, 225.0, 450.0, 900.0, 1800.0};
  const double chosen = find_stationary_window(records, candidates);
  // Sub-window burstiness rules out the small scales; the 30-minute window
  // mixes regimes. 15 minutes is the first stationary scale, per the paper.
  EXPECT_DOUBLE_EQ(chosen, 900.0);
}

TEST(Characterize, FullCharacterizationProducesUsableSpec) {
  MgRastTraceOptions options;
  options.duration_s = 12 * 900.0;
  const auto windows = synthesize_mgrast_windows(options, 19);
  WorkloadSpec base;
  base.krd_mean = 2000.0;
  const auto records = synthesize_mgrast_queries(windows, 2000, base, 900.0, 23);
  const std::vector<double> candidates = {450.0, 900.0};
  const auto ch = characterize(records, candidates);
  const double expected_windows =
      static_cast<double>(records.size() / 2000) * (900.0 / ch.window_s);
  EXPECT_DOUBLE_EQ(static_cast<double>(ch.read_ratios.size()), expected_windows);
  EXPECT_GT(ch.krd_mean, 0.0);
  EXPECT_GT(ch.mean_value_bytes, 0.0);
  EXPECT_GT(ch.insert_fraction, 0.0);
  EXPECT_LT(ch.insert_fraction, 1.0);
  const auto spec = spec_for_window(ch, 0);
  EXPECT_DOUBLE_EQ(spec.read_ratio, ch.read_ratios[0]);
}

}  // namespace
}  // namespace rafiki::workload
