#include "serve/snapshot.h"

#include <stdexcept>

#include "core/rafiki.h"

namespace rafiki::serve {

std::vector<double> ModelSnapshot::feature_row(double read_ratio,
                                               const engine::Config& config) const {
  std::vector<double> row;
  row.reserve(key_params.size() + 1);
  row.push_back(read_ratio);
  for (auto id : key_params) row.push_back(config.get(id));
  return row;
}

ModelSnapshot make_snapshot(const core::Rafiki& rafiki) {
  if (!rafiki.trained()) throw std::logic_error("make_snapshot: pipeline not trained");
  ModelSnapshot snapshot;
  snapshot.ensemble = rafiki.surrogate();
  snapshot.key_params = rafiki.key_params();
  snapshot.space = std::make_shared<const opt::SearchSpace>(rafiki.key_space());
  return snapshot;
}

}  // namespace rafiki::serve
