#include "ml/trainbr.h"

#include <algorithm>
#include <cmath>

#include "ml/matrix.h"

namespace rafiki::ml {
namespace {

double sum_squares(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return s;
}

}  // namespace

TrainResult train_lm_bayes(Mlp& net, const std::vector<std::vector<double>>& X,
                           std::span<const double> y, const TrainOptions& options) {
  TrainResult result;
  const std::size_t n = X.size();
  const std::size_t p = net.param_count();
  if (n == 0 || y.size() != n) return result;

  double alpha = options.bayesian_regularization ? 0.01 : 0.0;
  double beta = 1.0;
  double mu = options.mu_initial;

  std::vector<double> params(net.params().begin(), net.params().end());
  Matrix jac(n, p);
  std::vector<double> errors(n);

  auto evaluate = [&](std::span<const double> w, bool with_jacobian) {
    net.set_params(w);
    double ed = 0.0;
    std::vector<double> grad_row(p);
    for (std::size_t i = 0; i < n; ++i) {
      double out;
      if (with_jacobian) {
        out = net.forward_with_gradient(X[i], grad_row);
        std::copy(grad_row.begin(), grad_row.end(), jac.row(i).begin());
      } else {
        out = net.forward(X[i]);
      }
      errors[i] = y[i] - out;
      ed += errors[i] * errors[i];
    }
    return ed;
  };

  double ed = evaluate(params, true);
  double ew = sum_squares(params);
  double objective = beta * ed + alpha * ew;

  for (std::size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    ++result.epochs;
    // Gauss-Newton system: (beta J^T J + (alpha + mu) I) dw = beta J^T e - alpha w
    Matrix hessian = jac.gram();
    for (auto& v : hessian.data()) v *= beta;
    auto gradient = jac.transpose_times(errors);
    double grad_norm = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      gradient[j] = beta * gradient[j] - alpha * params[j];
      grad_norm += gradient[j] * gradient[j];
    }
    if (std::sqrt(grad_norm) < options.min_gradient) {
      result.converged = true;
      break;
    }

    bool stepped = false;
    while (mu <= options.mu_max) {
      Matrix damped = hessian;
      damped.add_diagonal(alpha + mu);
      auto step = damped.solve_spd(gradient);
      if (!step.empty()) {
        std::vector<double> trial = params;
        for (std::size_t j = 0; j < p; ++j) trial[j] += step[j];
        const double trial_ed = evaluate(trial, false);
        const double trial_ew = sum_squares(trial);
        const double trial_obj = beta * trial_ed + alpha * trial_ew;
        if (trial_obj < objective && std::isfinite(trial_obj)) {
          params = std::move(trial);
          ed = trial_ed;
          ew = trial_ew;
          objective = trial_obj;
          mu = std::max(options.mu_decrease * mu, 1e-20);
          stepped = true;
          break;
        }
      }
      mu *= options.mu_increase;
    }
    if (!stepped) {
      result.converged = true;  // no downhill direction left at mu_max
      break;
    }

    // Refresh the Jacobian at the accepted point.
    ed = evaluate(params, true);

    const bool update_hyper =
        options.bayesian_regularization &&
        (options.bayes_update_interval == 0 ||
         result.epochs % std::max<std::size_t>(1, options.bayes_update_interval) == 1);
    if (update_hyper) {
      // MacKay evidence update of alpha/beta via the effective parameters.
      Matrix reg = jac.gram();
      for (auto& v : reg.data()) v *= beta;
      reg.add_diagonal(alpha);
      const double trace_inv = reg.trace_inverse_spd();
      if (trace_inv >= 0.0) {
        double gamma = static_cast<double>(p) - alpha * trace_inv;
        gamma = std::clamp(gamma, 1.0, static_cast<double>(p));
        alpha = gamma / std::max(2.0 * ew, 1e-12);
        const double denom = std::max(2.0 * ed, 1e-12);
        beta = std::max(static_cast<double>(n) - gamma, 1.0) / denom;
        result.gamma = gamma;
        objective = beta * ed + alpha * ew;
      }
    }
  }

  net.set_params(params);
  result.mse = ed / static_cast<double>(n);
  result.alpha = alpha;
  result.beta = beta;
  return result;
}

}  // namespace rafiki::ml
