// MG-RAST trace synthesizer.
//
// The paper evaluates Rafiki against a 4-day query trace from Argonne's
// MG-RAST metagenomics portal. That trace is proprietary (the paper itself
// notes the privacy constraints of logging genomics queries, Section 3.3),
// so this module synthesizes a statistically equivalent trace: a
// regime-switching process over read-heavy / mixed / write-burst phases with
// abrupt transitions at the 15-minute scale (Figure 3), combined with the
// exponential key-reuse-distance process of `workload::Generator`. Rafiki
// only ever consumes the trace through the two statistics this module
// controls explicitly — read ratio per window and the KRD fit — so the
// substitution preserves the behaviour the middleware depends on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/spec.h"

namespace rafiki::workload {

/// One characterization window of the trace (15 minutes in the paper).
struct TraceWindow {
  double t_start_s = 0.0;
  double read_ratio = 0.0;
};

/// A single timestamped query, the unit of a raw trace.
struct TraceRecord {
  double t_s = 0.0;
  Op op;
};

/// Knobs of the regime-switching synthesizer. Defaults approximate the
/// qualitative structure of Figure 3: mostly read-heavy with extended mixed
/// periods and short bursty write phases, switching abruptly.
struct MgRastTraceOptions {
  double duration_s = 4 * 24 * 3600.0;  // the paper's 4-day observation
  double window_s = 15 * 60.0;          // 15-minute characterization windows

  // Mean dwell times (in windows) of each regime's geometric holding time.
  double read_heavy_dwell = 6.0;
  double mixed_dwell = 4.0;
  double write_burst_dwell = 1.5;

  // Stationary read-ratio bands per regime (uniform within band).
  double read_heavy_lo = 0.75, read_heavy_hi = 1.0;
  double mixed_lo = 0.35, mixed_hi = 0.7;
  double write_burst_lo = 0.0, write_burst_hi = 0.25;

  // Relative likelihood of entering each regime when switching.
  double p_read_heavy = 0.5;
  double p_mixed = 0.3;  // remainder goes to write bursts
};

/// Synthesizes the per-window read-ratio series (the content of Figure 3).
std::vector<TraceWindow> synthesize_mgrast_windows(const MgRastTraceOptions& options,
                                                   std::uint64_t seed);

/// Expands a window series into individual timestamped queries by running
/// the KRD-aware generator at `queries_per_window` per window. Used by the
/// characterization tests and the online-tuning example; benches that only
/// need the RR series use the windows directly.
///
/// Queries arrive in same-kind bursts of geometric mean length
/// `burst_mean_queries` (MG-RAST pipeline stages issue runs of reads or
/// writes, not an i.i.d. mix). Each burst is all-read with probability equal
/// to the window's read ratio, so the per-window RR is preserved in
/// expectation while sub-window RR estimates stay noisy — which is what
/// makes 15 minutes, and not less, the first stationary scale (Section 3.3).
std::vector<TraceRecord> synthesize_mgrast_queries(const std::vector<TraceWindow>& windows,
                                                   std::size_t queries_per_window,
                                                   const WorkloadSpec& base_spec,
                                                   double window_s,
                                                   std::uint64_t seed,
                                                   double burst_mean_queries = 40.0);

/// Serializes records as "t_s,kind,key,bytes" CSV lines (with header);
/// `parse_trace_csv` inverts it. This stands in for the operational trace
/// files a deployment would log.
std::string trace_to_csv(const std::vector<TraceRecord>& records);
std::vector<TraceRecord> parse_trace_csv(const std::string& csv);

}  // namespace rafiki::workload
