// Engine calibration diagnostic (not a paper table/figure).
//
// Prints throughput and internal counters for a grid of representative
// configurations and read ratios. Used to verify that the simulated engine
// sits in the paper's throughput regime and shows the qualitative
// sensitivities Rafiki exploits (Section 4.4-4.6) before the real benches
// are trusted. Run it whenever cost constants in hardware.h change.
#include <cstdio>

#include "engine/scylla.h"
#include "engine/server.h"
#include "util/table.h"
#include "workload/generator.h"

using namespace rafiki;

namespace {

engine::RunStats measure(const engine::Config& config, double read_ratio,
                         bool scylla = false) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(read_ratio);
  spec.value_bytes = 256;
  workload::Generator generator(spec, /*seed=*/7);
  engine::RunOptions opts;
  opts.ops = 60000;
  if (scylla) {
    engine::ScyllaServer server(config);
    server.preload(generator.preload_keys(), spec.value_bytes);
    return server.run(generator, opts);
  }
  engine::Server server(config);
  server.preload(generator.preload_keys(), spec.value_bytes);
  return server.run(generator, opts);
}

void report(const char* label, const engine::Config& config, bool scylla = false) {
  Table table({"RR", "kops/s", "probes/read", "file_hit", "os_hit", "disk_rd", "flushes",
               "compactions", "sstables", "stall_s", "bind c/dr/dw/lr/lw"});
  for (double rr : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const auto stats = measure(config, rr, scylla);
    char bind[64];
    std::snprintf(bind, sizeof bind, "%.2f/%.2f/%.2f/%.2f/%.2f",
                  stats.binding_fractions[0], stats.binding_fractions[1],
                  stats.binding_fractions[2], stats.binding_fractions[3],
                  stats.binding_fractions[4]);
    table.add_row({Table::num(rr, 1), Table::num(stats.throughput_ops / 1000.0, 1),
                   Table::num(stats.avg_sstables_probed, 2),
                   Table::num(stats.file_cache_hit_rate, 2),
                   Table::num(stats.os_cache_hit_rate, 2),
                   std::to_string(stats.disk_random_reads), std::to_string(stats.flushes),
                   std::to_string(stats.compactions),
                   std::to_string(stats.final_sstable_count),
                   Table::num(stats.write_stall_s, 2), bind});
  }
  std::printf("== %s ==\n%s\n", label, table.render().c_str());
}

}  // namespace

int main() {
  using engine::ParamId;
  const auto defaults = engine::Config::defaults();
  report("Cassandra defaults (SizeTiered)", defaults);
  report("Leveled + big file cache (read-tuned)",
         defaults.with(ParamId::kCompactionMethod, 1)
             .with(ParamId::kFileCacheSizeMb, 2048)
             .with(ParamId::kConcurrentCompactors, 4));
  report("SizeTiered write-tuned (CW=64, MT=0.5)",
         defaults.with(ParamId::kConcurrentWrites, 64)
             .with(ParamId::kMemtableCleanupThreshold, 0.5));
  report("Low CW=8", defaults.with(ParamId::kConcurrentWrites, 8));
  report("ScyllaDB (auto-tuned) defaults", defaults, /*scylla=*/true);

  // Figure 6 cross: CM x CW at RR=50%.
  Table cross({"CM", "CW", "kops/s"});
  for (int cm : {0, 1}) {
    for (int cw : {16, 32, 64}) {
      const auto stats = measure(defaults.with(ParamId::kCompactionMethod, cm)
                                     .with(ParamId::kConcurrentWrites, cw),
                                 0.5);
      cross.add_row({cm ? "Leveled" : "SizeTiered", std::to_string(cw),
                     Table::num(stats.throughput_ops / 1000.0, 1)});
    }
  }
  std::printf("== CM x CW interdependence (RR=50%%) ==\n%s\n", cross.render().c_str());
  return 0;
}
