// Multi-tenant fleet serving: one process answers many tenant namespaces
// from a single sharded backend, with per-tenant models, per-tenant
// admission quotas, and telemetry-driven rebalance.
//
//   client ──RKF2 frame (tenant t)──▶ net::Server
//                                        │ try_submit(request{tenant=t})
//                                        ▼
//                                  TenantFleet ── admission ──▶ kNotReady
//                                        │   (registry: quota,    (unknown)
//                                        │    in-flight cap)   ▶ kOverloaded
//                                        ▼                       (quota)
//                               ShardedTuningService
//                              route (tenant, band) ──▶ shard k
//                                        │                  │ per-tenant
//                                        │                  │ snapshot slot,
//                                        │                  │ retrain keys
//                                        ▼                  ▼
//                                 per-tenant OnlineTuner (registry-owned)
//
// The fleet is a TuningBackend decorator: everything below admission is the
// sharded router, configured with one snapshot slot / version counter /
// retrain key-space per tenant. Tenant 0 is the default namespace, so a
// fleet of one is bit-for-bit the original single-tenant stack.
//
// Admission order is deliberate: registry lookup (unknown tenant -> the
// typed kNotReady the wire already carries), then the in-flight cap, then
// the token bucket — the cheap constant-time checks first, the clock-reading
// bucket last, and only for requests that will otherwise be admitted. The
// response callback is wrapped to release the in-flight slot exactly once,
// whether the backend answers from a worker or fails admission downstream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>

#include "core/online.h"
#include "serve/backend.h"
#include "serve/shard.h"
#include "tenant/registry.h"

namespace rafiki::tenant {

struct FleetOptions {
  /// Tenant namespaces served by this fleet (dense ids [0, tenants)).
  /// Propagated into every shard's ServiceOptions::tenants, so the inner
  /// value in `shard.service` is overwritten.
  std::size_t tenants = 1;
  /// The inner sharded backend (shard count, per-shard service, spill,
  /// rebalance interval).
  serve::ShardOptions shard{};
  /// Per-tenant admission quota. Null (the default) leaves every tenant
  /// unlimited; the fleet bench uses this to give the noisy tenant a tight
  /// in-flight cap while victims run uncapped.
  std::function<QuotaOptions(serve::TenantId)> quota_for;
};

class TenantFleet : public serve::TuningBackend {
 public:
  explicit TenantFleet(FleetOptions options = {});
  ~TenantFleet() override;

  TenantFleet(const TenantFleet&) = delete;
  TenantFleet& operator=(const TenantFleet&) = delete;

  /// Builds one OnlineTuner per tenant over the shared trained model and
  /// wires each into the router (per-tenant publish fan-out, per-tenant
  /// retrain key-space, ObserveWindow binding). `rafiki` must be trained and
  /// must outlive this fleet. Call before start().
  void attach_rafiki(const core::Rafiki& rafiki,
                     core::OnlineTunerOptions tuner_options = {});

  // --- TuningBackend ---
  std::uint64_t publish(serve::ModelSnapshot snapshot) override;
  std::shared_ptr<const serve::ModelSnapshot> snapshot() const override;
  std::uint64_t model_version() const override;
  std::shared_ptr<const serve::ModelSnapshot> tenant_snapshot(
      serve::TenantId tenant) const override;
  std::uint64_t tenant_model_version(serve::TenantId tenant) const override;

  /// Single-tuner attach for the default namespace (tenant 0) — the
  /// pre-fleet surface. Fleets with real tenants use attach_rafiki.
  void attach_tuner(core::OnlineTuner& tuner) override;

  std::future<serve::Response> submit(serve::Request request) override;
  /// Fleet admission, then the router. Extends the backend's admission
  /// verdict set with kNotReady for a tenant id outside the fleet (the
  /// net::Server already answers any non-kOk verdict inline as a typed
  /// error-free response, so unknown tenants get a clean wire answer).
  serve::Status try_submit(serve::Request request,
                           serve::ResponseCallback done) override;

  void start() override;
  void stop() override;

  serve::ServiceStats& stats() noexcept override { return router_.stats(); }
  const serve::ServiceStats& stats() const noexcept override {
    return router_.stats();
  }
  Table stats_table() const override { return router_.stats_table(); }
  serve::ServiceStats::Counters endpoint_counters(
      serve::Endpoint endpoint) const override {
    return router_.endpoint_counters(endpoint);
  }
  serve::ServiceStats::RetrainCounters retrain_counters() const override {
    return router_.retrain_counters();
  }
  double endpoint_latency_quantile(serve::Endpoint endpoint,
                                   double q) const override {
    return router_.endpoint_latency_quantile(endpoint, q);
  }
  double mean_batch_size() const override { return router_.mean_batch_size(); }
  double mean_retrain_latency_us() const override {
    return router_.mean_retrain_latency_us();
  }
  void wait_retrain_idle() override { router_.wait_retrain_idle(); }

  /// Fleet admission fairness counters (admitted / quota_rejected /
  /// inflight_rejected / unknown_tenant), recorded in the router stats.
  serve::ServiceStats::FleetCounters fleet_counters() const {
    return router_.stats().fleet_counters();
  }

  TenantRegistry& registry() noexcept { return registry_; }
  const TenantRegistry& registry() const noexcept { return registry_; }
  serve::ShardedTuningService& router() noexcept { return router_; }
  const serve::ShardedTuningService& router() const noexcept { return router_; }
  /// The tenant's own tuner (null before attach_rafiki / unknown tenant).
  core::OnlineTuner* tuner(serve::TenantId tenant) noexcept {
    TenantState* state = registry_.find(tenant);
    return state ? state->tuner.get() : nullptr;
  }
  std::size_t tenants() const noexcept { return registry_.size(); }
  const FleetOptions& options() const noexcept { return options_; }

 private:
  static FleetOptions sanitize(FleetOptions options);

  FleetOptions options_;
  /// Declared before router_: response callbacks wrapped by try_submit hold
  /// TenantState pointers and may fire as late as the router's destructor
  /// drain, so the registry (and its quotas/tuners) must outlive the router.
  TenantRegistry registry_;
  serve::ShardedTuningService router_;
};

}  // namespace rafiki::tenant
