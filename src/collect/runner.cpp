#include "collect/runner.h"

#include "engine/scylla.h"
#include "workload/generator.h"

namespace rafiki::collect {
namespace {

template <typename ServerT>
engine::RunStats drive(ServerT& server, const workload::WorkloadSpec& workload,
                       const MeasureOptions& options) {
  workload::Generator generator(workload, options.seed);
  server.preload(generator.preload_keys(), workload.value_bytes, options.version_dup);

  if (options.warmup_ops > 0) {
    workload::WorkloadSpec warm = workload;
    warm.read_ratio = options.warmup_read_ratio;
    workload::Generator warm_generator(warm, options.seed ^ 0x5eed5eedull);
    engine::RunOptions warm_opts;
    warm_opts.ops = options.warmup_ops;
    warm_opts.seed = options.seed ^ 1;
    server.run(warm_generator, warm_opts);
  }

  engine::RunOptions run_opts;
  run_opts.ops = options.ops;
  run_opts.seed = options.seed;
  run_opts.measurement_noise_sd = options.noise_sd;
  run_opts.record_windows = options.record_windows;
  run_opts.window_s = options.window_s;
  return server.run(generator, run_opts);
}

}  // namespace

engine::RunStats measure(const engine::Config& config, const workload::WorkloadSpec& workload,
                         const MeasureOptions& options) {
  if (options.scylla) {
    engine::ScyllaServer server(config, options.hardware, /*fluctuation_seed=*/options.seed);
    auto stats = drive(server.server(), workload, options);
    return stats;
  }
  engine::Server server(config, options.hardware);
  return drive(server, workload, options);
}

double measure_throughput(const engine::Config& config,
                          const workload::WorkloadSpec& workload,
                          const MeasureOptions& options) {
  return measure(config, workload, options).throughput_ops;
}

}  // namespace rafiki::collect
