// Synthetic op-stream generator (the YCSB-equivalent "shooter" input).
//
// Keys are drawn so that the realized key-reuse-distance distribution is
// approximately exponential with the spec's mean, which is how the paper
// characterizes MG-RAST traffic (Section 3.3): a reuse distance d is sampled
// from Exp(krd_mean); if a key was accessed d queries ago it is re-used,
// otherwise a uniformly random live key is chosen.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "workload/spec.h"

namespace rafiki::workload {

class Generator {
 public:
  Generator(WorkloadSpec spec, std::uint64_t seed);

  /// Keys that should be pre-loaded into the store before measurement
  /// begins: [0, spec.initial_keys).
  std::vector<std::int64_t> preload_keys() const;

  /// Produces the next operation. Stateful: maintains the access history
  /// that realizes the reuse-distance process and the set of live keys.
  Op next();

  /// Convenience: materialize a batch of operations.
  std::vector<Op> batch(std::size_t n);

  const WorkloadSpec& spec() const noexcept { return spec_; }

  /// Replaces the read ratio mid-stream (dynamic workloads, Section 2.4.1)
  /// while preserving key history, mimicking a regime change in MG-RAST.
  void set_read_ratio(double rr) noexcept { spec_.read_ratio = rr; }

 private:
  std::int64_t sample_key();
  std::uint32_t sample_value_bytes();
  void record_access(std::int64_t key);

  WorkloadSpec spec_;
  Rng rng_;
  std::int64_t next_new_key_;
  /// Recent access history, bounded to a few KRD means; history[i] is the
  /// key accessed i+1 queries ago (front = most recent).
  std::deque<std::int64_t> history_;
  std::size_t history_cap_;
  /// Global op counter and per-key last-access position, used to verify that
  /// a sampled reuse distance is the key's *most recent* occurrence — else
  /// duplicate history entries would bias realized distances far below the
  /// configured exponential mean.
  std::uint64_t op_index_ = 0;
  std::unordered_map<std::int64_t, std::uint64_t> last_access_;
};

}  // namespace rafiki::workload
