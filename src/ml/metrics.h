// Model-evaluation metrics matching those the paper reports (Table 2):
// mean absolute percentage error, R^2 and RMSE.
#pragma once

#include <span>
#include <vector>

namespace rafiki::ml {

/// Mean absolute percentage error, in percent (the paper's "prediction
/// error"). Targets with |actual| below `epsilon` are skipped.
double mape_percent(std::span<const double> actual, std::span<const double> predicted,
                    double epsilon = 1e-9);

/// Coefficient of determination.
double r_squared(std::span<const double> actual, std::span<const double> predicted);

/// Root mean squared error.
double rmse(std::span<const double> actual, std::span<const double> predicted);

/// Signed percentage errors (predicted vs actual), for Figures 8/9.
std::vector<double> percent_errors(std::span<const double> actual,
                                   std::span<const double> predicted,
                                   double epsilon = 1e-9);

}  // namespace rafiki::ml
