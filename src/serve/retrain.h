// Background retrain worker: the serve layer's guarantee that no GA (or,
// later, collect+train) ever runs on a request-path thread. ObserveWindow's
// stale-while-revalidate misses, and OnlineTuner::prefetch, enqueue
// (bucket, read_ratio) tasks here; a single dedicated thread runs them and
// the results flow back through the tuner's publish hook into the versioned
// SnapshotRegistry — so a regime change costs the request path one queue
// push, never an optimizer spike.
//
//   * Bounded task queue — a full retrain backlog drops the newest request
//     (retrying is free: the next stale window re-enqueues) instead of
//     growing unboundedly.
//   * Coalescing — requests for a bucket that already has a task pending
//     (queued or mid-run) share that task's completion future; N same-bucket
//     stale windows cost one GA run.
//   * Graceful shutdown — stop(drain=true) runs everything still queued,
//     stop(drain=false) cancels it; either way every future ever handed out
//     resolves (kCompleted or kCancelled), and an in-flight task always runs
//     to completion.
//   * Telemetry — queue depth, per-task latency histogram, and
//     runs/coalesced/rejected/cancelled counters in ServiceStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <thread>

#include "serve/stats.h"
#include "serve/types.h"
#include "util/sync.h"

namespace rafiki::serve {

/// Composes the retrain coalescing key from a tenant namespace and a
/// read-ratio bucket. Each tenant owns a disjoint key-space: tenant A's
/// bucket-7 GA run never coalesces against (or dedups) tenant B's bucket-7
/// run, because their keys differ in the high word.
constexpr std::uint64_t retrain_key(TenantId tenant, int bucket) noexcept {
  return (static_cast<std::uint64_t>(tenant) << 32) |
         static_cast<std::uint32_t>(bucket);
}
constexpr TenantId retrain_key_tenant(std::uint64_t key) noexcept {
  return static_cast<TenantId>(key >> 32);
}
constexpr int retrain_key_bucket(std::uint64_t key) noexcept {
  return static_cast<int>(static_cast<std::uint32_t>(key));
}

struct RetrainOptions {
  /// Bounded retrain backlog; enqueues beyond this are rejected (the caller
  /// simply stays stale until a later window re-requests the bucket).
  std::size_t queue_capacity = 64;
};

/// How an enqueue was disposed of, decided atomically under the worker lock.
enum class RetrainEnqueue : std::uint8_t {
  /// A new task was queued for this bucket.
  kEnqueued = 0,
  /// A task for this bucket was already pending (queued or running); the
  /// returned future is that task's.
  kCoalesced,
  /// The retrain queue was full; nothing was queued.
  kRejected,
  /// The worker was stopping or stopped; nothing was queued.
  kStopped,
};

/// How a task's future resolved.
enum class RetrainOutcome : std::uint8_t { kCompleted = 0, kCancelled };

class RetrainWorker {
 public:
  /// Runs one background optimization. Invoked on the worker thread only,
  /// with no worker lock held. `key` is the coalescing key — plain bucket
  /// numbers for a single-tenant service, retrain_key(tenant, bucket) for a
  /// fleet. (The serve layer points this at OnlineTuner::run_optimize, which
  /// itself coalesces already-cached buckets into a no-op.)
  using RunFn = std::function<void(std::uint64_t key, double read_ratio)>;

  /// `stats` may be null (no telemetry); when set it must outlive the worker.
  explicit RetrainWorker(RunFn run, RetrainOptions options = {},
                         ServiceStats* stats = nullptr);
  ~RetrainWorker();

  RetrainWorker(const RetrainWorker&) = delete;
  RetrainWorker& operator=(const RetrainWorker&) = delete;

  struct Ticket {
    RetrainEnqueue result = RetrainEnqueue::kStopped;
    /// Always valid. Already satisfied (kCancelled) for kRejected/kStopped
    /// tickets, so callers can wait unconditionally.
    std::shared_future<RetrainOutcome> done;
    bool accepted() const noexcept {
      return result == RetrainEnqueue::kEnqueued || result == RetrainEnqueue::kCoalesced;
    }
  };

  /// Requests a background optimization for this coalescing key. Never
  /// blocks and never runs the optimizer on the calling thread.
  Ticket enqueue(std::uint64_t key, double read_ratio);

  /// Spawns the worker thread (idempotent; no-op after stop()).
  void start();

  /// Stops the worker. drain=true finishes the queued backlog first;
  /// drain=false cancels it (their futures resolve kCancelled). A task
  /// already mid-run always completes either way. Idempotent; safe before
  /// start(), in which case the backlog is cancelled.
  void stop(bool drain = true);

  /// Queued tasks not yet picked up by the worker.
  std::size_t depth() const;
  /// True once stop() has been requested (it may still be joining/draining).
  bool stopping() const;
  /// Blocks until no task is queued or running (or the worker stopped) —
  /// the "background tuning has settled" barrier tests and benches need.
  void wait_idle();

 private:
  struct Task {
    std::uint64_t key = 0;
    double read_ratio = 0.0;
    std::promise<RetrainOutcome> promise;
    std::shared_future<RetrainOutcome> future;
  };

  static Ticket finished_ticket(RetrainEnqueue result);
  void loop();

  RunFn run_;
  RetrainOptions options_;
  ServiceStats* stats_;

  mutable Mutex mutex_;
  CondVar ready_;
  CondVar idle_;
  std::deque<Task> tasks_ GUARDED_BY(mutex_);
  /// key -> pending task's future; covers queued AND currently-running
  /// tasks, so same-key requests coalesce for the task's whole lifetime.
  std::map<std::uint64_t, std::shared_future<RetrainOutcome>> pending_ GUARDED_BY(mutex_);
  /// Spawned under mutex_ in start(); joined lock-free in stop() after the
  /// stopping_ handshake (joining under the lock would deadlock the loop).
  /// start()/stop() are lifecycle calls — concurrent start+stop is a caller
  /// contract violation, exactly as with the raw std::thread before.
  std::thread thread_;
  bool started_ GUARDED_BY(mutex_) = false;
  bool stopping_ GUARDED_BY(mutex_) = false;
  bool stopped_ GUARDED_BY(mutex_) = false;
  bool drain_on_stop_ GUARDED_BY(mutex_) = true;
  bool running_ GUARDED_BY(mutex_) = false;  // the worker is executing a task right now
};

}  // namespace rafiki::serve
