#include <gtest/gtest.h>

#include <cmath>

#include "opt/baselines.h"
#include "opt/ga.h"
#include "opt/space.h"

namespace rafiki::opt {
namespace {

SearchSpace mixed_space() {
  return SearchSpace({{"cat", true, 0, 1},
                      {"count", true, 8, 96},
                      {"ratio", false, 0.05, 0.8}});
}

TEST(SearchSpace, SnapRoundsIntegralsAndClamps) {
  const auto space = mixed_space();
  const auto snapped = space.snap({0.6, 200.0, -1.0});
  EXPECT_DOUBLE_EQ(snapped[0], 1.0);
  EXPECT_DOUBLE_EQ(snapped[1], 96.0);
  EXPECT_DOUBLE_EQ(snapped[2], 0.05);
  EXPECT_TRUE(space.feasible(snapped));
}

TEST(SearchSpace, ViolationMeasuresDistance) {
  const auto space = mixed_space();
  EXPECT_DOUBLE_EQ(space.violation(std::vector<double>{0.0, 32.0, 0.3}), 0.0);
  EXPECT_NEAR(space.violation(std::vector<double>{0.4, 32.5, 0.3}), 0.4 + 0.5, 1e-12);
  EXPECT_NEAR(space.violation(std::vector<double>{0.0, 100.0, 0.9}),
              4.0 + 0.1, 1e-12);
}

TEST(SearchSpace, RandomPointsAreFeasible) {
  const auto space = mixed_space();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(space.feasible(space.random_point(rng)));
  }
}

TEST(SearchSpace, GridEnumeratesFullFactorial) {
  const auto space = mixed_space();
  const std::vector<std::size_t> levels = {2, 3, 4};
  const auto grid = space.grid(levels);
  EXPECT_EQ(grid.size(), space.grid_size(levels));
  EXPECT_EQ(grid.size(), 2u * 3u * 4u);
  for (const auto& point : grid) EXPECT_TRUE(space.feasible(point));
}

TEST(SearchSpace, LevelValuesDeduplicateIntegrals) {
  SearchSpace tiny({{"flag", true, 0, 1}});
  // Asking for 5 levels of a binary dimension yields only {0, 1}.
  EXPECT_EQ(tiny.level_values(0, 5).size(), 2u);
}

/// Concave objective with an interior optimum and an integral dimension:
/// f = -(cat - 1)^2 - (count - 60)^2 / 100 - 40 (ratio - 0.4)^2.
double concave(std::span<const double> p) {
  return -(p[0] - 1.0) * (p[0] - 1.0) - (p[1] - 60.0) * (p[1] - 60.0) / 100.0 -
         40.0 * (p[2] - 0.4) * (p[2] - 0.4);
}

TEST(Ga, FindsInteriorOptimumOfConcaveObjective) {
  const auto space = mixed_space();
  GaOptions options;
  options.seed = 17;
  const auto result = ga_optimize(space, concave, options);
  EXPECT_TRUE(space.feasible(result.best_point));
  EXPECT_DOUBLE_EQ(result.best_point[0], 1.0);
  EXPECT_NEAR(result.best_point[1], 60.0, 4.0);
  EXPECT_NEAR(result.best_point[2], 0.4, 0.05);
}

TEST(Ga, EscapesLocalMaxima) {
  // Two-basin objective: a shallow local optimum near ratio = 0.1 and the
  // global one near 0.7 — the failure mode the paper attributes to
  // hill-climbing tuners (Section 1).
  SearchSpace space({{"x", false, 0.0, 1.0}});
  auto objective = [](std::span<const double> p) {
    const double x = p[0];
    return 0.4 * std::exp(-std::pow((x - 0.1) / 0.05, 2)) +
           1.0 * std::exp(-std::pow((x - 0.7) / 0.05, 2));
  };
  const auto result = ga_optimize(space, objective, {.seed = 23});
  EXPECT_NEAR(result.best_point[0], 0.7, 0.05);
}

TEST(Ga, EvaluationBudgetMatchesPopulationTimesGenerations) {
  const auto space = mixed_space();
  GaOptions options;
  options.population = 30;
  options.generations = 20;
  const auto result = ga_optimize(space, concave, options);
  // Initial population + offspring per generation + final re-evaluation.
  EXPECT_GE(result.evaluations, 30u * 20u / 2);
  EXPECT_LE(result.evaluations, 30u * 21u + 1);
  EXPECT_EQ(result.best_history.size(), 21u);
}

TEST(Ga, BestHistoryIsMonotonic) {
  const auto result = ga_optimize(mixed_space(), concave, {.seed = 31});
  for (std::size_t i = 1; i < result.best_history.size(); ++i) {
    EXPECT_GE(result.best_history[i], result.best_history[i - 1]);
  }
}

TEST(Ga, DeterministicForSeed) {
  const auto a = ga_optimize(mixed_space(), concave, {.seed = 7});
  const auto b = ga_optimize(mixed_space(), concave, {.seed = 7});
  EXPECT_EQ(a.best_point, b.best_point);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST(GridSearch, FindsGridOptimum) {
  const auto space = mixed_space();
  const std::vector<std::size_t> levels = {2, 5, 5};
  const auto result = grid_search(space, concave, levels);
  EXPECT_EQ(result.evaluations, space.grid_size(levels));
  EXPECT_DOUBLE_EQ(result.best_point[0], 1.0);
}

TEST(GreedySearch, SucceedsOnSeparableObjective) {
  const auto space = mixed_space();
  const auto result = greedy_search(space, concave, {0.0, 8.0, 0.05}, 9, 2);
  EXPECT_DOUBLE_EQ(result.best_point[0], 1.0);
  EXPECT_NEAR(result.best_point[1], 60.0, 11.0);
}

TEST(GreedySearch, TrapsOnInterdependentObjective) {
  // XOR-flavoured coupling: good points are (0, low) and (1, high); the
  // coordinate sweep from (0, high) cannot reach (1, high) without first
  // getting worse — Figure 6's argument against greedy tuning.
  SearchSpace space({{"a", true, 0, 1}, {"b", false, 0.0, 1.0}});
  auto coupled = [](std::span<const double> p) {
    const bool a = p[0] > 0.5;
    return a ? p[1] : 1.0 - p[1];
  };
  const auto greedy = greedy_search(space, coupled, {0.0, 0.4}, 6, 2);
  const auto ga = ga_optimize(space, coupled, {.seed = 11});
  EXPECT_GE(ga.best_fitness, greedy.best_fitness - 1e-9);
  EXPECT_NEAR(ga.best_fitness, 1.0, 0.02);
}

TEST(RandomSearch, ImprovesWithBudget) {
  const auto space = mixed_space();
  const auto small = random_search(space, concave, 10, 3);
  const auto large = random_search(space, concave, 1000, 3);
  EXPECT_GE(large.best_fitness, small.best_fitness);
  EXPECT_EQ(large.evaluations, 1000u);
}

}  // namespace
}  // namespace rafiki::opt
