// Workload forecasting — the paper's stated future work (Section 6: "we are
// also developing a prediction model for the workloads").
//
// MG-RAST traffic is regime-switching (Figure 3): extended read-heavy
// periods punctuated by write bursts, with abrupt transitions. A forecaster
// that anticipates the next window's read ratio lets the online tuner
// pre-compute (and even pre-apply) the next configuration instead of
// reacting a window late.
//
// The model matches the trace's generating structure: windows are classified
// into {write-heavy, mixed, read-heavy} regimes; a first-order Markov chain
// is estimated over regime transitions. The point forecast is the *median*
// of the predictive distribution — the most likely next regime's level
// (an EWMA of recent read ratios while the regime is expected to hold, the
// destination regime's historical mean across an expected switch) — because
// the regime process is near-memoryless and a mean-blend would hedge every
// stable window toward 0.5. The forecaster's switch *probabilities* are the
// real product: they drive configuration prefetching in the online tuner.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace rafiki::workload {

struct ForecastOptions {
  /// Regime boundaries on the read ratio.
  double read_heavy_threshold = 0.7;
  double write_heavy_threshold = 0.3;
  /// Smoothing of the within-regime persistence estimate.
  double ewma_alpha = 0.4;
  /// Laplace smoothing for transition counts (keeps early forecasts sane).
  double transition_prior = 0.5;
};

class WorkloadForecaster {
 public:
  enum class Regime : int { kWriteHeavy = 0, kMixed = 1, kReadHeavy = 2 };
  static constexpr std::size_t kRegimes = 3;

  explicit WorkloadForecaster(ForecastOptions options = {});

  /// Feeds the read ratio observed over the window that just ended.
  void observe(double read_ratio);

  /// Point forecast of the next window's read ratio (predictive median).
  /// With no observations, returns 0.5 (maximum-entropy guess).
  double predict_next() const;

  /// The possible next-regime levels ranked by probability: (probability,
  /// representative read ratio) pairs, descending. The online tuner
  /// prefetches configurations for the top entries so that a regime switch
  /// pays no optimizer latency (see core::OnlineTuner::prefetch).
  std::vector<std::pair<double, double>> likely_next() const;

  /// Probability the next window stays in the current regime.
  double persistence_probability() const;

  std::size_t observations() const noexcept { return observations_; }
  Regime current_regime() const noexcept { return last_; }
  Regime regime_of(double read_ratio) const noexcept;
  /// Estimated P(next = to | current = from), Laplace-smoothed.
  double transition_probability(Regime from, Regime to) const;
  /// Historical mean read ratio of a regime (the regime's midpoint until
  /// observed).
  double regime_mean(Regime regime) const;

 private:
  ForecastOptions options_;
  std::array<std::array<double, kRegimes>, kRegimes> transitions_{};
  std::array<double, kRegimes> regime_sum_{};
  std::array<double, kRegimes> regime_count_{};
  double ewma_ = 0.5;
  Regime last_ = Regime::kMixed;
  std::size_t observations_ = 0;
};

/// Convenience: mean absolute forecast error of (a) the forecaster and
/// (b) naive persistence (predict next = current) over a read-ratio series.
/// Used by tests and the ablation bench to show the forecaster's edge.
struct ForecastEvaluation {
  double forecaster_mae = 0.0;
  double persistence_mae = 0.0;
};
ForecastEvaluation evaluate_forecaster(const std::vector<double>& read_ratios,
                                       ForecastOptions options = {});

}  // namespace rafiki::workload
