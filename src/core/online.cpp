#include "core/online.h"

#include <cmath>
#include <utility>

namespace rafiki::core {

OnlineTuner::OnlineTuner(const Rafiki& rafiki, OnlineTunerOptions options)
    : rafiki_(&rafiki), options_(options) {}

int OnlineTuner::bucket_for(double read_ratio) const noexcept {
  return static_cast<int>(std::round(read_ratio / options_.rr_bucket));
}

void OnlineTuner::set_publish_hook(PublishHook hook) {
  MutexLock lock(mutex_);
  publish_ = std::move(hook);
}

void OnlineTuner::set_async_optimize_hook(AsyncOptimizeHook hook) {
  MutexLock lock(mutex_);
  async_optimize_ = std::move(hook);
}

bool OnlineTuner::cached(double read_ratio) const {
  MutexLock lock(mutex_);
  return cache_.count(bucket_for(read_ratio)) != 0;
}

std::size_t OnlineTuner::reconfigurations() const {
  MutexLock lock(mutex_);
  return reconfigurations_;
}

std::size_t OnlineTuner::optimizer_runs() const {
  MutexLock lock(mutex_);
  return optimizer_runs_;
}

OnlineTuner::Decision OnlineTuner::decide_locked(double read_ratio) {
  Decision decision;
  const bool moved = !have_config_ ||
                     std::abs(read_ratio - current_rr_) >= options_.rr_change_threshold;
  if (moved) {
    const auto it = cache_.find(bucket_for(read_ratio));
    if (it != cache_.end()) {
      // The regime moved and an optimized config is ready: adopt it.
      if (!have_config_ || !(it->second.config == current_)) {
        current_ = it->second.config;
        ++reconfigurations_;
        decision.reconfigured = true;
      }
      current_rr_ = read_ratio;
      have_config_ = true;
      decision.config = current_;
      decision.predicted_throughput = it->second.predicted_throughput;
      return decision;
    }
    // Miss: keep serving the current config (stale-while-revalidate). The
    // regime anchor is deliberately not advanced, so later windows in this
    // bucket keep asking until the optimized entry lands in the cache.
    decision.stale = true;
  }
  decision.config = current_;
  decision.predicted_throughput = rafiki_->predict(read_ratio, current_);
  return decision;
}

OnlineTuner::Decision OnlineTuner::decide(double read_ratio) {
  MutexLock lock(mutex_);
  return decide_locked(read_ratio);
}

void OnlineTuner::observe_sample(double read_ratio, const engine::Config& config,
                                 double throughput) {
  rafiki_->observe_sample(read_ratio, config, throughput);
}

bool OnlineTuner::run_optimize(double read_ratio) {
  // Dynamic knob mode: re-screen before searching, so the GA always runs in
  // the freshest active subspace. This rides the background optimize path
  // (the serve layer's RetrainWorker), never a request thread. When the
  // active set changed, the memoized configs were cut for the old subspace —
  // drop them so every bucket re-optimizes in the new one.
  if (rafiki_->rescreen()) {
    MutexLock lock(mutex_);
    cache_.clear();
  }

  const int bucket = bucket_for(read_ratio);
  {
    MutexLock lock(mutex_);
    if (cache_.count(bucket) != 0) return false;  // coalesced: already optimized
    if (in_flight_.count(bucket) != 0) {
      // Another thread is mid-GA for this bucket; wait for its result so
      // callers relying on inline semantics observe a warm cache on return.
      while (in_flight_.count(bucket) != 0) optimize_done_.wait(mutex_);
      return false;
    }
    in_flight_.insert(bucket);
  }

  // The expensive part runs with no lock held: decisions and other buckets'
  // optimizations proceed concurrently.
  const Rafiki::OptimizeResult result = rafiki_->optimize(read_ratio);

  PublishHook publish;
  {
    MutexLock lock(mutex_);
    in_flight_.erase(bucket);
    cache_.emplace(bucket, result);
    ++optimizer_runs_;
    publish = publish_;
  }
  optimize_done_.notify_all();
  if (publish) publish(bucket, result);
  return true;
}

void OnlineTuner::prefetch(double read_ratio) {
  AsyncOptimizeHook async;
  {
    MutexLock lock(mutex_);
    if (cache_.count(bucket_for(read_ratio)) != 0) return;
    async = async_optimize_;
  }
  if (async) {
    async(bucket_for(read_ratio), read_ratio);
  } else {
    run_optimize(read_ratio);
  }
}

OnlineTuner::Decision OnlineTuner::on_window(double read_ratio) {
  Decision decision;
  AsyncOptimizeHook async;
  {
    MutexLock lock(mutex_);
    decision = decide_locked(read_ratio);
    if (!decision.stale) return decision;
    async = async_optimize_;
  }
  if (async) {
    // Stale-while-revalidate: hand the miss to the background worker (hook
    // invoked with no tuner lock held) and answer with the current config
    // immediately.
    async(bucket_for(read_ratio), read_ratio);
    return decision;
  }
  // Standalone (no worker attached): optimize inline, then re-decide against
  // the now-warm cache — the original blocking behaviour.
  run_optimize(read_ratio);
  return decide(read_ratio);
}

}  // namespace rafiki::core
