// Tenant fleet: token-bucket and in-flight quota semantics under an injected
// clock, fleet admission verdicts and fairness counters, per-tenant
// publish/retrain isolation (bit-exact snapshot pointers), fleet-of-one
// parity with the single-tenant service, and the rebalance-vs-publish race
// (the suite's tsan probe: the policy thread migrates route slots while
// publishes fan out and requests route).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rafiki.h"
#include "engine/params.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "tenant/fleet.h"
#include "tenant/quota.h"
#include "tenant/registry.h"

namespace rafiki::tenant {
namespace {

// --- quota unit tests (no trained model needed) -----------------------------

TEST(TenantQuota, UnlimitedByDefault) {
  TenantQuota quota;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(quota.try_acquire_token());
    EXPECT_TRUE(quota.begin_request());
  }
  EXPECT_EQ(quota.in_flight(), 0u);  // cap disabled: nothing is counted
}

TEST(TenantQuota, TokenBucketRefillsOnTheInjectedClock) {
  std::atomic<std::uint64_t> clock_us{0};
  QuotaOptions options;
  options.rate_per_s = 2.0;
  options.burst = 4.0;
  options.clock_us = [&clock_us] { return clock_us.load(); };
  TenantQuota quota(options);

  // The bucket starts full: exactly `burst` tokens are available.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(quota.try_acquire_token()) << i;
  EXPECT_FALSE(quota.try_acquire_token());

  // 500 ms at 2 tokens/s refills exactly one token.
  clock_us.store(500'000);
  EXPECT_TRUE(quota.try_acquire_token());
  EXPECT_FALSE(quota.try_acquire_token());

  // A repeated (or rewound) injected tick must not mint tokens.
  clock_us.store(500'000);
  EXPECT_FALSE(quota.try_acquire_token());

  // A long idle period caps at burst, not elapsed * rate.
  clock_us.store(60'000'000);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(quota.try_acquire_token()) << i;
  EXPECT_FALSE(quota.try_acquire_token());
}

TEST(TenantQuota, InFlightCapAdmitsExactlyMax) {
  QuotaOptions options;
  options.max_in_flight = 2;
  TenantQuota quota(options);
  EXPECT_TRUE(quota.begin_request());
  EXPECT_TRUE(quota.begin_request());
  EXPECT_FALSE(quota.begin_request());  // at cap
  EXPECT_EQ(quota.in_flight(), 2u);     // the failed claim was undone
  quota.end_request();
  EXPECT_TRUE(quota.begin_request());
  quota.end_request();
  quota.end_request();
  EXPECT_EQ(quota.in_flight(), 0u);
}

TEST(TenantRegistry, DenseIdsAndUnknownTenantLookup) {
  TenantRegistry registry(3, nullptr);
  ASSERT_EQ(registry.size(), 3u);
  for (serve::TenantId t = 0; t < 3; ++t) {
    ASSERT_NE(registry.find(t), nullptr);
    EXPECT_EQ(registry.find(t)->id, t);
  }
  EXPECT_EQ(registry.find(3), nullptr);
  EXPECT_EQ(registry.find(0xFFFFFFFFu), nullptr);
}

// --- fleet admission (workers=0 so admitted requests park in the queue) -----

serve::Request request_for(serve::TenantId tenant, serve::Endpoint endpoint,
                           double read_ratio) {
  serve::Request request;
  request.tenant = tenant;
  request.endpoint = endpoint;
  request.read_ratio = read_ratio;
  return request;
}

TEST(TenantFleetAdmission, UnknownTenantIsNotReadyAndCounted) {
  FleetOptions options;
  options.tenants = 2;
  options.shard.shards = 1;
  options.shard.service.workers = 0;
  TenantFleet fleet(options);
  const auto verdict = fleet.try_submit(
      request_for(7, serve::Endpoint::kPredict, 0.5), [](serve::Response) {});
  EXPECT_EQ(verdict, serve::Status::kNotReady);
  const auto counters = fleet.fleet_counters();
  EXPECT_EQ(counters.unknown_tenant, 1u);
  EXPECT_EQ(counters.admitted, 0u);
  fleet.stop();
}

TEST(TenantFleetAdmission, InFlightCapRejectsOnlyTheCappedTenant) {
  FleetOptions options;
  options.tenants = 2;
  options.shard.shards = 1;
  options.shard.service.workers = 0;  // admitted requests park in the queue
  options.quota_for = [](serve::TenantId tenant) {
    QuotaOptions quota;
    if (tenant == 1) quota.max_in_flight = 1;
    return quota;
  };
  TenantFleet fleet(options);

  // Tenant 1's first request holds its only in-flight slot (no worker will
  // complete it); the second bounces with the typed kOverloaded.
  EXPECT_EQ(fleet.try_submit(request_for(1, serve::Endpoint::kPredict, 0.5),
                             [](serve::Response) {}),
            serve::Status::kOk);
  EXPECT_EQ(fleet.try_submit(request_for(1, serve::Endpoint::kPredict, 0.6),
                             [](serve::Response) {}),
            serve::Status::kOverloaded);
  // The victim tenant (0, uncapped) is untouched by the noisy neighbour.
  EXPECT_EQ(fleet.try_submit(request_for(0, serve::Endpoint::kPredict, 0.5),
                             [](serve::Response) {}),
            serve::Status::kOk);

  auto counters = fleet.fleet_counters();
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.inflight_rejected, 1u);
  EXPECT_EQ(counters.quota_rejected, 0u);
  EXPECT_EQ(fleet.registry().find(1)->quota.in_flight(), 1u);

  // stop() drains the parked requests (kShuttingDown) through the wrapped
  // callbacks, which must release every in-flight slot exactly once.
  fleet.stop();
  EXPECT_EQ(fleet.registry().find(1)->quota.in_flight(), 0u);
}

TEST(TenantFleetAdmission, TokenBucketRejectsWithOverloaded) {
  auto clock_us = std::make_shared<std::atomic<std::uint64_t>>(0);
  FleetOptions options;
  options.tenants = 1;
  options.shard.shards = 1;
  options.shard.service.workers = 0;
  options.quota_for = [clock_us](serve::TenantId) {
    QuotaOptions quota;
    quota.rate_per_s = 1.0;
    quota.burst = 1.0;
    quota.clock_us = [clock_us] { return clock_us->load(); };
    return quota;
  };
  TenantFleet fleet(options);

  EXPECT_EQ(fleet.try_submit(request_for(0, serve::Endpoint::kPredict, 0.5),
                             [](serve::Response) {}),
            serve::Status::kOk);
  EXPECT_EQ(fleet.try_submit(request_for(0, serve::Endpoint::kPredict, 0.5),
                             [](serve::Response) {}),
            serve::Status::kOverloaded);
  clock_us->store(1'000'000);  // 1 s refills the single token
  EXPECT_EQ(fleet.try_submit(request_for(0, serve::Endpoint::kPredict, 0.5),
                             [](serve::Response) {}),
            serve::Status::kOk);

  const auto counters = fleet.fleet_counters();
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.quota_rejected, 1u);
  fleet.stop();
}

// --- trained-pipeline tests -------------------------------------------------

class TenantFleetServing : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RafikiOptions options;
    options.workload_grid = {0.2, 0.8};
    options.n_configs = 5;
    options.collect.measure.ops = 3000;
    options.collect.measure.warmup_ops = 300;
    options.ensemble.n_nets = 3;
    options.ensemble.train.max_epochs = 30;
    options.ga.generations = 6;
    options.ga.population = 10;
    rafiki_ = new core::Rafiki(options);
    rafiki_->set_key_params(engine::key_params());
    rafiki_->train(rafiki_->collect());
    ASSERT_TRUE(rafiki_->trained());
  }

  static void TearDownTestSuite() {
    delete rafiki_;
    rafiki_ = nullptr;
  }

  static core::Rafiki* rafiki_;
};

core::Rafiki* TenantFleetServing::rafiki_ = nullptr;

TEST_F(TenantFleetServing, PublishToOneTenantLeavesSiblingsBitExact) {
  serve::ServiceOptions options;
  options.tenants = 3;
  options.workers = 0;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));

  // All slots share the publish but stamp their own (equal) first version.
  for (serve::TenantId t = 0; t < 3; ++t) {
    ASSERT_NE(service.tenant_snapshot(t), nullptr) << t;
    EXPECT_EQ(service.tenant_model_version(t), 1u) << t;
  }
  const auto snap0 = service.tenant_snapshot(0);
  const auto snap2 = service.tenant_snapshot(2);

  // A tuned republish into tenant 1's slot must not touch tenant 0 or 2:
  // same shared_ptr (bit-exact, not just equal) and same version.
  const auto result = rafiki_->optimize(0.42);
  service.publish_tuned(1, 42, result.config, result.predicted_throughput);
  EXPECT_EQ(service.tenant_model_version(1), 2u);
  EXPECT_EQ(service.tenant_snapshot(1)->tuned.count(42), 1u);
  EXPECT_EQ(service.tenant_snapshot(0).get(), snap0.get());
  EXPECT_EQ(service.tenant_snapshot(2).get(), snap2.get());
  EXPECT_EQ(service.tenant_model_version(0), 1u);
  EXPECT_EQ(service.tenant_model_version(2), 1u);
  EXPECT_EQ(service.tenant_snapshot(0)->tuned.count(42), 0u);
  service.stop();
}

TEST_F(TenantFleetServing, FleetOfOneMatchesSingleTenantServiceBitExactly) {
  serve::Request request;
  request.endpoint = serve::Endpoint::kPredict;
  request.read_ratio = 0.37;
  request.config = engine::Config::defaults();

  serve::TuningService plain{serve::ServiceOptions{}};
  plain.publish(serve::make_snapshot(*rafiki_));
  plain.start();
  const auto expected = plain.call(request);
  plain.stop();

  FleetOptions options;
  options.tenants = 1;
  options.shard.shards = 1;
  TenantFleet fleet(options);
  fleet.publish(serve::make_snapshot(*rafiki_));
  fleet.start();
  const auto actual = fleet.call(request);
  fleet.stop();

  ASSERT_EQ(actual.status, serve::Status::kOk);
  EXPECT_EQ(actual.mean, expected.mean);
  EXPECT_EQ(actual.stddev, expected.stddev);
  EXPECT_EQ(actual.config, expected.config);
}

TEST_F(TenantFleetServing, TenantsShareTheModelButAnswerIndependently) {
  FleetOptions options;
  options.tenants = 3;
  options.shard.shards = 2;
  TenantFleet fleet(options);
  fleet.publish(serve::make_snapshot(*rafiki_));
  fleet.start();

  // The same question from different tenants reads per-tenant slots holding
  // the same published model: answers are bit-identical.
  serve::Response first;
  for (serve::TenantId t = 0; t < 3; ++t) {
    const auto response = fleet.call(request_for(t, serve::Endpoint::kPredict, 0.61));
    ASSERT_EQ(response.status, serve::Status::kOk) << "tenant " << t;
    if (t == 0) {
      first = response;
    } else {
      EXPECT_EQ(response.mean, first.mean) << "tenant " << t;
      EXPECT_EQ(response.stddev, first.stddev) << "tenant " << t;
    }
  }
  fleet.stop();
  const auto counters = fleet.fleet_counters();
  EXPECT_EQ(counters.admitted, 3u);
  EXPECT_EQ(counters.unknown_tenant + counters.quota_rejected +
                counters.inflight_rejected,
            0u);
}

TEST_F(TenantFleetServing, PerTenantRetrainNeverCoalescesAcrossTenants) {
  FleetOptions options;
  options.tenants = 2;
  options.shard.shards = 2;
  TenantFleet fleet(options);
  fleet.attach_rafiki(*rafiki_);
  fleet.publish(serve::make_snapshot(*rafiki_));
  fleet.start();

  // The same unseen read ratio from both tenants: each tenant's ObserveWindow
  // miss enqueues under its OWN retrain key (tenant, bucket), so the two
  // optimizations both run — tenant B's miss is never absorbed by tenant A's
  // pending task for the same bucket.
  const double rr = 0.55;
  const auto r0 = fleet.call(request_for(0, serve::Endpoint::kObserveWindow, rr));
  const auto r1 = fleet.call(request_for(1, serve::Endpoint::kObserveWindow, rr));
  ASSERT_EQ(r0.status, serve::Status::kOk);
  ASSERT_EQ(r1.status, serve::Status::kOk);
  EXPECT_TRUE(r0.stale);
  EXPECT_TRUE(r1.stale);
  fleet.wait_retrain_idle();

  EXPECT_EQ(fleet.retrain_counters().runs, 2u);
  EXPECT_EQ(fleet.retrain_counters().coalesced, 0u);
  // Each tuner cached its own optimum and republished into its own slot.
  EXPECT_TRUE(fleet.tuner(0)->cached(rr));
  EXPECT_TRUE(fleet.tuner(1)->cached(rr));
  const int bucket = fleet.tuner(0)->bucket_for(rr);
  EXPECT_EQ(fleet.tenant_snapshot(0)->tuned.count(bucket), 1u);
  EXPECT_EQ(fleet.tenant_snapshot(1)->tuned.count(bucket), 1u);
  fleet.stop();
}

// The tsan probe: the rebalance policy thread rewrites the route table while
// publishes fan out to every shard and concurrent clients submit across
// tenants. No assertion beyond "finishes and stays coherent" — the value is
// the interleaving under -fsanitize=thread.
TEST_F(TenantFleetServing, RebalanceRacesPublishAndTrafficCleanly) {
  FleetOptions options;
  options.tenants = 4;
  options.shard.shards = 4;
  options.shard.service.workers = 2;
  options.shard.rebalance_interval = std::chrono::milliseconds(1);
  TenantFleet fleet(options);
  fleet.publish(serve::make_snapshot(*rafiki_));
  fleet.start();

  std::atomic<bool> stop{false};
  const auto tuned = rafiki_->optimize(0.3);
  std::thread publisher([&] {
    int bucket = 0;
    while (!stop.load(std::memory_order_acquire)) {
      fleet.router().publish_tuned(static_cast<serve::TenantId>(bucket % 4),
                                   bucket % 101, tuned.config,
                                   tuned.predicted_throughput);
      ++bucket;
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&fleet, &stop, c] {
      std::uint32_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto tenant = static_cast<serve::TenantId>((i + c) % 4);
        const double rr = static_cast<double>(i % 101) / 100.0;
        fleet.submit(request_for(tenant, serve::Endpoint::kPredict, rr)).get();
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  publisher.join();
  for (auto& t : clients) t.join();
  fleet.stop();

  // Coherence after the storm: every tenant still serves a snapshot and the
  // route table still maps every key to a live shard.
  for (serve::TenantId t = 0; t < 4; ++t) {
    EXPECT_NE(fleet.tenant_snapshot(t), nullptr);
    for (std::size_t band = 0; band < serve::ShardedTuningService::kBands; ++band) {
      EXPECT_LT(fleet.router().shard_of_key(t, band), fleet.router().shard_count());
    }
  }
}

}  // namespace
}  // namespace rafiki::tenant
