// VersionedRegistry: lock-free snapshot publication. The tsan preset is the
// real referee here — readers spin on get() with plain atomic shared_ptr
// loads while a publisher swaps versions underneath them, which is exactly
// the zero-downtime retrain path of the serving layer.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/registry.h"

namespace rafiki::serve {
namespace {

struct Payload {
  std::uint64_t version = 0;
  // Written once before publication; readers verify it matches version to
  // prove they never observe a half-constructed value.
  std::uint64_t shadow = 0;
};

TEST(VersionedRegistry, NullBeforeFirstPublish) {
  VersionedRegistry<Payload> registry;
  EXPECT_EQ(registry.get(), nullptr);
}

TEST(VersionedRegistry, GetReturnsLatestPublishedValue) {
  VersionedRegistry<Payload> registry;
  registry.set(std::make_shared<const Payload>(Payload{1, 1}));
  EXPECT_EQ(registry.get()->version, 1u);
  registry.set(std::make_shared<const Payload>(Payload{2, 2}));
  EXPECT_EQ(registry.get()->version, 2u);
}

TEST(VersionedRegistry, ReadersPinTheirVersionAcrossSwaps) {
  VersionedRegistry<Payload> registry;
  registry.set(std::make_shared<const Payload>(Payload{1, 1}));
  const auto pinned = registry.get();
  registry.set(std::make_shared<const Payload>(Payload{2, 2}));
  // The old version stays alive and unchanged for as long as a reader
  // holds it, however many publications happen meanwhile.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(registry.get()->version, 2u);
}

TEST(VersionedRegistry, ConcurrentReadersNeverSeeTornOrStaleGoingBackwards) {
  constexpr int kReaders = 4;
  constexpr std::uint64_t kVersions = 300;
  VersionedRegistry<Payload> registry;
  registry.set(std::make_shared<const Payload>(Payload{1, 1}));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<std::uint64_t> last_seen(kReaders, 0);
  std::vector<int> torn(kReaders, 0);
  std::vector<int> regressed(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = registry.get();
        if (!snapshot) continue;
        if (snapshot->shadow != snapshot->version) ++torn[static_cast<std::size_t>(r)];
        if (snapshot->version < last_seen[static_cast<std::size_t>(r)]) {
          ++regressed[static_cast<std::size_t>(r)];
        }
        last_seen[static_cast<std::size_t>(r)] = snapshot->version;
      }
    });
  }

  for (std::uint64_t v = 2; v <= kVersions; ++v) {
    registry.set(std::make_shared<const Payload>(Payload{v, v}));
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(torn[static_cast<std::size_t>(r)], 0) << "reader " << r;
    EXPECT_EQ(regressed[static_cast<std::size_t>(r)], 0) << "reader " << r;
  }
  EXPECT_EQ(registry.get()->version, kVersions);
}

}  // namespace
}  // namespace rafiki::serve
