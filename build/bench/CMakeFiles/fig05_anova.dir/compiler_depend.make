# Empty compiler generated dependencies file for fig05_anova.
# This may be replaced when dependencies are built.
