#include "workload/characterize.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.h"

namespace rafiki::workload {

std::vector<double> read_ratio_series(std::span<const TraceRecord> trace, double window_s) {
  std::vector<double> ratios;
  if (trace.empty() || window_s <= 0.0) return ratios;
  const double t0 = trace.front().t_s;
  std::size_t window = 0;
  std::size_t reads = 0, total = 0;
  for (const auto& record : trace) {
    const auto w = static_cast<std::size_t>((record.t_s - t0) / window_s);
    while (w > window) {
      ratios.push_back(total ? static_cast<double>(reads) / static_cast<double>(total) : 0.0);
      reads = total = 0;
      ++window;
    }
    ++total;
    if (record.op.kind == Op::Kind::kRead) ++reads;
  }
  if (total) ratios.push_back(static_cast<double>(reads) / static_cast<double>(total));
  return ratios;
}

std::vector<double> reuse_distances(std::span<const TraceRecord> trace) {
  std::vector<double> distances;
  std::unordered_map<std::int64_t, std::size_t> last_seen;
  last_seen.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto key = trace[i].op.key;
    if (auto it = last_seen.find(key); it != last_seen.end()) {
      distances.push_back(static_cast<double>(i - it->second - 1));
      it->second = i;
    } else {
      last_seen.emplace(key, i);
    }
  }
  return distances;
}

double find_stationary_window(std::span<const TraceRecord> trace,
                              std::span<const double> candidate_windows_s,
                              double slack) {
  std::vector<double> sorted(candidate_windows_s.begin(), candidate_windows_s.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> disagreements;
  for (double window_s : sorted) {
    // Disagreement between a window's two halves: compare RR measured at
    // half granularity pairwise.
    const auto halves = read_ratio_series(trace, window_s / 2.0);
    double disagreement = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i + 1 < halves.size(); i += 2) {
      disagreement += std::abs(halves[i] - halves[i + 1]);
      ++pairs;
    }
    disagreements.push_back(pairs ? disagreement / static_cast<double>(pairs) : 1.0);
  }
  if (sorted.empty()) return 0.0;
  const double best = *std::min_element(disagreements.begin(), disagreements.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (disagreements[i] <= best * slack + 1e-12) return sorted[i];
  }
  return sorted.back();
}

Characterization characterize(std::span<const TraceRecord> trace,
                              std::span<const double> candidate_windows_s) {
  Characterization ch;
  ch.window_s = find_stationary_window(trace, candidate_windows_s);
  ch.read_ratios = read_ratio_series(trace, ch.window_s);
  const auto distances = reuse_distances(trace);
  ch.krd_mean = fit_exponential_mean(distances);

  std::unordered_set<std::int64_t> seen;
  std::size_t writes = 0, inserts = 0;
  double payload_sum = 0.0;
  for (const auto& record : trace) {
    const bool is_new = seen.insert(record.op.key).second;
    if (record.op.kind == Op::Kind::kRead) continue;
    ++writes;
    payload_sum += record.op.value_bytes;
    if (is_new) ++inserts;
  }
  ch.insert_fraction = writes ? static_cast<double>(inserts) / static_cast<double>(writes) : 0.0;
  ch.mean_value_bytes = writes ? payload_sum / static_cast<double>(writes) : 0.0;
  return ch;
}

WorkloadSpec spec_for_window(const Characterization& ch, std::size_t window_index) {
  WorkloadSpec spec;
  spec.read_ratio = ch.read_ratios.at(window_index);
  spec.krd_mean = ch.krd_mean > 0.0 ? ch.krd_mean : spec.krd_mean;
  spec.insert_fraction = ch.insert_fraction;
  if (ch.mean_value_bytes > 0.0) {
    spec.value_bytes = static_cast<std::uint32_t>(ch.mean_value_bytes);
  }
  return spec;
}

}  // namespace rafiki::workload
