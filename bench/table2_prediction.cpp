// Table 2 + Section 4.7.2: prediction-model performance for Cassandra —
// average error, R^2 and RMSE for unseen configurations and unseen
// workloads, comparing the 20-net pruned ensemble against a single network.
// Ten randomized 75/25 trials per cell, as in the paper.
#include <cstdio>

#include "bench/common.h"
#include "ml/metrics.h"
#include "util/stats.h"

using namespace rafiki;

namespace {

struct Cell {
  double error = 0.0;
  double r2 = 0.0;
  double rmse_ops = 0.0;
};

Cell evaluate(const collect::Dataset& dataset, core::RafikiOptions options,
              bool by_config, std::size_t n_nets) {
  options.ensemble.n_nets = n_nets;
  if (n_nets == 1) options.ensemble.prune_fraction = 0.0;
  constexpr int kTrials = 10;
  Cell cell;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto split = by_config ? dataset.split_by_config(0.25, 500 + trial)
                                 : dataset.split_by_workload(0.25, 600 + trial);
    core::Rafiki model(options);
    model.set_key_params(engine::key_params());
    model.train(dataset.subset(split.train));
    std::vector<double> actual, predicted;
    for (auto i : split.test) {
      const auto& sample = dataset[i];
      actual.push_back(sample.throughput);
      predicted.push_back(model.predict(sample.workload.read_ratio, sample.config));
    }
    cell.error += ml::mape_percent(actual, predicted);
    cell.r2 += ml::r_squared(actual, predicted);
    cell.rmse_ops += ml::rmse(actual, predicted);
  }
  cell.error /= kTrials;
  cell.r2 /= kTrials;
  cell.rmse_ops /= kTrials;
  return cell;
}

}  // namespace

int main() {
  auto options = benchutil::paper_options();
  options.collect.fault_rate = 20.0 / 220.0;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  benchutil::note("collecting the 200-sample training corpus...");
  const auto dataset = rafiki.collect();
  std::printf("collected %zu usable samples\n", dataset.size());

  benchutil::note("evaluating 4 cells x 10 randomized trials (this trains 40 ensembles)...");
  const Cell c20 = evaluate(dataset, options, true, 20);
  const Cell w20 = evaluate(dataset, options, false, 20);
  const Cell c1 = evaluate(dataset, options, true, 1);
  const Cell w1 = evaluate(dataset, options, false, 1);

  Table table({"metric", "20 nets / config", "20 nets / workload", "1 net / config",
               "1 net / workload"});
  table.add_row({"Prediction error", Table::pct(c20.error), Table::pct(w20.error),
                 Table::pct(c1.error), Table::pct(w1.error)});
  table.add_row({"R^2", Table::num(c20.r2, 2), Table::num(w20.r2, 2),
                 Table::num(c1.r2, 2), Table::num(w1.r2, 2)});
  table.add_row({"Avg RMSE (ops/s)", Table::ops(c20.rmse_ops), Table::ops(w20.rmse_ops),
                 Table::ops(c1.rmse_ops), Table::ops(w1.rmse_ops)});
  benchutil::emit(table, "Table 2: prediction-model performance (Cassandra)");

  benchutil::compare("20-net unseen-config error", "7.5% (R^2 0.74, RMSE 6,859)",
                     Table::pct(c20.error) + " (R^2 " + Table::num(c20.r2, 2) +
                         ", RMSE " + Table::ops(c20.rmse_ops) + ")");
  benchutil::compare("20-net unseen-workload error", "5.6% (R^2 0.75, RMSE 6,157)",
                     Table::pct(w20.error) + " (R^2 " + Table::num(w20.r2, 2) +
                         ", RMSE " + Table::ops(w20.rmse_ops) + ")");
  benchutil::compare("ensemble beats single net on configs", "7.5% vs 10.1%",
                     Table::pct(c20.error) + " vs " + Table::pct(c1.error));
  benchutil::compare("workload dim easier than config dim", "yes",
                     w20.error < c20.error ? "yes" : "NO");
  return 0;
}
