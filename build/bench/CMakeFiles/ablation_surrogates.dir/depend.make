# Empty dependencies file for ablation_surrogates.
# This may be replaced when dependencies are built.
