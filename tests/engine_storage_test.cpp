#include <gtest/gtest.h>

#include "engine/bloom.h"
#include "engine/cache.h"
#include "engine/memtable.h"
#include "engine/sstable.h"
#include "util/rng.h"

namespace rafiki::engine {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 5000; ++k) keys.push_back(k * 7 + 1);
  const auto filter = BloomFilter::build(keys, 0.01);
  for (auto k : keys) EXPECT_TRUE(filter.maybe_contains(k));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 20000; ++k) keys.push_back(k);
  for (double fp : {0.01, 0.05}) {
    const auto filter = BloomFilter::build(keys, fp);
    std::size_t hits = 0;
    constexpr std::size_t kProbes = 50000;
    for (std::size_t i = 0; i < kProbes; ++i) {
      if (filter.maybe_contains(static_cast<std::int64_t>(1000000 + i))) ++hits;
    }
    const double observed = static_cast<double>(hits) / kProbes;
    EXPECT_LT(observed, fp * 2.5) << "target " << fp;
    EXPECT_GT(observed, fp * 0.2) << "target " << fp;
  }
}

TEST(BloomFilter, LowerFpChanceUsesMoreBits) {
  BloomFilter tight(1000, 0.001);
  BloomFilter loose(1000, 0.1);
  EXPECT_GT(tight.bit_count(), loose.bit_count());
  EXPECT_GT(tight.hash_count(), loose.hash_count());
}

TEST(Memtable, InsertAndUpdateAccounting) {
  Memtable memtable;
  const auto grow1 = memtable.put(42, 100);
  EXPECT_EQ(grow1, 100 + Memtable::kRowOverheadBytes);
  EXPECT_EQ(memtable.row_count(), 1u);
  // Update in place: only the size delta counts against the threshold.
  const auto grow2 = memtable.put(42, 150);
  EXPECT_EQ(grow2, 50);
  EXPECT_EQ(memtable.row_count(), 1u);
  EXPECT_EQ(memtable.bytes(), static_cast<std::uint64_t>(150 + Memtable::kRowOverheadBytes));
  EXPECT_TRUE(memtable.contains(42));
  EXPECT_FALSE(memtable.contains(43));
}

TEST(Memtable, ClearResets) {
  Memtable memtable;
  memtable.put(1, 10);
  memtable.clear();
  EXPECT_TRUE(memtable.empty());
  EXPECT_EQ(memtable.bytes(), 0u);
}

TEST(SSTable, SortsAndDeduplicatesKeys) {
  SSTable table(1, {5, 3, 9, 3, 1}, 100.0, 0.01);
  EXPECT_EQ(table.key_count(), 4u);
  EXPECT_EQ(table.min_key(), 1);
  EXPECT_EQ(table.max_key(), 9);
  EXPECT_TRUE(table.has_key(3));
  EXPECT_FALSE(table.has_key(4));
  EXPECT_TRUE(table.range_covers(4));
  EXPECT_FALSE(table.range_covers(10));
}

TEST(SSTable, KeyRankIsOrdinal) {
  SSTable table(1, {10, 20, 30, 40}, 64.0, 0.01);
  EXPECT_EQ(table.key_rank(10), 0u);
  EXPECT_EQ(table.key_rank(40), 3u);
}

TEST(SSTable, MergeDeduplicatesAcrossInputs) {
  SSTable a(1, {1, 2, 3}, 100.0, 0.01);
  SSTable b(2, {3, 4, 5}, 100.0, 0.01);
  const SSTable* inputs[] = {&a, &b};
  const auto merged = SSTable::merge(3, inputs, 0.01, 0);
  EXPECT_EQ(merged.key_count(), 5u);
  // Superseded version of key 3 dropped: bytes shrink below the input sum.
  EXPECT_LT(merged.bytes(), a.bytes() + b.bytes());
  EXPECT_EQ(merged.id(), 3u);
}

TEST(SSTable, SplitProducesBoundedNonOverlappingTables) {
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 1000; ++k) keys.push_back(k);
  std::uint32_t next_id = 10;
  const auto tables = SSTable::split_into_tables(next_id, std::move(keys), 100.0,
                                                 100.0 * 128, 0.01, 2);
  ASSERT_EQ(tables.size(), 8u);  // 1000 keys / 128 per table
  for (std::size_t i = 0; i < tables.size(); ++i) {
    EXPECT_LE(tables[i].bytes(), 100.0 * 128 + 1.0);
    EXPECT_EQ(tables[i].level(), 2);
    for (std::size_t j = i + 1; j < tables.size(); ++j) {
      EXPECT_FALSE(tables[i].overlaps(tables[j]));
    }
  }
  EXPECT_EQ(next_id, 18u);
}

TEST(SSTable, OverlapIsRangeBased) {
  SSTable a(1, {1, 10}, 10.0, 0.01);
  SSTable b(2, {5, 20}, 10.0, 0.01);
  SSTable c(3, {11, 30}, 10.0, 0.01);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.insert(1);
  cache.insert(2);
  EXPECT_TRUE(cache.touch(1));  // promotes 1
  cache.insert(3);              // evicts 2
  EXPECT_TRUE(cache.touch(1));
  EXPECT_FALSE(cache.touch(2));
  EXPECT_TRUE(cache.touch(3));
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruCache<int> cache(0);
  cache.insert(1);
  EXPECT_FALSE(cache.touch(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, EraseAndShrink) {
  LruCache<int> cache(4);
  for (int i = 0; i < 4; ++i) cache.insert(i);
  cache.erase(2);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.touch(2));
  cache.set_capacity(1);  // shrink evicts down to 1
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, HitRateAccounting) {
  LruCache<int> cache(8);
  cache.insert(5);
  cache.touch(5);
  cache.touch(5);
  cache.touch(6);
  EXPECT_EQ(cache.hits(), 2u);
}

}  // namespace
}  // namespace rafiki::engine
