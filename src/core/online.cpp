#include "core/online.h"

#include <cmath>

namespace rafiki::core {

OnlineTuner::OnlineTuner(const Rafiki& rafiki, OnlineTunerOptions options)
    : rafiki_(&rafiki), options_(options) {}

void OnlineTuner::prefetch(double read_ratio) {
  const int bucket = static_cast<int>(std::round(read_ratio / options_.rr_bucket));
  if (!cache_.contains(bucket)) {
    ++optimizer_runs_;
    cache_.emplace(bucket, rafiki_->optimize(read_ratio));
  }
}

OnlineTuner::Decision OnlineTuner::on_window(double read_ratio) {
  Decision decision;
  const bool moved = !have_config_ ||
                     std::abs(read_ratio - current_rr_) >= options_.rr_change_threshold;
  if (moved) {
    const int bucket = static_cast<int>(std::round(read_ratio / options_.rr_bucket));
    auto it = cache_.find(bucket);
    if (it == cache_.end()) {
      ++optimizer_runs_;
      it = cache_.emplace(bucket, rafiki_->optimize(read_ratio)).first;
    }
    if (!have_config_ || !(it->second.config == current_)) {
      current_ = it->second.config;
      ++reconfigurations_;
      decision.reconfigured = true;
    }
    current_rr_ = read_ratio;
    have_config_ = true;
    decision.predicted_throughput = it->second.predicted_throughput;
  } else {
    decision.predicted_throughput = rafiki_->predict(read_ratio, current_);
  }
  decision.config = current_;
  return decision;
}

}  // namespace rafiki::core
