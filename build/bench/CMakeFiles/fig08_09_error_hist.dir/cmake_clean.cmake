file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_error_hist.dir/fig08_09_error_hist.cpp.o"
  "CMakeFiles/fig08_09_error_hist.dir/fig08_09_error_hist.cpp.o.d"
  "fig08_09_error_hist"
  "fig08_09_error_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_error_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
