// End-to-end pipeline tests: collection -> surrogate -> GA optimization,
// with reduced budgets relative to the bench harnesses but asserting the
// paper's qualitative claims (prediction error in the single digits,
// optimized configs beating the default, agile re-tuning).
#include "core/rafiki.h"

#include <gtest/gtest.h>

#include "core/online.h"
#include "ml/metrics.h"

namespace rafiki::core {
namespace {

RafikiOptions small_options() {
  RafikiOptions options;
  options.workload_grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  options.n_configs = 16;
  options.collect.measure.ops = 30000;
  options.collect.measure.warmup_ops = 6000;
  options.base_workload.initial_keys = 20000;
  options.ensemble.n_nets = 8;
  options.ensemble.train.max_epochs = 60;
  options.ga.population = 32;
  options.ga.generations = 30;
  return options;
}

/// Shared fixture: collect + train once, reuse across assertions.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rafiki_ = new Rafiki(small_options());
    rafiki_->set_key_params(engine::key_params());
    dataset_ = new collect::Dataset(rafiki_->collect());
    rafiki_->train(*dataset_);
  }
  static void TearDownTestSuite() {
    delete rafiki_;
    delete dataset_;
    rafiki_ = nullptr;
    dataset_ = nullptr;
  }
  static Rafiki* rafiki_;
  static collect::Dataset* dataset_;
};

Rafiki* PipelineTest::rafiki_ = nullptr;
collect::Dataset* PipelineTest::dataset_ = nullptr;

TEST_F(PipelineTest, CollectsFullLattice) {
  EXPECT_EQ(dataset_->size(), 6u * 16u);
}

TEST_F(PipelineTest, TrainingFitIsTight) {
  std::vector<double> actual, predicted;
  for (const auto& sample : dataset_->samples()) {
    actual.push_back(sample.throughput);
    predicted.push_back(rafiki_->predict(sample.workload.read_ratio, sample.config));
  }
  // In-sample error well under the paper's 7.5% out-of-sample figure.
  EXPECT_LT(ml::mape_percent(actual, predicted), 6.0);
  EXPECT_GT(ml::r_squared(actual, predicted), 0.8);
}

TEST_F(PipelineTest, HoldoutPredictionErrorStaysBounded) {
  // Average over randomized config-wise splits, as the paper does over ten
  // trials (Section 4.7.2). Budgets here are a quarter of the bench harness
  // (16 configs, 6 workloads vs the paper's 20 x 11), so unseen-config
  // extrapolation is much harder than in the paper-protocol bench
  // (bench/fig07_training_curve reports the headline number); this test only
  // guards against regressions that break generalization outright.
  double total = 0.0;
  constexpr int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rafiki holdout(small_options());
    holdout.set_key_params(engine::key_params());
    const auto split = dataset_->split_by_config(0.25, 77 + trial);
    holdout.train(dataset_->subset(split.train));

    std::vector<double> actual, predicted;
    for (auto i : split.test) {
      const auto& sample = (*dataset_)[i];
      actual.push_back(sample.throughput);
      predicted.push_back(holdout.predict(sample.workload.read_ratio, sample.config));
    }
    total += ml::mape_percent(actual, predicted);
  }
  EXPECT_LT(total / kTrials, 28.0);
}

TEST_F(PipelineTest, OptimizedConfigBeatsDefaultForReadHeavy) {
  const auto result = rafiki_->optimize(0.9);
  collect::MeasureOptions measure = rafiki_->options().collect.measure;
  measure.seed = 4242;
  workload::WorkloadSpec workload = rafiki_->options().base_workload;
  workload.read_ratio = 0.9;
  const double tuned = collect::measure_throughput(result.config, workload, measure);
  const double fallback =
      collect::measure_throughput(engine::Config::defaults(), workload, measure);
  EXPECT_GT(tuned, fallback * 1.1) << "tuned " << result.config.to_string();
}

TEST_F(PipelineTest, OptimizerPrefersLeveledForReadsSizeTieredForWrites) {
  const auto read_heavy = rafiki_->optimize(1.0);
  EXPECT_EQ(read_heavy.config.get_int(engine::ParamId::kCompactionMethod), 1);
}

TEST_F(PipelineTest, OptimizeReportsEvaluationsAndTime) {
  const auto result = rafiki_->optimize(0.5);
  EXPECT_GT(result.surrogate_evaluations, 500u);
  EXPECT_GT(result.predicted_throughput, 0.0);
  EXPECT_LT(result.wall_seconds, 30.0);
}

TEST_F(PipelineTest, OnlineTunerReconfiguresOnRegimeChange) {
  OnlineTuner tuner(*rafiki_);
  const auto first = tuner.on_window(0.9);
  EXPECT_TRUE(first.reconfigured);
  // Small wobble: no reconfiguration.
  const auto wobble = tuner.on_window(0.85);
  EXPECT_FALSE(wobble.reconfigured);
  // Abrupt write burst: re-optimize.
  const auto burst = tuner.on_window(0.1);
  EXPECT_TRUE(burst.reconfigured);
  EXPECT_EQ(tuner.reconfigurations(), 2u);
  // Back to the read-heavy regime: cached result, no new optimizer run.
  const auto back = tuner.on_window(0.9);
  EXPECT_TRUE(back.reconfigured);
  EXPECT_EQ(tuner.optimizer_runs(), 2u);
}

TEST(RafikiOptionsTest, PredictBeforeTrainThrows) {
  Rafiki rafiki(small_options());
  rafiki.set_key_params(engine::key_params());
  EXPECT_THROW(rafiki.predict(0.5, engine::Config::defaults()), std::logic_error);
  EXPECT_THROW(rafiki.optimize(0.5), std::logic_error);
}

TEST(RafikiOptionsTest, KeySpaceMatchesParams) {
  Rafiki rafiki(small_options());
  rafiki.set_key_params(engine::key_params());
  const auto space = rafiki.key_space();
  ASSERT_EQ(space.size(), 5u);
  EXPECT_EQ(space.dim(0).name, "compaction_method");
  EXPECT_TRUE(space.dim(0).integral);
  EXPECT_EQ(space.dim(3).name, "memtable_cleanup_threshold");
  EXPECT_FALSE(space.dim(3).integral);
}

}  // namespace
}  // namespace rafiki::core
