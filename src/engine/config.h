// A Config assigns a value to every registered parameter (Section 3.2's
// notation: C = {v1, ..., vJ}, defaults implied for unset values).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "engine/params.h"

namespace rafiki::engine {

class Config {
 public:
  /// Default-constructed configs carry every parameter's default value —
  /// the paper's baseline "Default" configuration.
  Config();

  static Config defaults() { return Config{}; }

  double get(ParamId id) const noexcept { return values_[static_cast<std::size_t>(id)]; }
  int get_int(ParamId id) const noexcept { return static_cast<int>(get(id)); }
  bool get_bool(ParamId id) const noexcept { return get(id) != 0.0; }

  /// Sets a value, snapped into the parameter's domain.
  Config& set(ParamId id, double value) noexcept;
  /// Fluent variant for building configs inline.
  Config with(ParamId id, double value) const noexcept;

  bool operator==(const Config& other) const noexcept = default;

  /// Feature vector over the paper's five key parameters, the input layout
  /// of the surrogate model (CM, CW, FCZ, MT, CC).
  std::vector<double> key_vector() const;
  /// Builds a config from a key vector (remaining params at defaults).
  static Config from_key_vector(const std::vector<double>& key_values);

  /// Values for an arbitrary parameter subset, in subset order.
  std::vector<double> vector_for(const std::vector<ParamId>& params) const;
  static Config from_vector(const std::vector<ParamId>& params,
                            const std::vector<double>& values);

  /// Shorthand rendering listing only non-default values, e.g.
  /// "{compaction_method=1, concurrent_writes=64}" (paper Section 3.2).
  std::string to_string() const;

 private:
  std::array<double, kParamCount> values_{};
};

}  // namespace rafiki::engine
