file(REMOVE_RECURSE
  "CMakeFiles/fig07_training_curve.dir/fig07_training_curve.cpp.o"
  "CMakeFiles/fig07_training_curve.dir/fig07_training_curve.cpp.o.d"
  "fig07_training_curve"
  "fig07_training_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_training_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
