#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace rafiki::net {
namespace {

/// Remaining-time helper for poll(): clamped to >= 0 ms.
// det:ok(wall-clock): socket-timeout bookkeeping only; no result depends on it
int ms_until(std::chrono::steady_clock::time_point deadline) {
  // det:ok(wall-clock): socket-timeout bookkeeping only
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
  return ms > 0 ? static_cast<int>(ms) : 0;
}

}  // namespace

const char* net_status_name(NetStatus status) noexcept {
  switch (status) {
    case NetStatus::kOk:
      return "Ok";
    case NetStatus::kNotConnected:
      return "NotConnected";
    case NetStatus::kConnectFailed:
      return "ConnectFailed";
    case NetStatus::kSendFailed:
      return "SendFailed";
    case NetStatus::kTimeout:
      return "Timeout";
    case NetStatus::kConnectionClosed:
      return "ConnectionClosed";
    case NetStatus::kProtocolError:
      return "ProtocolError";
    case NetStatus::kRemoteError:
      return "RemoteError";
  }
  return "?";
}

Client::Client(ClientOptions options) : options_(options) {}

Client::~Client() { close(); }

NetStatus Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return NetStatus::kConnectFailed;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return NetStatus::kConnectFailed;
  }
  const int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    close();
    return NetStatus::kConnectFailed;
  }
  if (rc != 0) {
    // Non-blocking connect: wait for writability, then read the verdict.
    // det:ok(wall-clock): connect-timeout bookkeeping only
    const auto deadline = std::chrono::steady_clock::now() + options_.connect_timeout;
    pollfd pfd{fd_, POLLOUT, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, ms_until(deadline));
      if (ready > 0) break;
      if (ready == 0) {
        close();
        return NetStatus::kConnectFailed;  // timed out
      }
      if (errno != EINTR) {
        close();
        return NetStatus::kConnectFailed;
      }
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      close();
      return NetStatus::kConnectFailed;
    }
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return NetStatus::kOk;
}

void Client::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::close() {
  close_fd();
  rbuf_.clear();
  rpos_ = 0;
  completed_.clear();
}

std::uint64_t Client::send(const serve::Request& request, NetStatus* status) {
  const auto fail = [&](NetStatus reason) -> std::uint64_t {
    if (status != nullptr) *status = reason;
    return 0;
  };
  if (fd_ < 0) return fail(NetStatus::kNotConnected);

  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_request(id, request, bytes);

  // det:ok(wall-clock): send-timeout bookkeeping only
  const auto deadline = std::chrono::steady_clock::now() + options_.request_timeout;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, ms_until(deadline));
      if (ready > 0) continue;
      if (ready == 0) return fail(NetStatus::kTimeout);
      if (errno == EINTR) continue;
      return fail(NetStatus::kSendFailed);
    }
    if (n < 0 && errno == EINTR) continue;
    close();
    return fail(NetStatus::kSendFailed);
  }
  if (status != nullptr) *status = NetStatus::kOk;
  return id;
}

NetStatus Client::drain_frames() {
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status =
        decode_frame(rbuf_.data() + rpos_, rbuf_.size() - rpos_, options_.max_payload,
                     frame, consumed);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kOk) {
      rpos_ += consumed;
      CallResult result;
      if (frame.type == FrameType::kResponse) {
        result.net = NetStatus::kOk;
        result.response = frame.response;
      } else if (frame.type == FrameType::kError) {
        result.net = NetStatus::kRemoteError;
        result.remote_error = frame.error;
      } else {
        // A server never sends request frames; the stream is suspect.
        close();
        return NetStatus::kProtocolError;
      }
      completed_[frame.request_id] = result;
      continue;
    }
    // Any malformed frame from the server side is unrecoverable for a
    // client: drop the connection rather than guess at framing.
    close();
    return NetStatus::kProtocolError;
  }
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > 0) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<std::ptrdiff_t>(rpos_));
    rpos_ = 0;
  }
  return NetStatus::kOk;
}

NetStatus Client::read_some(std::chrono::steady_clock::time_point deadline) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, ms_until(deadline));
    if (ready == 0) return NetStatus::kTimeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      close_fd();
      return NetStatus::kConnectionClosed;
    }
    break;
  }
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      close_fd();
      return NetStatus::kConnectionClosed;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return NetStatus::kOk;
    if (errno == EINTR) continue;
    close_fd();
    return NetStatus::kConnectionClosed;
  }
}

CallResult Client::wait(std::uint64_t id) {
  CallResult result;
  // det:ok(wall-clock): request-timeout bookkeeping only
  const auto deadline = std::chrono::steady_clock::now() + options_.request_timeout;
  for (;;) {
    const auto it = completed_.find(id);
    if (it != completed_.end()) {
      result = it->second;
      completed_.erase(it);
      return result;
    }
    if (fd_ < 0) {
      // The socket died earlier, but frames read before the FIN may still be
      // sitting undrained in the buffer.
      drain_frames();
      const auto late = completed_.find(id);
      if (late != completed_.end()) {
        result = late->second;
        completed_.erase(late);
        return result;
      }
      result.net = NetStatus::kConnectionClosed;
      return result;
    }
    const NetStatus read_status = read_some(deadline);
    if (read_status != NetStatus::kOk &&
        // A closed/odd socket may still have delivered the frame we want;
        // drain before reporting the failure.
        read_status != NetStatus::kConnectionClosed) {
      result.net = read_status;
      return result;
    }
    const NetStatus drain_status = drain_frames();
    if (drain_status != NetStatus::kOk) {
      result.net = drain_status;
      return result;
    }
    if (read_status == NetStatus::kConnectionClosed) {
      const auto late = completed_.find(id);
      if (late != completed_.end()) {
        result = late->second;
        completed_.erase(late);
        return result;
      }
      result.net = NetStatus::kConnectionClosed;
      return result;
    }
  }
}

CallResult Client::call(const serve::Request& request) {
  NetStatus status = NetStatus::kOk;
  const std::uint64_t id = send(request, &status);
  if (id == 0) {
    CallResult result;
    result.net = status;
    return result;
  }
  return wait(id);
}

CallResult Client::predict(double read_ratio, const engine::Config& config) {
  serve::Request request;
  request.tenant = options_.tenant;
  request.endpoint = serve::Endpoint::kPredict;
  request.read_ratio = read_ratio;
  request.config = config;
  return call(request);
}

CallResult Client::optimize(double read_ratio) {
  serve::Request request;
  request.tenant = options_.tenant;
  request.endpoint = serve::Endpoint::kOptimize;
  request.read_ratio = read_ratio;
  return call(request);
}

CallResult Client::observe_window(double read_ratio) {
  serve::Request request;
  request.tenant = options_.tenant;
  request.endpoint = serve::Endpoint::kObserveWindow;
  request.read_ratio = read_ratio;
  return call(request);
}

}  // namespace rafiki::net
