// Quickstart: tune the simulated Cassandra store for one workload.
//
//   1. Describe the workload (read ratio, key-reuse distance).
//   2. Collect a small training lattice on the simulated server.
//   3. Train the DNN surrogate ensemble.
//   4. GA-search the key-parameter space against the surrogate.
//   5. Verify the chosen configuration against the live (simulated) store.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "collect/runner.h"
#include "core/rafiki.h"

using namespace rafiki;

int main() {
  // A read-heavy metagenomics-like workload (Figure 3's common regime).
  const double read_ratio = 0.85;

  // Keep the demo quick: a reduced lattice instead of the paper's 20x11.
  core::RafikiOptions options;
  options.workload_grid = {0.0, 0.25, 0.5, 0.75, 1.0};
  options.n_configs = 12;
  options.collect.measure.ops = 30000;
  options.ensemble.n_nets = 10;

  core::Rafiki rafiki(options);
  // Use the paper's five key parameters directly; run the full ANOVA screen
  // yourself with rafiki.select_key_params() if you have a few minutes.
  rafiki.set_key_params(engine::key_params());

  std::puts("collecting training samples from the simulated store...");
  const auto dataset = rafiki.collect();
  std::printf("  %zu samples collected\n", dataset.size());

  std::puts("training the surrogate ensemble (Levenberg-Marquardt + Bayesian reg.)...");
  rafiki.train(dataset);

  std::puts("searching the configuration space with the genetic algorithm...");
  const auto result = rafiki.optimize(read_ratio);
  std::printf("  best config: %s\n", result.config.to_string().c_str());
  std::printf("  predicted throughput: %.0f ops/s (%zu surrogate calls in %.2f s)\n",
              result.predicted_throughput, result.surrogate_evaluations,
              result.wall_seconds);

  // Verify against the live store with a fresh seed.
  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 777;
  workload::WorkloadSpec workload = options.base_workload;
  workload.read_ratio = read_ratio;
  const double tuned = collect::measure_throughput(result.config, workload, verify);
  const double fallback =
      collect::measure_throughput(engine::Config::defaults(), workload, verify);
  std::printf("\nmeasured on the store:  default %.0f ops/s  ->  tuned %.0f ops/s  (%+.1f%%)\n",
              fallback, tuned, 100.0 * (tuned - fallback) / fallback);
  return 0;
}
