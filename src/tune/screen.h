// Streaming knob-significance screen over the full parameter registry.
//
// The paper freezes Rafiki's tunable subspace with a one-shot offline ANOVA
// (Section 3.4): five knobs in, seventeen out, forever. Tuneful (PAPERS.md)
// shows the same significance analysis can run *online*: every observed
// (configuration, throughput) sample is weak evidence about which knobs move
// throughput, and accumulating that evidence incrementally lets the active
// subspace follow the workload instead of the bootstrap sweep.
//
// KnobScreen keeps, per registered parameter, a small set of per-level
// residual means updated from observed samples. The workload effect is
// removed first (a running mean of throughput per read-ratio bucket), so a
// regime change does not masquerade as every knob suddenly mattering; what
// remains per sample is a residual attributed to the knob levels the sampled
// configuration actually ran with. A knob's streaming score is the standard
// deviation of its per-level residual means — the same "level-mean stddev"
// statistic the offline ANOVA ranks by (Figure 5), so seed and stream scores
// share units and can be blended: the offline sweep enters as a pseudo-count
// prior that real observations gradually out-vote.
//
// Everything is deterministic: no clocks, no RNG, scores depend only on the
// seeded baseline and the observation sequence.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "engine/config.h"
#include "engine/params.h"

namespace rafiki::tune {

struct ScreenOptions {
  /// Pseudo-count weight of the seeded (offline ANOVA) score: the seed
  /// behaves like this many observed samples per knob, so early streaming
  /// noise cannot overturn the bootstrap sweep, while sustained evidence
  /// eventually dominates the blend.
  double seed_weight = 32.0;
  /// Residual-mean levels per knob. Integral knobs with fewer distinct
  /// values than this use their natural level count (a binary categorical
  /// gets 2 levels, not 4 half-empty ones).
  std::size_t levels = 4;
  /// Read-ratio bucket width of the workload-effect baseline. Matches the
  /// OnlineTuner's memo granularity so one observed window feeds one bucket.
  double rr_bucket = 0.1;
};

/// One ranked entry of the screen: the blended significance plus both of its
/// components, for telemetry and the knob-ablation bench.
struct KnobScore {
  engine::ParamId id = engine::ParamId::kCount;
  double score = 0.0;         ///< blended significance (sort key)
  double seed_score = 0.0;    ///< offline ANOVA component
  double stream_score = 0.0;  ///< streaming residual component
  std::size_t samples = 0;    ///< observations folded into stream_score
};

class KnobScreen {
 public:
  explicit KnobScreen(ScreenOptions options = {});

  /// Installs the offline baseline for one knob (the one-way ANOVA sweep's
  /// level-mean stddev). Does not clear accumulated streaming state.
  void seed(engine::ParamId id, double score);

  /// Folds one observed sample into the screen: the workload baseline for
  /// the sample's read-ratio bucket is updated first, and the residual
  /// against it is attributed to every knob's level under `config`.
  void observe(double read_ratio, const engine::Config& config, double throughput);

  /// Blended significance of one knob.
  double score(engine::ParamId id) const;

  /// All registered knobs sorted by descending blended score (ties broken by
  /// registry order, so the ranking is deterministic).
  std::vector<KnobScore> ranking() const;

  std::size_t observations() const noexcept { return observations_; }
  const ScreenOptions& options() const noexcept { return options_; }

 private:
  struct RunningMean {
    double mean = 0.0;
    std::size_t n = 0;
    void add(double x) noexcept {
      ++n;
      mean += (x - mean) / static_cast<double>(n);
    }
  };
  struct KnobState {
    double seed_score = 0.0;
    bool seeded = false;
    std::size_t samples = 0;
    std::vector<RunningMean> levels;
  };

  std::size_t level_count(const engine::ParamSpec& spec) const noexcept;
  std::size_t level_of(const engine::ParamSpec& spec, double value) const noexcept;
  double stream_score(const KnobState& state) const;
  double blended(const KnobState& state) const;

  ScreenOptions options_;
  std::vector<KnobState> knobs_;  ///< indexed by ParamId
  std::map<int, RunningMean> rr_baseline_;
  std::size_t observations_ = 0;
};

}  // namespace rafiki::tune
