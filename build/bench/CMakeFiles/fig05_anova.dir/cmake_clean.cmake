file(REMOVE_RECURSE
  "CMakeFiles/fig05_anova.dir/fig05_anova.cpp.o"
  "CMakeFiles/fig05_anova.dir/fig05_anova.cpp.o.d"
  "fig05_anova"
  "fig05_anova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_anova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
