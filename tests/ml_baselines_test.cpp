#include <gtest/gtest.h>

#include <cmath>

#include "ml/dtree.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace rafiki::ml {
namespace {

TEST(Metrics, MapeRmseR2OnKnownSeries) {
  const std::vector<double> actual = {100.0, 200.0, 400.0};
  const std::vector<double> predicted = {110.0, 180.0, 400.0};
  EXPECT_NEAR(mape_percent(actual, predicted), (10.0 + 10.0 + 0.0) / 3.0, 1e-9);
  EXPECT_NEAR(rmse(actual, predicted), std::sqrt((100.0 + 400.0 + 0.0) / 3.0), 1e-9);
  EXPECT_GT(r_squared(actual, predicted), 0.98);
  EXPECT_DOUBLE_EQ(r_squared(actual, actual), 1.0);
}

TEST(Metrics, PercentErrorsAreSigned) {
  const std::vector<double> actual = {100.0, 100.0};
  const std::vector<double> predicted = {90.0, 120.0};
  const auto errors = percent_errors(actual, predicted);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_DOUBLE_EQ(errors[0], -10.0);
  EXPECT_DOUBLE_EQ(errors[1], 20.0);
}

TEST(Metrics, SkipsNearZeroActuals) {
  const std::vector<double> actual = {0.0, 100.0};
  const std::vector<double> predicted = {50.0, 110.0};
  EXPECT_NEAR(mape_percent(actual, predicted), 10.0, 1e-9);
  EXPECT_EQ(percent_errors(actual, predicted).size(), 1u);
}

std::pair<std::vector<std::vector<double>>, std::vector<double>> step_data() {
  // Piecewise-constant target: ideal for an axis-aligned tree.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
    X.push_back({a, b});
    y.push_back((a > 0.5 ? 10.0 : 0.0) + (b > 0.3 ? 5.0 : 0.0));
  }
  return {X, y};
}

TEST(DecisionTree, LearnsAxisAlignedStructure) {
  auto [X, y] = step_data();
  DecisionTreeRegressor tree;
  tree.fit(X, y, {.max_depth = 4, .min_samples_leaf = 5});
  EXPECT_TRUE(tree.trained());
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9, 0.9}), 15.0, 0.5);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.1, 0.1}), 0.0, 0.5);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9, 0.1}), 10.0, 0.5);
}

TEST(DecisionTree, DepthAndLeafConstraintsHold) {
  auto [X, y] = step_data();
  DecisionTreeRegressor tree;
  tree.fit(X, y, {.max_depth = 2, .min_samples_leaf = 20});
  EXPECT_LE(tree.depth(), 2u);
  EXPECT_LE(tree.node_count(), 7u);  // full binary tree of depth 2
}

TEST(DecisionTree, LinearLeavesBeatConstantLeavesOnSlopes) {
  // Smooth linear target: constant leaves stair-step, linear leaves nail it.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
    X.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b);
  }
  DecisionTreeRegressor constant, linear;
  constant.fit(X, y, {.max_depth = 3, .min_samples_leaf = 10, .linear_leaves = false});
  linear.fit(X, y, {.max_depth = 3, .min_samples_leaf = 10, .linear_leaves = true});

  double sse_constant = 0.0, sse_linear = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
    const double truth = 3.0 * a - 2.0 * b;
    const std::vector<double> x = {a, b};
    sse_constant += std::pow(constant.predict(x) - truth, 2);
    sse_linear += std::pow(linear.predict(x) - truth, 2);
  }
  // The paper found exactly this: plain trees inadequate, linear-combination
  // nodes much better (Section 3.7.2).
  EXPECT_LT(sse_linear, sse_constant * 0.2);
}

TEST(Knn, ExactMatchReturnsStoredTarget) {
  KnnRegressor knn;
  knn.fit({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}, std::vector<double>{5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1.0, 1.0}), 7.0);
}

TEST(Knn, InterpolatesBetweenNeighbours) {
  KnnRegressor knn;
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (double v = 0.0; v <= 10.0; v += 1.0) {
    X.push_back({v});
    y.push_back(2.0 * v);
  }
  knn.fit(X, y, {.k = 2, .weight_power = 2.0});
  const double pred = knn.predict(std::vector<double>{4.4});
  EXPECT_GT(pred, 2.0 * 4.0);
  EXPECT_LT(pred, 2.0 * 5.0);
}

TEST(Knn, ThrowsUntrainedAndBadInput) {
  KnnRegressor knn;
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(knn.fit({}, std::vector<double>{}), std::invalid_argument);
}

TEST(Knn, NormalizesFeaturesSoScalesDoNotDominate) {
  // Feature 1 spans [0, 1000], feature 2 spans [0, 1]; both carry signal.
  KnnRegressor knn;
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 1000), b = rng.uniform(0, 1);
    X.push_back({a, b});
    y.push_back(b * 100.0);  // only the small-scale feature matters
  }
  knn.fit(X, y, {.k = 5});
  // Query twice with very different large-scale values but the same b.
  const double p1 = knn.predict(std::vector<double>{100.0, 0.8});
  const double p2 = knn.predict(std::vector<double>{900.0, 0.8});
  EXPECT_NEAR(p1, 80.0, 15.0);
  EXPECT_NEAR(p2, 80.0, 15.0);
}

}  // namespace
}  // namespace rafiki::ml
