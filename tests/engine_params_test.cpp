// Registry sanity for all 22 tunable-parameter specs: domains, defaults,
// snap/feasible coherence, name lookups and the redundancy graph. The tune/
// layer walks the whole registry, so every entry must hold these invariants,
// not just the five the paper tunes.
#include "engine/params.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace rafiki::engine {
namespace {

TEST(ParamRegistry, CoversEveryIdInOrder) {
  const auto& registry = param_registry();
  ASSERT_EQ(registry.size(), kParamCount);
  for (std::size_t i = 0; i < kParamCount; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(registry[i].id), i);
  }
}

TEST(ParamRegistry, DomainsAreOrderedAndDefaultsInside) {
  for (const auto& spec : param_registry()) {
    EXPECT_LT(spec.lo, spec.hi) << spec.name;
    EXPECT_LE(spec.lo, spec.def) << spec.name;
    EXPECT_LE(spec.def, spec.hi) << spec.name;
    EXPECT_TRUE(spec.feasible(spec.def)) << spec.name;
    EXPECT_GE(spec.anova_levels, 2) << spec.name;
  }
}

TEST(ParamRegistry, SnapIsIdempotentAndLandsInDomain) {
  for (const auto& spec : param_registry()) {
    // Probe below, inside, above and at a fractional midpoint.
    const double probes[] = {spec.lo - 10.0, spec.lo, (spec.lo + spec.hi) / 2.0 + 0.3,
                             spec.hi, spec.hi + 10.0};
    for (const double raw : probes) {
      const double snapped = spec.snap(raw);
      EXPECT_TRUE(spec.feasible(snapped)) << spec.name << " raw=" << raw;
      EXPECT_DOUBLE_EQ(spec.snap(snapped), snapped) << spec.name << " raw=" << raw;
      if (spec.type != ParamType::kReal) {
        EXPECT_DOUBLE_EQ(snapped, std::round(snapped)) << spec.name;
      }
    }
  }
}

TEST(ParamRegistry, NamesAreUniqueAndFindable) {
  std::set<std::string_view> seen;
  for (const auto& spec : param_registry()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_TRUE(seen.insert(spec.name).second) << "duplicate name " << spec.name;
    EXPECT_EQ(find_param(spec.name), spec.id) << spec.name;
    EXPECT_EQ(param_name(spec.id), spec.name);
  }
  EXPECT_EQ(find_param("no_such_parameter"), ParamId::kCount);
}

TEST(ParamRegistry, RedundancyGraphIsAcyclicAndShallow) {
  for (const auto& spec : param_registry()) {
    if (spec.redundant_with == ParamId::kCount) continue;
    EXPECT_NE(spec.redundant_with, spec.id) << spec.name << " is redundant with itself";
    // One hop only: the canonical knob must itself be canonical, so folding
    // evidence (tune::ActiveSubspace::recut) terminates in a single pass.
    const auto& canonical = param_spec(spec.redundant_with);
    EXPECT_EQ(canonical.redundant_with, ParamId::kCount)
        << spec.name << " -> " << canonical.name << " is not canonical";
  }
}

TEST(ParamRegistry, PaperKeyParamsAreRegistryEntries) {
  const auto& keys = key_params();
  ASSERT_EQ(keys.size(), 5u);
  for (const auto id : keys) {
    EXPECT_LT(static_cast<std::size_t>(id), kParamCount);
    // No key parameter may be a redundant alias.
    EXPECT_EQ(param_spec(id).redundant_with, ParamId::kCount);
  }
}

}  // namespace
}  // namespace rafiki::engine
