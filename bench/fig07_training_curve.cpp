// Figure 7 + Section 4.7.1: surrogate prediction error for unseen
// configurations and unseen workloads as a function of the number of
// training samples (36..180 of the ~200 usable points). The paper finds the
// curve levelling off around 180 samples at ~7.5% (configs) / ~5.6%
// (workloads).
#include <cstdio>

#include "bench/common.h"
#include "ml/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace rafiki;

namespace {

/// Error of an ensemble trained on `train_count` samples drawn from the
/// training side of a dimension-wise split, evaluated on the test side.
double holdout_error(const collect::Dataset& dataset, const core::RafikiOptions& options,
                     bool by_config, std::size_t train_count, std::uint64_t seed) {
  const auto split = by_config ? dataset.split_by_config(0.25, seed)
                               : dataset.split_by_workload(0.25, seed);
  auto train_indices = split.train;
  Rng rng(seed ^ 0xabcd);
  for (std::size_t i = train_indices.size(); i > 1; --i) {
    std::swap(train_indices[i - 1], train_indices[rng.bounded(i)]);
  }
  if (train_indices.size() > train_count) train_indices.resize(train_count);

  core::Rafiki model(options);
  model.set_key_params(engine::key_params());
  model.train(dataset.subset(train_indices));

  std::vector<double> actual, predicted;
  for (auto i : split.test) {
    const auto& sample = dataset[i];
    actual.push_back(sample.throughput);
    predicted.push_back(model.predict(sample.workload.read_ratio, sample.config));
  }
  return ml::mape_percent(actual, predicted);
}

}  // namespace

int main() {
  auto options = benchutil::paper_options();
  options.collect.fault_rate = 20.0 / 220.0;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  benchutil::note("collecting the 200-sample training corpus...");
  const auto dataset = rafiki.collect();
  std::printf("collected %zu usable samples\n", dataset.size());

  constexpr int kTrials = 4;
  Table fig({"training samples", "unseen-config error", "unseen-workload error"});
  double final_config_err = 0.0, final_workload_err = 0.0;
  for (std::size_t n : {36u, 72u, 108u, 144u, 180u}) {
    double config_err = 0.0, workload_err = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      config_err += holdout_error(dataset, options, true, n, 100 + trial);
      workload_err += holdout_error(dataset, options, false, n, 200 + trial);
    }
    config_err /= kTrials;
    workload_err /= kTrials;
    fig.add_row({std::to_string(n), Table::pct(config_err), Table::pct(workload_err)});
    final_config_err = config_err;
    final_workload_err = workload_err;
  }
  benchutil::emit(fig, "Figure 7: prediction error vs number of training samples");

  benchutil::compare("unseen-config error @180 samples", "7.5%",
                     Table::pct(final_config_err));
  benchutil::compare("unseen-workload error @180 samples", "5.6%",
                     Table::pct(final_workload_err));
  benchutil::compare("error levels off with more data", "yes (by 180)",
                     "see curve above");
  return 0;
}
