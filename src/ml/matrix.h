// Minimal dense linear algebra for the surrogate-model trainer: row-major
// matrix with the handful of kernels Levenberg-Marquardt needs (products,
// transpose-products, Cholesky solve). No external dependencies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rafiki::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> data() const noexcept { return data_; }
  std::span<double> data() noexcept { return data_; }

  Matrix transpose() const;

  /// this * other; dimensions must agree.
  Matrix multiply(const Matrix& other) const;
  /// this^T * this — the Gauss-Newton Hessian approximation J^T J.
  Matrix gram() const;
  /// this^T * v for a vector v of length rows().
  std::vector<double> transpose_times(std::span<const double> v) const;
  std::vector<double> times(std::span<const double> v) const;

  Matrix& add_diagonal(double value);

  /// Solves (this) x = b for symmetric positive-definite this, via Cholesky.
  /// Returns empty vector if the factorization fails (not SPD).
  std::vector<double> solve_spd(std::span<const double> b) const;

  /// Trace of the inverse via Cholesky (used for the effective number of
  /// parameters gamma in Bayesian regularization). Returns -1 on failure.
  double trace_inverse_spd() const;

 private:
  /// Cholesky factor L (lower) such that A = L L^T; false if not SPD.
  bool cholesky(Matrix& lower) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rafiki::ml
