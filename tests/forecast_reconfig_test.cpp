// Tests for the future-work extensions (Section 6): workload forecasting and
// minimal-downtime reconfiguration planning.
#include <gtest/gtest.h>

#include "core/reconfigure.h"
#include "workload/forecast.h"
#include "workload/mgrast.h"

namespace rafiki {
namespace {

using workload::ForecastOptions;
using workload::WorkloadForecaster;
using Regime = workload::WorkloadForecaster::Regime;

TEST(Forecaster, RegimeClassification) {
  WorkloadForecaster forecaster;
  EXPECT_EQ(forecaster.regime_of(0.9), Regime::kReadHeavy);
  EXPECT_EQ(forecaster.regime_of(0.7), Regime::kReadHeavy);
  EXPECT_EQ(forecaster.regime_of(0.5), Regime::kMixed);
  EXPECT_EQ(forecaster.regime_of(0.3), Regime::kWriteHeavy);
  EXPECT_EQ(forecaster.regime_of(0.0), Regime::kWriteHeavy);
}

TEST(Forecaster, ColdStartIsMaxEntropy) {
  WorkloadForecaster forecaster;
  EXPECT_DOUBLE_EQ(forecaster.predict_next(), 0.5);
  EXPECT_EQ(forecaster.observations(), 0u);
}

TEST(Forecaster, LearnsPersistenceOfAStableRegime) {
  WorkloadForecaster forecaster;
  for (int i = 0; i < 50; ++i) forecaster.observe(0.85);
  EXPECT_EQ(forecaster.current_regime(), Regime::kReadHeavy);
  EXPECT_GT(forecaster.persistence_probability(), 0.9);
  EXPECT_NEAR(forecaster.predict_next(), 0.85, 0.05);
}

TEST(Forecaster, LearnsAlternatingRegimes) {
  // Deterministic alternation read-heavy <-> write-heavy: after training,
  // the forecast from a read-heavy window should lean strongly write-ward.
  WorkloadForecaster forecaster;
  for (int i = 0; i < 60; ++i) forecaster.observe(i % 2 ? 0.9 : 0.1);
  // Last observation was 0.9 (read-heavy); next is write-heavy.
  EXPECT_LT(forecaster.predict_next(), 0.35);
  EXPECT_GT(forecaster.transition_probability(Regime::kReadHeavy, Regime::kWriteHeavy),
            0.85);
}

TEST(Forecaster, TransitionRowsAreDistributions) {
  WorkloadForecaster forecaster;
  for (int i = 0; i < 30; ++i) forecaster.observe((i * 37 % 100) / 100.0);
  for (int from = 0; from < 3; ++from) {
    double row = 0.0;
    for (int to = 0; to < 3; ++to) {
      row += forecaster.transition_probability(static_cast<Regime>(from),
                                               static_cast<Regime>(to));
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(Forecaster, MatchesPersistenceOnMemorylessTraces) {
  // The MG-RAST regime process has geometric dwell times, so persistence is
  // near-optimal for next-window point forecasts; the median-style forecast
  // must not lose to it materially (its value-add is switch probabilities,
  // asserted below).
  for (std::uint64_t seed : {3u, 11u, 29u, 57u, 101u}) {
    const auto windows = workload::synthesize_mgrast_windows({}, seed);
    std::vector<double> series;
    for (const auto& w : windows) series.push_back(w.read_ratio);
    const auto eval = workload::evaluate_forecaster(series);
    EXPECT_LT(eval.forecaster_mae, eval.persistence_mae * 1.12) << "seed " << seed;
  }
}

TEST(Forecaster, SwitchProbabilitiesAreCalibrated) {
  // Predicted persistence probability should track the empirical regime
  // stay-rate of the trace.
  const auto windows = workload::synthesize_mgrast_windows({}, 17);
  WorkloadForecaster forecaster;
  double predicted_sum = 0.0;
  std::size_t stays = 0, transitions = 0;
  Regime prev = Regime::kMixed;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Regime regime = forecaster.regime_of(windows[i].read_ratio);
    if (i) {
      ++transitions;
      stays += regime == prev;
    }
    forecaster.observe(windows[i].read_ratio);
    if (i >= windows.size() / 2) predicted_sum += forecaster.persistence_probability();
    prev = regime;
  }
  const double empirical = static_cast<double>(stays) / static_cast<double>(transitions);
  const double predicted =
      predicted_sum / static_cast<double>(windows.size() - windows.size() / 2);
  EXPECT_NEAR(predicted, empirical, 0.12);
}

TEST(Forecaster, LikelyNextIsARankedDistribution) {
  WorkloadForecaster forecaster;
  for (int i = 0; i < 40; ++i) forecaster.observe(i % 4 == 3 ? 0.1 : 0.9);
  const auto ranked = forecaster.likely_next();
  ASSERT_EQ(ranked.size(), 3u);
  double total = 0.0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i) {
      EXPECT_LE(ranked[i].first, ranked[i - 1].first);
    }
    EXPECT_GE(ranked[i].second, 0.0);
    EXPECT_LE(ranked[i].second, 1.0);
    total += ranked[i].first;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Forecaster, UnobservedRegimeUsesBandMidpoint) {
  WorkloadForecaster forecaster;
  forecaster.observe(0.9);
  EXPECT_NEAR(forecaster.regime_mean(Regime::kWriteHeavy), 0.15, 1e-9);
  EXPECT_NEAR(forecaster.regime_mean(Regime::kMixed), 0.5, 1e-9);
}

TEST(Reconfig, FullRestartHasOutage) {
  const auto plan = core::plan_full_restart(2, 50000.0);
  EXPECT_DOUBLE_EQ(plan.min_relative_capacity, 0.0);
  EXPECT_DOUBLE_EQ(plan.duration_s, 75.0);  // 30 restart + 45 warm
  // Lost: 30s of everything; warming at 0.65 peak covers 0.65/0.75 of load.
  const double warm_served = 0.65 / 0.75;
  EXPECT_NEAR(plan.ops_lost, 50000.0 * (30.0 + 45.0 * (1.0 - warm_served)), 1.0);
}

TEST(Reconfig, RollingKeepsClusterServing) {
  const auto plan = core::plan_rolling_restart(2, 50000.0);
  EXPECT_GE(plan.min_relative_capacity, 0.5);
  // Sequential per-node phases: 2 * (30 + 45).
  EXPECT_DOUBLE_EQ(plan.duration_s, 150.0);
  const auto full = core::plan_full_restart(2, 50000.0);
  // Survivors absorb load up to their headroom, so rolling loses far less.
  EXPECT_LT(plan.ops_lost, 0.6 * full.ops_lost);
}

TEST(Reconfig, LowUtilizationMakesRollingFree) {
  core::ReconfigModel model;
  model.offered_utilization = 0.4;  // ample headroom: (n-1)/n = 0.75 > 0.4
  const auto plan = core::plan_rolling_restart(4, 50000.0, model);
  EXPECT_DOUBLE_EQ(plan.ops_lost, 0.0);
  EXPECT_DOUBLE_EQ(plan.min_relative_capacity, 1.0);
}

TEST(Reconfig, SingleNodeRollingDegeneratesToFullRestart) {
  const auto rolling = core::plan_rolling_restart(1, 10000.0);
  const auto full = core::plan_full_restart(1, 10000.0);
  EXPECT_DOUBLE_EQ(rolling.ops_lost, full.ops_lost);
  EXPECT_DOUBLE_EQ(rolling.min_relative_capacity, 0.0);
}

TEST(Reconfig, MoreNodesLessRollingImpact) {
  const auto two = core::plan_rolling_restart(2, 50000.0);
  const auto four = core::plan_rolling_restart(4, 50000.0);
  EXPECT_GT(four.min_relative_capacity, two.min_relative_capacity);
}

TEST(Reconfig, PayoffDecision) {
  const auto plan = core::plan_rolling_restart(2, 50000.0);
  // A 20% gain sustained for an hour dwarfs the transition loss.
  EXPECT_TRUE(core::reconfiguration_pays_off(50000.0, 60000.0, 3600.0, plan));
  // The same gain for less than the transition itself does not pay.
  EXPECT_FALSE(core::reconfiguration_pays_off(50000.0, 60000.0, 120.0, plan));
  // No gain never pays.
  EXPECT_FALSE(core::reconfiguration_pays_off(50000.0, 49000.0, 3600.0, plan));
}

TEST(Reconfig, TimelineIsContiguousAndOrdered) {
  for (int nodes : {1, 2, 3, 5}) {
    const auto plan = core::plan_rolling_restart(nodes, 1000.0);
    double t = 0.0;
    for (const auto& segment : plan.timeline) {
      EXPECT_DOUBLE_EQ(segment.begin_s, t);
      EXPECT_GT(segment.end_s, segment.begin_s);
      EXPECT_GE(segment.relative_capacity, 0.0);
      EXPECT_LE(segment.relative_capacity, 1.0);
      t = segment.end_s;
    }
    EXPECT_DOUBLE_EQ(t, plan.duration_s);
  }
}

}  // namespace
}  // namespace rafiki
