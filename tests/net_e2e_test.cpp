// End-to-end over real sockets: net::Client -> loopback net::Server ->
// TuningService. The core contract is *parity* — for each endpoint, a call
// through the wire must return exactly what the same request returns through
// the in-process submit path (same status, same config, bit-identical
// predictions), the wire being a transparent transport, never a second
// implementation. Also covered: pipelining across a snapshot republish,
// typed backpressure (Overloaded / ShuttingDown on the wire), error frames
// for garbage bytes, and a graceful drain that answers every in-flight frame.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace rafiki::net {
namespace {

// One tiny trained pipeline shared by every test; training dominates the
// suite's cost and all tests only read from it. The whole suite runs once per
// available IO backend (epoll and the poll() fallback on Linux) so the drain
// and pipelining contracts are proven against both event loops.
class NetE2E : public ::testing::TestWithParam<IoBackend> {
 protected:
  static void SetUpTestSuite() {
    core::RafikiOptions options;
    options.workload_grid = {0.2, 0.8};
    options.n_configs = 5;
    options.collect.measure.ops = 3000;
    options.collect.measure.warmup_ops = 300;
    options.ensemble.n_nets = 3;
    options.ensemble.train.max_epochs = 30;
    options.ga.generations = 6;
    options.ga.population = 10;
    rafiki_ = new core::Rafiki(options);
    rafiki_->set_key_params(engine::key_params());
    rafiki_->train(rafiki_->collect());
    ASSERT_TRUE(rafiki_->trained());
  }

  static void TearDownTestSuite() {
    delete rafiki_;
    rafiki_ = nullptr;
  }

  /// Server options pinned to the backend under test; tests layer their own
  /// tweaks (io_threads, max_pipeline, ...) on top.
  ServerOptions server_options() const {
    ServerOptions options;
    options.io_backend = GetParam();
    return options;
  }

  static serve::Request predict_request(double read_ratio = 0.3) {
    serve::Request request;
    request.endpoint = serve::Endpoint::kPredict;
    request.read_ratio = read_ratio;
    return request;
  }

  /// Polls a condition without reading any clock: bounded iteration count
  /// with a fixed sleep per probe.
  static bool spin_until(const std::function<bool()>& pred, int probes = 10000) {
    for (int i = 0; i < probes; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

  static core::Rafiki* rafiki_;
};

core::Rafiki* NetE2E::rafiki_ = nullptr;

TEST_P(NetE2E, PredictParityWithInProcessSubmit) {
  serve::ServiceOptions options;
  options.workers = 1;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();
  ASSERT_NE(server.port(), 0);

  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);

  const auto config = engine::Config::defaults().with(engine::key_params()[0], 1.0);
  auto request = predict_request(0.35);
  request.config = config;

  const auto wire = client.predict(0.35, config);
  const auto direct = service.call(request);
  ASSERT_TRUE(wire.ok()) << net_status_name(wire.net);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(wire.response.status, direct.status);
  EXPECT_EQ(wire.response.model_version, direct.model_version);
  // Same snapshot, same kernel: the wire must not perturb a single bit.
  EXPECT_EQ(wire.response.mean, direct.mean);
  EXPECT_EQ(wire.response.stddev, direct.stddev);
  EXPECT_EQ(wire.response.mean, rafiki_->predict(0.35, config));

  const auto counters = service.stats().wire_counters();
  EXPECT_EQ(counters.frames_in, 1u);
  EXPECT_EQ(counters.frames_out, 1u);
  EXPECT_EQ(counters.decode_errors, 0u);
  EXPECT_GT(counters.bytes_in, 0u);
  // bytes_out is recorded by the IO loop *after* send() returns, and the
  // response can reach the client before that thread is rescheduled — poll
  // instead of snapshotting.
  EXPECT_TRUE(spin_until(
      [&] { return service.stats().wire_counters().bytes_out > 0; }));
  EXPECT_EQ(counters.connections_accepted, 1u);

  server.stop();
  service.stop();
}

TEST_P(NetE2E, OptimizeParityWithInProcessSubmit) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.ga.population = 10;
  options.ga.generations = 5;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();

  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);

  const auto wire = client.optimize(0.4);
  serve::Request request;
  request.endpoint = serve::Endpoint::kOptimize;
  request.read_ratio = 0.4;
  const auto direct = service.call(request);

  ASSERT_TRUE(wire.ok()) << net_status_name(wire.net);
  ASSERT_TRUE(direct.ok());
  // The GA is seeded per call, so both routes must land on the same optimum
  // with the same fitness and the same evaluation budget.
  EXPECT_EQ(wire.response.status, direct.status);
  EXPECT_EQ(wire.response.config, direct.config);
  EXPECT_EQ(wire.response.predicted_throughput, direct.predicted_throughput);
  EXPECT_EQ(wire.response.surrogate_evaluations, direct.surrogate_evaluations);
  EXPECT_GT(wire.response.predicted_throughput, 0.0);

  server.stop();
  service.stop();
}

TEST_P(NetE2E, ObserveWindowParityThroughRetrainCycle) {
  serve::ServiceOptions options;
  options.workers = 1;
  core::OnlineTuner tuner(*rafiki_);
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.attach_tuner(tuner);
  service.start();
  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();

  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);

  // Miss over the wire: immediate stale answer, background GA enqueued.
  const auto first = client.observe_window(0.2);
  ASSERT_TRUE(first.ok()) << net_status_name(first.net);
  EXPECT_TRUE(first.response.stale);
  EXPECT_FALSE(first.response.reconfigured);

  service.wait_retrain_idle();
  EXPECT_EQ(service.model_version(), 2u);

  // Fresh hit over the wire adopts the tuned entry...
  const auto second = client.observe_window(0.2);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.response.stale);
  EXPECT_TRUE(second.response.reconfigured);
  EXPECT_EQ(second.response.model_version, 2u);

  // ...and the in-process path agrees on the exact same tuned state.
  serve::Request request;
  request.endpoint = serve::Endpoint::kObserveWindow;
  request.read_ratio = 0.2;
  const auto direct = service.call(request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.status, second.response.status);
  EXPECT_EQ(direct.config, second.response.config);
  EXPECT_EQ(direct.predicted_throughput, second.response.predicted_throughput);
  EXPECT_FALSE(direct.stale);

  server.stop();
  service.stop();
}

TEST_P(NetE2E, PipelinedRequestsSurviveSnapshotRepublishMidStream) {
  constexpr std::uint64_t kPerPhase = 8;

  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 128;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  ServerOptions opts = server_options();
  opts.io_threads = 2;
  Server server(service, opts);
  ASSERT_TRUE(server.start()) << server.last_error();

  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);

  // Phase 1 in flight, republish, phase 2 in flight — all on one pipelined
  // connection; every id must come back OK against version 1 or 2.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < kPerPhase; ++i) {
    NetStatus status = NetStatus::kOk;
    const auto id = client.send(predict_request(0.25 + 0.01 * static_cast<double>(i)),
                                &status);
    ASSERT_NE(id, 0u) << net_status_name(status);
    ids.push_back(id);
  }
  EXPECT_EQ(service.publish(serve::make_snapshot(*rafiki_)), 2u);
  for (std::uint64_t i = 0; i < kPerPhase; ++i) {
    const auto id = client.send(predict_request(0.55 + 0.01 * static_cast<double>(i)));
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }

  std::size_t v1 = 0;
  std::size_t v2 = 0;
  for (const auto id : ids) {
    const auto result = client.wait(id);
    ASSERT_EQ(result.net, NetStatus::kOk) << net_status_name(result.net);
    ASSERT_TRUE(result.response.ok());
    ASSERT_GE(result.response.model_version, 1u);
    ASSERT_LE(result.response.model_version, 2u);
    (result.response.model_version == 1 ? v1 : v2) += 1;
  }
  EXPECT_EQ(v1 + v2, 2 * kPerPhase);
  // Requests sent after the republish returned can only see the new version.
  EXPECT_GE(v2, kPerPhase);

  const auto counters = service.stats().wire_counters();
  EXPECT_EQ(counters.frames_in, 2 * kPerPhase);
  EXPECT_EQ(counters.frames_out, 2 * kPerPhase);
  EXPECT_EQ(counters.decode_errors, 0u);

  server.stop();
  service.stop();
}

TEST_P(NetE2E, GracefulDrainAnswersEveryInFlightFrame) {
  constexpr std::uint64_t kInFlight = 16;

  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 64;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();
  const auto port = server.port();

  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", port), NetStatus::kOk);

  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < kInFlight; ++i) {
    const auto id = client.send(predict_request(0.3 + 0.01 * static_cast<double>(i)));
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  // Wait until the server has decoded (and therefore admitted or answered)
  // every frame, then drain. "Graceful" means: none of those 16 may be lost.
  ASSERT_TRUE(spin_until([&] {
    return service.stats().wire_counters().frames_in >= kInFlight;
  }));
  server.stop();

  std::uint64_t answered_ok = 0;
  std::uint64_t answered_shutdown = 0;
  for (const auto id : ids) {
    const auto result = client.wait(id);
    ASSERT_EQ(result.net, NetStatus::kOk)
        << "request " << id << " lost in drain: " << net_status_name(result.net);
    if (result.response.status == serve::Status::kOk) {
      ++answered_ok;
    } else {
      ASSERT_EQ(result.response.status, serve::Status::kShuttingDown);
      ++answered_shutdown;
    }
  }
  EXPECT_EQ(answered_ok + answered_shutdown, kInFlight);
  const auto counters = service.stats().wire_counters();
  EXPECT_EQ(counters.frames_out, kInFlight);
  EXPECT_EQ(counters.decode_errors, 0u);
  EXPECT_EQ(counters.active(), 0u);

  // The listener is gone: nobody new gets in after a drain.
  Client late;
  EXPECT_NE(late.connect("127.0.0.1", port), NetStatus::kOk);

  service.stop();
}

// A connection whose TCP handshake completed before stop() may still be
// sitting in the accept backlog — with frames already sent — if the IO loop
// was busy. The drain must adopt it and answer those frames (kShuttingDown at
// worst) rather than let the listener close RST it. Regression test: every
// client below connects and fully sends *before* stop(), so every frame must
// come back typed, accepted or not.
TEST_P(NetE2E, DrainAdoptsConnectionsStillInTheAcceptBacklog) {
  constexpr std::size_t kClients = 8;

  serve::ServiceOptions options;
  options.workers = 1;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();

  std::vector<Client> fleet(kClients);
  std::vector<std::uint64_t> ids(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(fleet[c].connect("127.0.0.1", server.port()), NetStatus::kOk);
    ids[c] = fleet[c].send(predict_request(0.3 + 0.01 * static_cast<double>(c)));
    ASSERT_NE(ids[c], 0u);
  }
  // No wait for the server to accept or decode: the point is that some of
  // these connections are still in the backlog when the drain starts.
  server.stop();

  for (std::size_t c = 0; c < kClients; ++c) {
    const auto result = fleet[c].wait(ids[c]);
    ASSERT_EQ(result.net, NetStatus::kOk)
        << "client " << c << " lost in drain: " << net_status_name(result.net);
    EXPECT_TRUE(result.response.status == serve::Status::kOk ||
                result.response.status == serve::Status::kShuttingDown);
  }

  service.stop();
}

TEST_P(NetE2E, ServiceShutdownMapsToTypedShuttingDownResponse) {
  serve::ServiceOptions options;
  options.workers = 1;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  service.stop();  // service is gone; the wire front-end is still up

  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();
  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);

  const auto result = client.predict(0.3);
  // Transport-level success, service-level ShuttingDown — a typed response,
  // not a dropped connection.
  ASSERT_EQ(result.net, NetStatus::kOk) << net_status_name(result.net);
  EXPECT_EQ(result.response.status, serve::Status::kShuttingDown);
  server.stop();
}

TEST_P(NetE2E, PipelineLimitMapsToTypedOverloadedResponse) {
  serve::ServiceOptions options;
  options.workers = 0;  // nobody drains: the first request parks in flight
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  ServerOptions opts = server_options();
  opts.max_pipeline = 1;
  Server server(service, opts);
  ASSERT_TRUE(server.start()) << server.last_error();

  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);

  const auto first = client.send(predict_request(0.3));
  ASSERT_NE(first, 0u);
  const auto second = client.send(predict_request(0.4));
  ASSERT_NE(second, 0u);

  // The second answer arrives while the first still waits on a worker.
  const auto overloaded = client.wait(second);
  ASSERT_EQ(overloaded.net, NetStatus::kOk);
  EXPECT_EQ(overloaded.response.status, serve::Status::kOverloaded);

  // The parked request is never dropped: the service drain fails it with a
  // typed ShuttingDown that still travels the wire back to its id.
  service.stop();
  const auto drained = client.wait(first);
  ASSERT_EQ(drained.net, NetStatus::kOk);
  EXPECT_EQ(drained.response.status, serve::Status::kShuttingDown);

  server.stop();
}

TEST_P(NetE2E, GarbageBytesGetOneErrorFrameThenClose) {
  serve::ServiceOptions options;
  options.workers = 1;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  Server server(service, server_options());
  ASSERT_TRUE(server.start()) << server.last_error();

  // Raw socket, no protocol: the server must answer with exactly one error
  // frame (request id 0 — no header could be believed) and hang up, instead
  // of crashing or stalling.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "this is definitely not a frame header at all....";
  ASSERT_EQ(::send(fd, garbage, sizeof garbage, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof garbage));

  std::vector<std::uint8_t> received;
  std::uint8_t chunk[256];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // orderly FIN after the error frame
    received.insert(received.end(), chunk, chunk + n);
  }
  ::close(fd);

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(received.data(), received.size(), kDefaultMaxPayload, frame,
                         consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, received.size());
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 0u);
  EXPECT_EQ(frame.error, WireError::kBadFrame);
  EXPECT_EQ(service.stats().wire_counters().decode_errors, 1u);
  EXPECT_EQ(service.stats().wire_counters().error_frames_sent, 1u);

  // The same server keeps serving well-formed clients afterwards.
  Client client;
  ASSERT_EQ(client.connect("127.0.0.1", server.port()), NetStatus::kOk);
  EXPECT_TRUE(client.predict(0.3).ok());

  server.stop();
  service.stop();
}

TEST_P(NetE2E, ManyClientsAcrossIoThreads) {
  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 10;

  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  ServerOptions opts = server_options();
  opts.io_threads = 2;
  Server server(service, opts);
  ASSERT_TRUE(server.start()) << server.last_error();

  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (client.connect("127.0.0.1", server.port()) != NetStatus::kOk) {
        failures[static_cast<std::size_t>(c)] = kCallsPerClient;
        return;
      }
      for (int i = 0; i < kCallsPerClient; ++i) {
        const auto result = client.predict(0.2 + 0.01 * static_cast<double>(i));
        if (!result.ok()) ++failures[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }
  const auto counters = service.stats().wire_counters();
  EXPECT_EQ(counters.frames_in, static_cast<std::uint64_t>(kClients * kCallsPerClient));
  EXPECT_EQ(counters.frames_out, counters.frames_in);
  EXPECT_EQ(counters.decode_errors, 0u);
  EXPECT_EQ(counters.connections_accepted, static_cast<std::uint64_t>(kClients));

  server.stop();
  service.stop();
  // The wire table renders alongside the request table from the same sink.
  const auto text = service.stats().wire_table().render();
  EXPECT_NE(text.find("frames in"), std::string::npos);
}

// A client that floods pipelined requests but never reads responses must not
// let the server buffer without bound: once the connection's output backlog
// crosses the high-water mark the server stops *reading* it, so the client's
// own sends eventually hit EAGAIN. Meanwhile a well-behaved client on the
// same IO loop keeps making progress, and when the slow reader finally
// drains, every frame it managed to send comes back exactly once — partial
// writes resumed, nothing lost, nothing duplicated.
TEST_P(NetE2E, SlowReaderBackpressureBoundsBufferingWithoutStallingOthers) {
  constexpr std::uint64_t kRequests = 3000;

  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 256;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  ServerOptions opts = server_options();
  opts.io_threads = 1;  // slow and fast client share one loop on purpose
  opts.max_output_buffer = 1 << 14;
  opts.so_sndbuf = 4096;  // pinned small so partial writes actually happen
  Server server(service, opts);
  ASSERT_TRUE(server.start()) << server.last_error();

  // Raw nonblocking socket with a tiny receive buffer (set before connect so
  // the window is negotiated small): kernel-side slack is minimal, so the
  // server's send() hits EAGAIN quickly once we stop reading.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  const int small_buf = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &small_buf, sizeof small_buf), 0);
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small_buf, sizeof small_buf), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ASSERT_EQ(errno, EINPROGRESS);
    pollfd pfd{fd, POLLOUT, 0};
    ASSERT_GT(::poll(&pfd, 1, 5000), 0);
  }

  // Each request carries a full explicit config so the flood dwarfs whatever
  // the kernel will buffer on either side of the loopback pair.
  std::vector<std::uint8_t> outbound;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    auto request = predict_request(0.2 + 0.0001 * static_cast<double>(id));
    request.config = engine::Config::defaults();
    encode_request(id, request, outbound);
  }

  // Phase 1: push without reading until the pipe is wedged — our send blocked
  // on EAGAIN *and* the server has logged a short write of its own. That pair
  // proves the backlog is bounded on both sides of the connection.
  std::size_t pushed = 0;
  const auto pump_sends = [&]() -> bool {  // true while progress is possible
    while (pushed < outbound.size()) {
      const ssize_t n = ::send(fd, outbound.data() + pushed,
                               outbound.size() - pushed, MSG_NOSIGNAL);
      if (n > 0) {
        pushed += static_cast<std::size_t>(n);
        continue;
      }
      EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          << "unexpected send errno " << errno;
      return false;
    }
    return true;
  };
  ASSERT_TRUE(spin_until([&] {
    return !pump_sends() &&
           service.stats().wire_counters().flush_eagain > 0;
  }));
  ASSERT_LT(pushed, outbound.size())
      << "server kept reading an unread connection; backpressure never engaged";

  // Phase 2: a polite client on the same (single) IO loop is not starved by
  // the wedged one.
  Client polite;
  ASSERT_EQ(polite.connect("127.0.0.1", server.port()), NetStatus::kOk);
  constexpr std::uint64_t kPoliteCalls = 3;
  for (std::uint64_t i = 0; i < kPoliteCalls; ++i) {
    ASSERT_TRUE(polite.predict(0.5 + 0.01 * static_cast<double>(i)).ok());
  }

  // Phase 3: start draining responses (and finish sending) — the server must
  // resume the paused read side and the parked partial write, answering every
  // request id exactly once with zero framing damage.
  std::vector<bool> seen(kRequests + 1, false);
  std::uint64_t answered = 0;
  std::vector<std::uint8_t> inbound;
  std::uint8_t chunk[4096];
  bool done_sending = false;
  for (int i = 0; i < 200000 && answered < kRequests; ++i) {
    if (!done_sending) done_sending = pump_sends();
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      inbound.insert(inbound.end(), chunk, chunk + n);
    } else if (n == 0) {
      break;  // premature FIN: the loop exit assertions will report it
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;
    } else {
      pollfd pfd{fd, static_cast<short>(POLLIN | (done_sending ? 0 : POLLOUT)), 0};
      ::poll(&pfd, 1, 10);
    }
    std::size_t offset = 0;
    for (;;) {
      Frame frame;
      std::size_t consumed = 0;
      if (decode_frame(inbound.data() + offset, inbound.size() - offset,
                       kDefaultMaxPayload, frame, consumed) != DecodeStatus::kOk) {
        break;
      }
      offset += consumed;
      ASSERT_EQ(frame.type, FrameType::kResponse);
      ASSERT_GE(frame.request_id, 1u);
      ASSERT_LE(frame.request_id, kRequests);
      ASSERT_FALSE(seen[frame.request_id]) << "duplicate response " << frame.request_id;
      seen[frame.request_id] = true;
      ++answered;
    }
    inbound.erase(inbound.begin(),
                  inbound.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  EXPECT_TRUE(done_sending);
  EXPECT_EQ(answered, kRequests);
  ::close(fd);

  server.stop();
  service.stop();
  const auto counters = service.stats().wire_counters();
  EXPECT_EQ(counters.frames_in, kRequests + kPoliteCalls);
  EXPECT_EQ(counters.frames_out, kRequests + kPoliteCalls);
  EXPECT_EQ(counters.decode_errors, 0u);
  EXPECT_GT(counters.flush_eagain, 0u);
}

// Satellite: every raw syscall in the server retries (or re-evaluates) on
// EINTR. A no-SA_RESTART handler plus a process-wide signal storm makes
// accept/recv/send/poll/epoll_wait fail with EINTR constantly; pipelined load
// must still come back complete with zero framing damage.
TEST_P(NetE2E, SignalStormDuringPipelinedLoadDropsNoFrames) {
  struct sigaction action {};
  action.sa_handler = +[](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART: syscalls must cope
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  serve::TuningService service(options);
  service.publish(serve::make_snapshot(*rafiki_));
  service.start();
  ServerOptions opts = server_options();
  opts.io_threads = 2;
  Server server(service, opts);
  ASSERT_TRUE(server.start()) << server.last_error();

  std::atomic<bool> storm{true};
  std::thread bomber([&storm] {
    while (storm.load(std::memory_order_acquire)) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kClients = 2;
  constexpr std::uint64_t kBurst = 32;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (client.connect("127.0.0.1", server.port()) != NetStatus::kOk) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      std::vector<std::uint64_t> ids;
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        const auto id = client.send(predict_request(0.2 + 0.01 * static_cast<double>(i)));
        if (id == 0) {
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        ids.push_back(id);
      }
      for (const auto id : ids) {
        const auto result = client.wait(id);
        if (result.net != NetStatus::kOk || !result.response.ok()) {
          ++failures[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  storm.store(false, std::memory_order_release);
  bomber.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }
  const auto counters = service.stats().wire_counters();
  EXPECT_EQ(counters.frames_in, static_cast<std::uint64_t>(kClients) * kBurst);
  EXPECT_EQ(counters.frames_out, counters.frames_in);
  EXPECT_EQ(counters.decode_errors, 0u);

  server.stop();
  service.stop();
}

INSTANTIATE_TEST_SUITE_P(IoBackends, NetE2E,
                         ::testing::ValuesIn(available_io_backends()),
                         [](const ::testing::TestParamInfo<IoBackend>& pinfo) {
                           return std::string(io_backend_name(pinfo.param));
                         });

}  // namespace
}  // namespace rafiki::net
