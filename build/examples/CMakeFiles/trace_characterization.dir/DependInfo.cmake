
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_characterization.cpp" "examples/CMakeFiles/trace_characterization.dir/trace_characterization.cpp.o" "gcc" "examples/CMakeFiles/trace_characterization.dir/trace_characterization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rafiki_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/rafiki_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rafiki_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/rafiki_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/rafiki_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rafiki_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rafiki_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
