// Feed-forward neural network used as the surrogate performance model
// (Section 3.6). The paper's final architecture is 6 inputs -> hidden [14, 4]
// with tanh activations -> 1 linear output, trained by Levenberg-Marquardt
// with Bayesian regularization (MATLAB's trainbr); see trainbr.h.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace rafiki::ml {

class Mlp {
 public:
  /// layer_sizes = {inputs, hidden..., outputs}; outputs must be 1.
  explicit Mlp(std::vector<std::size_t> layer_sizes);

  std::size_t input_size() const noexcept { return layers_.front(); }
  std::size_t param_count() const noexcept { return params_.size(); }
  const std::vector<std::size_t>& layers() const noexcept { return layers_; }

  std::span<const double> params() const noexcept { return params_; }
  void set_params(std::span<const double> params);

  /// Small random weights, scaled per-layer so tanh units start in their
  /// linear region regardless of fan-in.
  void randomize(Rng& rng);

  /// Network output for one (already normalized) input vector.
  double forward(std::span<const double> x) const;

  /// Reusable buffers for forward_batch. A caller evaluating many batches
  /// (or many ensemble members) passes the same scratch to every call so the
  /// per-batch cost is pure arithmetic, not allocation.
  struct BatchScratch {
    std::vector<double> a;  // transposed activations, ping (holds the input first)
    std::vector<double> z;  // transposed activations, pong
  };

  /// Batched forward pass: each row of `X` is one normalized input vector,
  /// evaluated with one matrix-matrix product per layer instead of one
  /// matrix-vector product per request. The per-element accumulation order
  /// (bias first, then weights in ascending input index) matches forward()
  /// exactly, so results are bit-for-bit identical to calling forward() row
  /// by row — the serve-layer micro-batcher and the GA population loop rely
  /// on that equivalence.
  std::vector<double> forward_batch(const Matrix& x_rows) const;

  /// Allocation-free variant: writes the x_rows.rows() outputs to `out` and
  /// keeps all intermediates in `scratch`. Same bit-for-bit contract.
  void forward_batch(const Matrix& x_rows, std::span<double> out,
                     BatchScratch& scratch) const;

  /// Output plus d(output)/d(params) via backpropagation; `grad` must have
  /// param_count() entries. One call per sample builds one Jacobian row.
  double forward_with_gradient(std::span<const double> x, std::span<double> grad) const;

 private:
  struct LayerView {
    std::size_t w_offset;  // start of the weight block in params_
    std::size_t b_offset;  // start of the bias block
    std::size_t in;
    std::size_t out;
  };

  std::vector<std::size_t> layers_;
  std::vector<LayerView> views_;
  std::vector<double> params_;
};

/// Min-max feature normalization to [-1, 1], MATLAB mapminmax-style, fit on
/// the training set and reused at prediction time.
class Normalizer {
 public:
  void fit(std::span<const double> values);  // single feature
  void fit_columns(const std::vector<std::vector<double>>& rows);

  double map(double v, std::size_t feature = 0) const;
  double unmap(double v, std::size_t feature = 0) const;
  /// Maps a *distance* in normalized units back to raw units (no offset);
  /// used to express ensemble spread in target units.
  double unmap_delta(double dv, std::size_t feature = 0) const;
  std::vector<double> map_row(std::span<const double> row) const;
  std::size_t features() const noexcept { return lo_.size(); }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace rafiki::ml
