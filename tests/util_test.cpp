#include <gtest/gtest.h>

#include <cmath>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace rafiki {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(42.0));
  EXPECT_NEAR(stats.mean(), 42.0, 1.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng parent1(5), parent2(5);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(OnlineStats, MatchesBatchStats) {
  const std::vector<double> xs = {1.0, 4.0, 4.0, 6.0, 7.5, -2.0};
  OnlineStats online;
  for (double x : xs) online.add(x);
  EXPECT_NEAR(online.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(online.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(online.min(), -2.0);
  EXPECT_DOUBLE_EQ(online.max(), 7.5);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  OnlineStats a, b, all;
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(0, 1);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y_up = {2, 4, 6, 8, 10};
  const std::vector<double> y_down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(correlation(x, y_up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, y_down), -1.0, 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 0.5 * i);
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, QuantileInterpolatesWithinBins) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);  // one sample per bin
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);

  // Quantiles are monotone in q.
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }

  // Empty histogram reports its lower bound.
  EXPECT_EQ(Histogram(5.0, 10.0, 4).quantile(0.5), 5.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0, 4, 2);
  h.add(1);
  h.add(3);
  h.add(3.5);
  const auto text = h.render(10);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table table({"name", "value"});
  table.add_row({"alpha", Table::num(1.5, 1)});
  table.add_row({"beta", Table::ops(78556)});
  const auto text = table.render();
  EXPECT_NE(text.find("| alpha"), std::string::npos);
  EXPECT_NE(text.find("78,556"), std::string::npos);
  const auto csv = table.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"78,556\""), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormattersBehave) {
  EXPECT_EQ(Table::pct(41.4), "41.4%");
  EXPECT_EQ(Table::ops(-1234567), "-1,234,567");
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace rafiki
