file(REMOVE_RECURSE
  "CMakeFiles/scylla_tuning.dir/scylla_tuning.cpp.o"
  "CMakeFiles/scylla_tuning.dir/scylla_tuning.cpp.o.d"
  "scylla_tuning"
  "scylla_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scylla_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
