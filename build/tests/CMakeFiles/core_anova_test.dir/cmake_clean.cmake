file(REMOVE_RECURSE
  "CMakeFiles/core_anova_test.dir/core_anova_test.cpp.o"
  "CMakeFiles/core_anova_test.dir/core_anova_test.cpp.o.d"
  "core_anova_test"
  "core_anova_test.pdb"
  "core_anova_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_anova_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
