file(REMOVE_RECURSE
  "CMakeFiles/engine_tombstone_test.dir/engine_tombstone_test.cpp.o"
  "CMakeFiles/engine_tombstone_test.dir/engine_tombstone_test.cpp.o.d"
  "engine_tombstone_test"
  "engine_tombstone_test.pdb"
  "engine_tombstone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_tombstone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
