// Negative-compile fixture proving the thread-safety analysis actually fires.
//
// A lint that never fails is indistinguishable from one that is wired up
// wrong (bad flag spelling, macros expanding to nothing under the wrong
// compiler), so the tsa.analysis_fires ctest compiles this file with
// -DRAFIKI_TSA_EXPECT_FAIL under -Werror=thread-safety-analysis and asserts
// the compile FAILS (WILL_FAIL): the unguarded read of a GUARDED_BY field
// must be rejected. The tsa.negative_control test compiles the correctly
// locked variant with the same flags and must succeed — together they pin
// both directions of the analysis. Registered only under clang; GCC has no
// capability analysis (the macros are no-ops there by design).
#include "util/sync.h"

namespace {

class Counter {
 public:
  void increment() {
    rafiki::MutexLock lock(mutex_);
    value_ += 1;
  }

#if defined(RAFIKI_TSA_EXPECT_FAIL)
  // Deliberate contract violation: guarded field read without the lock.
  int value() const { return value_; }
#else
  int value() const {
    rafiki::MutexLock lock(mutex_);
    return value_;
  }
#endif

 private:
  mutable rafiki::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
