// Sharded serving: a router that partitions the tuning service by workload
// fingerprint, after the per-workload-signature tuning of Tuneful and the
// paper's per-RR-bucket model cache.
//
//   client ──try_submit──▶ router ──band(rr)──▶ route table ──▶ shard k
//                            │                     ▲                │
//                            │  kOverloaded spill  │ rebalance      ├─ queue
//                            └──▶ shard k+1 ...    │ (hot band      ├─ workers
//                                                  │  migration)    ├─ batcher
//                                                  └────────────────┴─ retrain
//
// Each shard is a full TuningService — its own bounded queue, worker pool,
// micro-batcher, snapshot registry slots, and retrain coalescing map — so the
// hot path shares NOTHING across shards: no common queue mutex, no common
// stats lock (ServiceStats is itself striped), no common registry. Requests
// are routed by a stable fingerprint of their (tenant, read-ratio band) key
// (band = percent bucket of the read ratio, the same quantization the
// tuner's model cache uses), hashed into a fixed table of route slots — so
// one tenant-workload's traffic always lands on one shard and its
// tuned-config republishes never contend with another's, while different
// tenants at the same read ratio can land on different shards.
//
// Policies:
//   * Spill — if the home shard's queue is full (kOverloaded), the router
//     retries up to `spill_limit` sibling shards before giving up. Safe for
//     every endpoint: Predict/Optimize are pure functions of the tenant's
//     snapshot (identical on all shards; see publish), ObserveWindow goes
//     through the tenant's single shared, internally-synchronized tuner.
//   * Rebalance — per-route-slot hit counters feed rebalance_hottest(),
//     which migrates the hottest slot of the most-loaded shard to the
//     least-loaded one with a single atomic route-table store. With
//     ShardOptions::rebalance_interval set, a background policy thread runs
//     this migration automatically off the striped telemetry — no explicit
//     rebalance_hottest() calls needed. In-flight requests finish on the
//     shard that admitted them; nothing is dropped.
//   * Publish fan-out — publish() and the tuner's tuned-config hook write
//     the same snapshot/entry to every shard under one router mutex, so
//     shard versions advance in lockstep and a spilled request reads the
//     same model it would have read at home.
//   * Stats merge-on-read — request-path telemetry stays in the shards'
//     striped ServiceStats; stats_table() folds the per-endpoint aggregates
//     of every shard (plus the router's wire-level stats object) into one
//     table with the exact layout of the unsharded service.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/backend.h"
#include "serve/service.h"
#include "util/sync.h"

namespace rafiki::serve {

struct ShardOptions {
  /// Shard count; clamped to [1, 128]. Every shard gets a full copy of
  /// `service` (queue, worker pool, batcher, retrain worker).
  std::size_t shards = 4;
  ServiceOptions service{};
  /// Fleet-level worker budget, divided across shards (shard i gets
  /// budget/N workers, +1 for the first budget%N shards). 0 (the default)
  /// derives the budget from `service.workers` capped by the machine:
  /// min(hardware_concurrency, shards * service.workers), floored at one
  /// worker per shard. This is the de-scaling fix — the pre-budget router
  /// gave every shard its own full `service.workers` pool, so 8 shards x
  /// (2 workers + a retrain thread) oversubscribed any host with fewer
  /// than ~24 hardware threads and the shard curve went flat or negative.
  /// An explicit budget is clamped to at least one worker per shard.
  /// service.workers == 0 keeps every shard at zero workers (test mode).
  std::size_t worker_budget = 0;
  /// Pin each shard's workers to a contiguous CPU range (shard i gets CPUs
  /// [i*H/N, (i+1)*H/N) of H = hardware_concurrency). Off (the default):
  /// the scheduler places threads freely. Linux-only; elsewhere a no-op.
  bool pin_shards = false;
  /// On a home-shard Overloaded verdict, try up to this many sibling shards
  /// (in route order) before reporting Overloaded to the caller. 0 disables
  /// spilling.
  std::size_t spill_limit = 1;
  /// Automatic rebalance: start() spawns a background policy thread that
  /// wakes at this interval and migrates the hottest (tenant, band) route
  /// slot off the most-loaded shard (exactly rebalance_hottest(), driven by
  /// the same striped hit telemetry). Zero (the default) disables the
  /// thread; explicit rebalance_hottest() calls work either way.
  std::chrono::milliseconds rebalance_interval{0};
};

class ShardedTuningService : public TuningBackend {
 public:
  /// Read-ratio bands: percent buckets of rr in [0, 1] — the same
  /// quantization as the tuner's per-bucket model cache, so one tuned
  /// workload maps to exactly one band.
  static constexpr std::size_t kBands = 101;
  /// Route-table size: (tenant, band) keys hash into this many slots, each
  /// atomically mapped to a shard. A slot is the unit of migration; distinct
  /// keys sharing a slot move together (ordinary hash-sharding collisions).
  static constexpr std::size_t kRouteSlots = 1024;

  /// Percent band of a read ratio (clamped into [0, kBands)).
  static std::size_t band_of(double read_ratio) noexcept;
  /// Stable fingerprint of a band in the default tenant namespace (tenant
  /// 0): a pure integer mix (splitmix64 finalizer) of the band index — no
  /// pointers, no process state — so band->shard assignment is identical
  /// across restarts and machines for a given shard count.
  static std::uint64_t band_fingerprint(std::size_t band) noexcept;
  /// Stable fingerprint of a (tenant, band) routing key; tenant 0 reduces to
  /// band_fingerprint, so pre-tenant routing is unchanged.
  static std::uint64_t route_fingerprint(TenantId tenant, std::size_t band) noexcept;
  /// Route-table slot of a (tenant, band) key.
  static std::size_t route_slot(TenantId tenant, std::size_t band) noexcept {
    return static_cast<std::size_t>(route_fingerprint(tenant, band) % kRouteSlots);
  }

  explicit ShardedTuningService(ShardOptions options = {});
  ~ShardedTuningService() override;

  ShardedTuningService(const ShardedTuningService&) = delete;
  ShardedTuningService& operator=(const ShardedTuningService&) = delete;

  /// Fans the snapshot out to every shard under one mutex; shard versions
  /// advance in lockstep. Returns the (common) new version.
  std::uint64_t publish(ModelSnapshot snapshot) override;
  std::shared_ptr<const ModelSnapshot> snapshot() const override;
  std::uint64_t model_version() const override;
  std::shared_ptr<const ModelSnapshot> tenant_snapshot(TenantId tenant) const override;
  std::uint64_t tenant_model_version(TenantId tenant) const override;

  /// Claims the shared tuner's single-slot hooks for the router: tuned
  /// configs fan out to every shard's snapshot, async optimizations route to
  /// the owning shard's RetrainWorker; every shard gets the tuner bound
  /// (bind_tuner) for its ObserveWindow path. Equivalent to
  /// attach_tenant_tuner(0, tuner).
  void attach_tuner(core::OnlineTuner& tuner) override;

  /// Tenant-fleet variant of attach_tuner: claims `tuner`'s hooks for one
  /// tenant namespace — republishes fan out into every shard's slot for
  /// `tenant` only, background optimizations enqueue under the tenant's own
  /// retrain key-space on the owning shard, and the tuner is bound to every
  /// shard's ObserveWindow path for this tenant.
  void attach_tenant_tuner(TenantId tenant, core::OnlineTuner& tuner);

  /// Tenant-qualified tuned-entry fan-out (all shards, one tenant slot,
  /// lockstep under the router publish mutex).
  void publish_tuned(TenantId tenant, int bucket, const engine::Config& config,
                     double predicted);

  std::future<Response> submit(Request request) override;
  Status try_submit(Request request, ResponseCallback done) override;

  void start() override;
  void stop() override;

  /// Router-level stats: wire telemetry (net::Server records here) plus
  /// nothing on the request path — request counters live in the shards.
  ServiceStats& stats() noexcept override { return router_stats_; }
  const ServiceStats& stats() const noexcept override { return router_stats_; }
  /// Merge-on-read across all shards + the router stats object. Per-shard
  /// admission verdicts are summed as-is, so a spilled request contributes
  /// one Overloaded reject at home and one accept at the sibling; spills()
  /// says how many rejects were absorbed that way.
  Table stats_table() const override;

  void wait_retrain_idle() override;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Total worker threads across all shards after budget resolution — the
  /// sum of every shard's worker_count(). Never exceeds
  /// max(worker_budget, shards) for an explicit budget, nor
  /// max(min(hardware_concurrency, shards * service.workers), shards) for
  /// the derived one (0 when service.workers == 0).
  std::size_t resolved_worker_budget() const noexcept;
  TuningService& shard(std::size_t index) { return *shards_[index]; }
  const TuningService& shard(std::size_t index) const { return *shards_[index]; }
  /// Current route of a tenant-0 read ratio / band (lock-free relaxed load).
  std::size_t shard_of(double read_ratio) const noexcept;
  std::size_t shard_of_band(std::size_t band) const noexcept;
  /// Current route of a (tenant, band) key.
  std::size_t shard_of_key(TenantId tenant, std::size_t band) const noexcept;
  /// Pins a tenant-0 band to a shard (tests, manual rebalance).
  void route_band(std::size_t band, std::size_t shard_index) noexcept;
  /// Pins a (tenant, band) key's route slot to a shard.
  void route_key(TenantId tenant, std::size_t band, std::size_t shard_index) noexcept;

  /// Migrates the hottest route slot of the most-loaded shard (by routed
  /// request count) to the least-loaded shard. Returns false when there is
  /// nothing to move (uniform load, single shard, or no traffic). The
  /// rebalance policy thread (ShardOptions::rebalance_interval) calls this
  /// on a timer; it is also safe to call manually at any time.
  bool rebalance_hottest();

  /// Requests absorbed by a sibling shard after a home-shard Overloaded.
  std::uint64_t spills() const noexcept { return spills_.load(std::memory_order_relaxed); }
  /// Successful rebalance_hottest() migrations.
  std::uint64_t rebalances() const noexcept {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// Cross-shard merged views (sum over shards; see stats_table caveat on
  /// spill double-counting of admission verdicts).
  ServiceStats::Counters endpoint_counters(Endpoint endpoint) const override;
  ServiceStats::Counters merged_totals() const;
  ServiceStats::RetrainCounters retrain_counters() const override;
  double endpoint_latency_quantile(Endpoint endpoint, double q) const override;
  /// Request-weighted mean micro-batch size across shards.
  double mean_batch_size() const override;
  /// Run-weighted mean background-retrain latency across shards.
  double mean_retrain_latency_us() const override;

  const ShardOptions& options() const noexcept { return options_; }

 private:
  void rebalance_loop();

  ShardOptions options_;
  std::vector<std::unique_ptr<TuningService>> shards_;
  /// route slot -> shard index. uint8 caps shards at 128 (clamped in the
  /// ctor); reads are relaxed atomic loads on the submit path, writes only
  /// from route_key / rebalance_hottest.
  std::array<std::atomic<std::uint8_t>, kRouteSlots> route_{};
  /// Per-route-slot routed-request counters (relaxed); rebalance input —
  /// the striped telemetry the policy thread migrates on.
  std::array<std::atomic<std::uint64_t>, kRouteSlots> slot_hits_{};
  ServiceStats router_stats_;
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> rebalances_{0};
  /// Rebalance policy thread (only when rebalance_interval > 0). Spawned in
  /// start(), stopped via the stop_ handshake + join in stop().
  std::thread rebalance_thread_;
  Mutex rebalance_lifecycle_mutex_;
  CondVar rebalance_stop_cv_;
  bool rebalance_started_ GUARDED_BY(rebalance_lifecycle_mutex_) = false;
  bool rebalance_stop_ GUARDED_BY(rebalance_lifecycle_mutex_) = false;
  /// Serializes fan-out publishes so all shards see the same snapshot
  /// sequence (and therefore mint identical version numbers). Lock
  /// hierarchy: acquired BEFORE any shard's publish_mutex_ (the fan-out
  /// calls into shard->publish/publish_tuned while held) — see "Concurrency
  /// contracts" in DESIGN.md; never acquired from shard code.
  Mutex publish_mutex_;
  /// Serializes route-table rewrites (reads stay lock-free relaxed atomic
  /// loads on the submit path; the route_ slots themselves are atomics, so
  /// they carry no GUARDED_BY — the mutex only orders writers).
  Mutex rebalance_mutex_;
};

}  // namespace rafiki::serve
