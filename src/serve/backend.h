// The serving-plane surface shared by the single TuningService and the
// ShardedTuningService router: snapshot publication, request submission, and
// lifecycle. Front-ends (net::Server, rafiki_serverd, the load benches)
// program against this interface so a process can swap between one service
// and an N-shard fleet with a flag.
#pragma once

#include <cstdint>
#include <future>
#include <memory>

#include "serve/snapshot.h"
#include "serve/stats.h"
#include "serve/types.h"
#include "util/func.h"
#include "util/table.h"

namespace rafiki::core {
class OnlineTuner;
}

namespace rafiki::serve {

/// Completion callback for try_submit. Invoked exactly once, from a worker
/// thread (or from stop()'s drain when no worker ever ran). Move-only with
/// small-buffer storage (util/func.h): the callback is never copied on the
/// submit path — a rejected admission hands it back to the caller intact,
/// and hot-path captures up to MoveFunc's inline size never touch the heap.
using ResponseCallback = MoveFunc<void(Response)>;

class TuningBackend {
 public:
  virtual ~TuningBackend() = default;

  /// Atomically publishes a new model version (stamping a monotonically
  /// increasing version number) and returns it. In-flight requests keep the
  /// snapshot they already resolved; new requests see this one. Safe to call
  /// from any thread, including while serving.
  virtual std::uint64_t publish(ModelSnapshot snapshot) = 0;
  /// Currently published snapshot (null before the first publish).
  virtual std::shared_ptr<const ModelSnapshot> snapshot() const = 0;
  virtual std::uint64_t model_version() const = 0;

  /// Per-tenant views. Tenant 0 is the default namespace, so for a
  /// single-tenant backend these are the plain snapshot()/model_version();
  /// backends without tenant slots serve every tenant from the same slot.
  virtual std::shared_ptr<const ModelSnapshot> tenant_snapshot(TenantId tenant) const {
    (void)tenant;
    return snapshot();
  }
  virtual std::uint64_t tenant_model_version(TenantId tenant) const {
    (void)tenant;
    return model_version();
  }

  /// Enables the ObserveWindow endpoint by wiring the tuner (which must
  /// outlive this backend) to the background retrain machinery and the
  /// snapshot registry. Call before start().
  virtual void attach_tuner(core::OnlineTuner& tuner) = 0;

  /// Asynchronous submission. Admission control resolves immediately: the
  /// returned future is already satisfied with Overloaded / ShuttingDown
  /// when the request was not admitted.
  virtual std::future<Response> submit(Request request) = 0;
  /// Callback-style submission for event-loop callers (the net::Server) that
  /// must not block on a future. Returns kOk when the request was admitted —
  /// `done` then fires exactly once with the response — or the admission
  /// verdict (Overloaded / ShuttingDown), in which case `done` is never
  /// invoked and the caller answers inline.
  virtual Status try_submit(Request request, ResponseCallback done) = 0;

  virtual void start() = 0;
  virtual void stop() = 0;

  /// Telemetry sink for wire-level front-ends. For a sharded backend this is
  /// the router-level stats object (wire telemetry is per-process, not
  /// per-shard); request-path counters live in the shards and are merged by
  /// stats_table(). ServiceStats is internally synchronized and lock-free on
  /// the record path.
  virtual ServiceStats& stats() noexcept = 0;
  virtual const ServiceStats& stats() const noexcept = 0;
  /// Per-endpoint summary table; merge-on-read across shards for a sharded
  /// backend, identical layout either way.
  virtual Table stats_table() const = 0;

  /// Numeric merged telemetry (benches and gates read these; for a sharded
  /// backend they fold every shard's striped stats on each call).
  virtual ServiceStats::Counters endpoint_counters(Endpoint endpoint) const = 0;
  virtual ServiceStats::RetrainCounters retrain_counters() const = 0;
  virtual double endpoint_latency_quantile(Endpoint endpoint, double q) const = 0;
  virtual double mean_batch_size() const = 0;
  virtual double mean_retrain_latency_us() const = 0;

  /// Blocks until background retrain work is idle — the barrier tests and
  /// benches use to observe the post-republish state.
  virtual void wait_retrain_idle() = 0;

  /// Synchronous convenience wrapper: submit + wait.
  Response call(const Request& request) { return submit(request).get(); }
};

}  // namespace rafiki::serve
