// Search baselines the paper compares against:
//  - exhaustive grid search: the "theoretically best achievable" reference
//    (Section 4.8), infeasibly slow against the live system but usable
//    against the simulator and the surrogate;
//  - greedy one-parameter-at-a-time sweep: the "obvious" technique the paper
//    shows is suboptimal because it ignores parameter interdependencies
//    (Section 4.6, Figure 6);
//  - uniform random search: sanity baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/space.h"

namespace rafiki::opt {

struct SearchResult {
  std::vector<double> best_point;
  double best_fitness = 0.0;
  std::size_t evaluations = 0;
};

/// Evaluates every point of the full-factorial grid.
SearchResult grid_search(const SearchSpace& space, const Objective& objective,
                         std::span<const std::size_t> levels);

/// Coordinate ascent: sweeps each dimension's levels with the others fixed,
/// committing the best value, for `passes` rounds.
SearchResult greedy_search(const SearchSpace& space, const Objective& objective,
                           std::vector<double> start, std::size_t levels_per_dim = 8,
                           std::size_t passes = 2);

/// Uniform random sampling of `samples` feasible points.
SearchResult random_search(const SearchSpace& space, const Objective& objective,
                           std::size_t samples, std::uint64_t seed = 7);

}  // namespace rafiki::opt
