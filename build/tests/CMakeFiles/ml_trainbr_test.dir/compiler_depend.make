# Empty compiler generated dependencies file for ml_trainbr_test.
# This may be replaced when dependencies are built.
