// Training-sample management for the surrogate model (Sections 3.5, 4.2):
// sample generation over the workload x configuration lattice, the paper's
// config-sampling rule (min/max/default coverage plus random fill), faulty-
// sample dropout, dimension-wise train/test splits and CSV round-tripping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/config.h"
#include "collect/runner.h"
#include "workload/spec.h"

namespace rafiki::collect {

/// One training point S_i = {W_i, C_i, P_i} (paper Section 3.5).
struct Sample {
  workload::WorkloadSpec workload;
  engine::Config config;
  double throughput = 0.0;
};

class Dataset {
 public:
  void add(Sample sample) { samples_.push_back(std::move(sample)); }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  const Sample& operator[](std::size_t i) const { return samples_.at(i); }

  /// Model feature row: read ratio followed by the values of `params`
  /// (Equation 2 with params = the five key parameters).
  static std::vector<double> features(const Sample& sample,
                                      const std::vector<engine::ParamId>& params);

  std::vector<std::vector<double>> feature_matrix(
      const std::vector<engine::ParamId>& params) const;
  std::vector<double> targets() const;

  struct Split {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
  };
  /// Withholds a fraction of distinct *configurations*: no config in the
  /// test set appears in training ("unseen configurations", Section 4.3).
  Split split_by_config(double test_fraction, std::uint64_t seed) const;
  /// Withholds a fraction of distinct *workloads* (read ratios).
  Split split_by_workload(double test_fraction, std::uint64_t seed) const;

  Dataset subset(const std::vector<std::size_t>& indices) const;

  std::string to_csv(const std::vector<engine::ParamId>& params) const;
  /// Inverse of to_csv: parameter columns are identified by the header, so a
  /// corpus collected by an older binary with a different key-parameter set
  /// still loads. Throws std::invalid_argument on malformed input.
  static Dataset from_csv(const std::string& csv,
                          const workload::WorkloadSpec& base_workload = {});

 private:
  std::vector<Sample> samples_;
};

/// The paper's configuration-sampling rule: the default config, one config
/// at every parameter's minimum, one at every maximum, and random fill up to
/// `count` (values varied only on `params`).
std::vector<engine::Config> sample_configs(const std::vector<engine::ParamId>& params,
                                           std::size_t count, std::uint64_t seed);

/// Subspace-focused variant for dynamic knob selection: the coverage rule
/// (default + per-parameter extremes) still spans ALL of `params` so every
/// registry dimension has at least axis-aligned support, but the random fill
/// varies only `active` jointly and leaves the rest at their defaults — the
/// exact slice a pinned-subspace GA will later search. With `active ==
/// params` this is bit-identical to sample_configs.
std::vector<engine::Config> sample_configs_focused(
    const std::vector<engine::ParamId>& params,
    const std::vector<engine::ParamId>& active, std::size_t count,
    std::uint64_t seed);

struct CollectOptions {
  MeasureOptions measure;
  /// Probability a sample is lost to harness faults (the paper dropped 20
  /// of 220 collected points).
  double fault_rate = 0.0;
  std::uint64_t seed = 2024;
};

/// Full collection pass: every workload in `read_ratios` against every
/// config; returns surviving samples.
Dataset collect_dataset(const std::vector<engine::Config>& configs,
                        const std::vector<double>& read_ratios,
                        const workload::WorkloadSpec& base_workload,
                        const CollectOptions& options);

}  // namespace rafiki::collect
