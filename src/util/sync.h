// Compile-time concurrency contracts: Clang -Wthread-safety capability
// annotations plus annotated wrappers over the std synchronization
// primitives. The serve/net stack's locking discipline (which field is
// guarded by which mutex, which methods require a lock held) used to live in
// DESIGN.md prose and TSan's dynamic coverage; with these types the compiler
// checks it on every build of every TU — the `tsa` preset turns violations
// into hard errors (-Werror=thread-safety-analysis).
//
// Usage:
//   * Declare locks as rafiki::Mutex, hold them with rafiki::MutexLock
//     (scoped), wait with rafiki::CondVar. std::mutex /
//     std::condition_variable are not used directly in concurrent code —
//     they are invisible to the analysis.
//   * Annotate every field written under a lock with GUARDED_BY(mutex_),
//     and every method that expects the caller to hold a lock with
//     REQUIRES(mutex_).
//   * Condition-variable predicates that read guarded state must be written
//     as explicit `while (!pred) cv.wait(mutex)` loops in the annotated
//     function, NOT as lambda predicates — the analysis is intraprocedural
//     and cannot see that a lambda runs with the lock held.
//   * NO_THREAD_SAFETY_ANALYSIS is a last resort; every use site MUST carry
//     a `// tsa:ok: <reason>` justification comment on the same line or the
//     line above (enforced by tools/check_determinism.py, rule
//     `tsa-justification`).
//
// On non-Clang compilers every macro expands to nothing and the wrappers
// compile to the underlying std types with zero overhead, so GCC builds are
// unaffected; only Clang builds get the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macro set (the standard capability-analysis vocabulary; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define RAFIKI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RAFIKI_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no capability analysis
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) RAFIKI_THREAD_ANNOTATION(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY RAFIKI_THREAD_ANNOTATION(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) RAFIKI_THREAD_ANNOTATION(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) RAFIKI_THREAD_ANNOTATION(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) RAFIKI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) RAFIKI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) RAFIKI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  RAFIKI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) RAFIKI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  RAFIKI_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) RAFIKI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  RAFIKI_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) RAFIKI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) RAFIKI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) RAFIKI_THREAD_ANNOTATION(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) RAFIKI_THREAD_ANNOTATION(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS RAFIKI_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif

namespace rafiki {

class CondVar;

/// Annotated mutex: a zero-overhead std::mutex wrapper the capability
/// analysis can see. Fields guarded by one are declared GUARDED_BY(mu_);
/// methods expecting it held are declared REQUIRES(mu_).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (the std::lock_guard shape the analysis understands): holds
/// the mutex for the enclosing scope, so guarded accesses inside that scope
/// type-check.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over rafiki::Mutex. All waits REQUIRE the mutex held;
/// internally the wait adopts the already-held std::mutex (no
/// condition_variable_any overhead) and re-owns it before returning, so the
/// caller's capability is intact on both sides of the wait exactly as the
/// annotation promises. No predicate overloads on purpose: predicates read
/// guarded state, and a lambda would escape the analysis — spell the
/// `while (!pred) cv.wait(mutex);` loop in the annotated caller instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mutex`, blocks, and reacquires before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // the caller still owns the lock, as annotated
  }

  /// Timed wait (real-time deadline); see wait() for the locking contract.
  std::cv_status wait_until(Mutex& mutex,
                            std::chrono::steady_clock::time_point deadline)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace rafiki
