// Real-coded genetic algorithm for configuration search (Section 3.7.2).
//
// Follows the paper's formulation: the fitness is the surrogate model's
// predicted throughput with the workload fixed; the initial population is
// uniform within bounds; crossover takes a random-weighted average of two
// parents (interpolation, never extrapolation); constraints are handled by
// penalty — offspring whose integer parameters land on fractional values are
// scored with a penalty rather than repaired, per Deb's constraint-handling
// method the paper cites [16, 17].
#pragma once

#include <cstdint>
#include <vector>

#include "opt/space.h"

namespace rafiki::opt {

struct GaOptions {
  std::size_t population = 48;
  std::size_t generations = 70;
  double crossover_rate = 0.9;
  double mutation_rate = 0.15;
  /// Mutation step as a fraction of the dimension's range.
  double mutation_sigma = 0.12;
  std::size_t tournament = 3;
  std::size_t elites = 2;
  /// Penalty applied per unit of constraint violation, scaled by the
  /// population's fitness spread.
  double penalty_weight = 2.0;
  /// Warm-start points injected into the initial population (snapped into
  /// the space; entries whose size mismatches the space are skipped). They
  /// replace the first random genomes AFTER the whole population is drawn,
  /// so the RNG stream — and therefore every run without seed points — is
  /// bit-identical to before this option existed. Used by the online tuner
  /// to keep the incumbent configuration competitive across re-cuts.
  std::vector<std::vector<double>> seed_points{};
  std::uint64_t seed = 99;
};

struct GaResult {
  std::vector<double> best_point;  ///< snapped to feasibility
  double best_fitness = 0.0;       ///< objective at best_point
  std::size_t evaluations = 0;     ///< objective calls (the "surrogate calls")
  std::vector<double> best_history;  ///< best feasible fitness per generation
  /// Best feasible genome per generation (snapped), parallel to
  /// best_history; empty entries until the first feasible individual
  /// appears. Lets convergence studies re-score the search trajectory
  /// against a ground-truth objective.
  std::vector<std::vector<double>> best_point_history;
};

/// Vectorized objective: fitness for a whole set of points at once. The GA
/// evaluates each generation's offspring through one such call, which lets a
/// surrogate-backed objective run one batched ensemble evaluation per
/// generation (SurrogateEnsemble::predict_batch) instead of one per
/// individual. Must return exactly one value per input point.
using BatchObjective =
    std::function<std::vector<double>(const std::vector<std::vector<double>>&)>;

GaResult ga_optimize(const SearchSpace& space, const Objective& objective,
                     const GaOptions& options = {});

/// Same algorithm and RNG stream as ga_optimize — results are identical when
/// the batch objective agrees with the scalar one row-for-row.
GaResult ga_optimize_batched(const SearchSpace& space, const BatchObjective& objective,
                             const GaOptions& options = {});

}  // namespace rafiki::opt
