#include "serve/shard.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/online.h"

namespace rafiki::serve {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::size_t hw_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Fleet worker budget for N shards. An explicit budget is taken as given
/// (floored at one worker per shard so no shard deadlocks its queue); the
/// derived budget caps the legacy shards*workers sizing at the machine's
/// hardware threads — the oversubscription that made 8 shards slower than 1.
std::size_t resolve_budget(const ShardOptions& options, std::size_t shards) noexcept {
  if (options.worker_budget > 0) return std::max(options.worker_budget, shards);
  if (options.service.workers == 0) return 0;  // test mode: no workers anywhere
  const std::size_t requested = shards * options.service.workers;
  return std::max(shards, std::min(hw_threads(), requested));
}

/// Contiguous CPU slice for shard i of n: [i*H/n, (i+1)*H/n). With more
/// shards than CPUs the slice is empty — fall back to a single shared CPU
/// (i % H) so pinning still separates shards as far as the machine allows.
std::vector<int> shard_cpu_slice(std::size_t shard, std::size_t shards) {
  const std::size_t hw = hw_threads();
  const std::size_t lo = shard * hw / shards;
  const std::size_t hi = (shard + 1) * hw / shards;
  std::vector<int> cpus;
  for (std::size_t cpu = lo; cpu < hi; ++cpu) cpus.push_back(static_cast<int>(cpu));
  if (cpus.empty()) cpus.push_back(static_cast<int>(shard % hw));
  return cpus;
}

}  // namespace

std::size_t ShardedTuningService::band_of(double read_ratio) noexcept {
  const long scaled = std::lround(read_ratio * 100.0);
  return static_cast<std::size_t>(
      std::clamp<long>(scaled, 0, static_cast<long>(kBands - 1)));
}

std::uint64_t ShardedTuningService::band_fingerprint(std::size_t band) noexcept {
  return route_fingerprint(0, band);
}

std::uint64_t ShardedTuningService::route_fingerprint(TenantId tenant,
                                                      std::size_t band) noexcept {
  // splitmix64 finalizer over the packed (tenant, band) key: a pure integer
  // mix — no pointers, no process state — so key->slot->shard assignment is
  // reproducible across restarts for a fixed shard count. Bands fit in 7
  // bits (kBands = 101), so the packing is collision-free, and tenant 0
  // reduces to the original per-band fingerprint.
  std::uint64_t z = ((static_cast<std::uint64_t>(tenant) << 7) |
                     static_cast<std::uint64_t>(band)) +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

ShardedTuningService::ShardedTuningService(ShardOptions options)
    : options_(std::move(options)), router_stats_(options_.service.stats) {
  options_.shards = std::clamp<std::size_t>(options_.shards, 1, 128);
  shards_.reserve(options_.shards);
  // Divide the fleet budget across shards instead of handing every shard its
  // own full pool: budget/N each, +1 for the first budget%N shards, so the
  // division is deterministic for a given (budget, shards) and the total
  // never exceeds the budget.
  const std::size_t budget = resolve_budget(options_, options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    ServiceOptions per_shard = options_.service;
    per_shard.workers = budget / options_.shards + (i < budget % options_.shards ? 1 : 0);
    if (options_.pin_shards) per_shard.cpu_affinity = shard_cpu_slice(i, options_.shards);
    shards_.push_back(std::make_unique<TuningService>(std::move(per_shard)));
  }
  for (std::size_t slot = 0; slot < kRouteSlots; ++slot) {
    // Initial slot->shard spread reuses the same pure mix (of the slot
    // index), keeping the table identical across restarts.
    route_[slot].store(
        static_cast<std::uint8_t>(band_fingerprint(slot) % options_.shards), kRelaxed);
  }
}

ShardedTuningService::~ShardedTuningService() { stop(); }

std::uint64_t ShardedTuningService::publish(ModelSnapshot snapshot) {
  MutexLock lock(publish_mutex_);
  std::uint64_t version = 0;
  for (auto& shard : shards_) version = shard->publish(snapshot);
  return version;
}

std::shared_ptr<const ModelSnapshot> ShardedTuningService::snapshot() const {
  return shards_.front()->snapshot();
}

std::uint64_t ShardedTuningService::model_version() const {
  return shards_.front()->model_version();
}

std::shared_ptr<const ModelSnapshot> ShardedTuningService::tenant_snapshot(
    TenantId tenant) const {
  return shards_.front()->tenant_snapshot(tenant);
}

std::uint64_t ShardedTuningService::tenant_model_version(TenantId tenant) const {
  return shards_.front()->tenant_model_version(tenant);
}

void ShardedTuningService::attach_tuner(core::OnlineTuner& tuner) {
  attach_tenant_tuner(0, tuner);
}

void ShardedTuningService::attach_tenant_tuner(TenantId tenant, core::OnlineTuner& tuner) {
  // The tuner's hooks are single-slot, so the router — not any one shard —
  // must own them and fan out. Each tenant has its own tuner, so each
  // tenant's hooks are claimed independently.
  tuner.set_publish_hook(
      [this, tenant](int bucket, const core::Rafiki::OptimizeResult& result) {
        publish_tuned(tenant, bucket, result.config, result.predicted_throughput);
      });
  tuner.set_async_optimize_hook([this, tenant](int bucket, double read_ratio) {
    // Route the background optimization to the shard that owns the (tenant,
    // band) key, so its retrain coalescing map sees every request for its
    // workloads. retrain_key(tenant, bucket) is the coalescing key: same
    // per-bucket dedup as unsharded, but never across tenants.
    shards_[shard_of_key(tenant, band_of(read_ratio))]->enqueue_retrain(tenant, bucket,
                                                                        read_ratio);
  });
  for (auto& shard : shards_) shard->bind_tenant_tuner(tenant, tuner);
}

void ShardedTuningService::publish_tuned(TenantId tenant, int bucket,
                                         const engine::Config& config, double predicted) {
  MutexLock lock(publish_mutex_);
  for (auto& shard : shards_) shard->publish_tuned(tenant, bucket, config, predicted);
}

std::size_t ShardedTuningService::shard_of_key(TenantId tenant,
                                               std::size_t band) const noexcept {
  return route_[route_slot(tenant, std::min(band, kBands - 1))].load(kRelaxed) %
         shards_.size();
}

std::size_t ShardedTuningService::shard_of_band(std::size_t band) const noexcept {
  return shard_of_key(0, band);
}

std::size_t ShardedTuningService::shard_of(double read_ratio) const noexcept {
  return shard_of_key(0, band_of(read_ratio));
}

void ShardedTuningService::route_band(std::size_t band, std::size_t shard_index) noexcept {
  route_key(0, band, shard_index);
}

void ShardedTuningService::route_key(TenantId tenant, std::size_t band,
                                     std::size_t shard_index) noexcept {
  if (band >= kBands || shard_index >= shards_.size()) return;
  route_[route_slot(tenant, band)].store(static_cast<std::uint8_t>(shard_index), kRelaxed);
}

Status ShardedTuningService::try_submit(Request request, ResponseCallback done) {
  const std::size_t slot = route_slot(request.tenant, band_of(request.read_ratio));
  slot_hits_[slot].fetch_add(1, kRelaxed);
  const std::size_t home = route_[slot].load(kRelaxed) % shards_.size();

  // offer() moves `done` into the queue only on kOk and hands it back intact
  // on rejection, so home admission and every spill retry reuse the one
  // callback — the pre-fix router copied the std::function per attempt,
  // including on the no-spill fast path.
  Status verdict = shards_[home]->offer(request, done);
  if (verdict != Status::kOverloaded) return verdict;

  const std::size_t tries = std::min(options_.spill_limit, shards_.size() - 1);
  for (std::size_t i = 1; i <= tries; ++i) {
    const std::size_t sibling = (home + i) % shards_.size();
    verdict = shards_[sibling]->offer(request, done);
    if (verdict == Status::kOk) {
      spills_.fetch_add(1, kRelaxed);
      return verdict;
    }
    if (verdict == Status::kShuttingDown) return verdict;
  }
  return verdict;
}

std::future<Response> ShardedTuningService::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  const Status admitted =
      try_submit(request, [promise](Response response) { promise->set_value(std::move(response)); });
  if (admitted != Status::kOk) {
    Response response;
    response.status = admitted;
    promise->set_value(response);
  }
  return future;
}

void ShardedTuningService::start() {
  for (auto& shard : shards_) shard->start();
  if (options_.rebalance_interval.count() > 0) {
    MutexLock lock(rebalance_lifecycle_mutex_);
    if (!rebalance_started_ && !rebalance_stop_) {
      rebalance_started_ = true;
      rebalance_thread_ = std::thread([this] { rebalance_loop(); });
    }
  }
}

void ShardedTuningService::stop() {
  {
    MutexLock lock(rebalance_lifecycle_mutex_);
    rebalance_stop_ = true;
  }
  rebalance_stop_cv_.notify_all();
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
  for (auto& shard : shards_) shard->stop();
}

void ShardedTuningService::rebalance_loop() {
  for (;;) {
    {
      MutexLock lock(rebalance_lifecycle_mutex_);
      // The pacing deadline is real time by design: it decides only *when*
      // the policy thread looks at the telemetry, never what any request
      // returns (a migration just changes which shard serves a key).
      // det:ok(wall-clock): policy-thread pacing only, results unaffected
      const auto deadline = std::chrono::steady_clock::now() + options_.rebalance_interval;
      while (!rebalance_stop_) {
        if (rebalance_stop_cv_.wait_until(rebalance_lifecycle_mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (rebalance_stop_) return;
    }
    rebalance_hottest();
  }
}

void ShardedTuningService::wait_retrain_idle() {
  for (auto& shard : shards_) shard->wait_retrain_idle();
}

bool ShardedTuningService::rebalance_hottest() {
  MutexLock lock(rebalance_mutex_);
  const std::size_t n = shards_.size();
  if (n < 2) return false;

  // Shard load = routed hits of the slots it currently owns; also track each
  // shard's hottest slot so the migration victim falls out of the same scan.
  std::vector<std::uint64_t> load(n, 0);
  std::vector<std::size_t> hottest_slot(n, kRouteSlots);
  std::vector<std::uint64_t> hottest_hits(n, 0);
  for (std::size_t slot = 0; slot < kRouteSlots; ++slot) {
    const std::size_t owner = route_[slot].load(kRelaxed) % n;
    const std::uint64_t hits = slot_hits_[slot].load(kRelaxed);
    load[owner] += hits;
    if (hits > hottest_hits[owner]) {
      hottest_hits[owner] = hits;
      hottest_slot[owner] = slot;
    }
  }

  std::size_t most = 0;
  std::size_t least = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (load[i] > load[most]) most = i;
    if (load[i] < load[least]) least = i;
  }
  if (most == least || hottest_slot[most] == kRouteSlots) return false;
  // Greedy improvement check: migrate only if the receiver stays below the
  // donor's current load, otherwise the move just swaps the hot spot.
  const std::uint64_t moved = hottest_hits[most];
  if (moved == 0 || load[least] + moved >= load[most]) return false;

  route_[hottest_slot[most]].store(static_cast<std::uint8_t>(least), kRelaxed);
  rebalances_.fetch_add(1, kRelaxed);
  return true;
}

std::size_t ShardedTuningService::resolved_worker_budget() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->worker_count();
  return total;
}

ServiceStats::Counters ShardedTuningService::endpoint_counters(Endpoint endpoint) const {
  ServiceStats::Counters sum;
  for (const auto& shard : shards_) sum.merge(shard->stats().counters(endpoint));
  return sum;
}

ServiceStats::Counters ShardedTuningService::merged_totals() const {
  ServiceStats::Counters sum;
  for (const auto& shard : shards_) sum.merge(shard->stats().totals());
  return sum;
}

ServiceStats::RetrainCounters ShardedTuningService::retrain_counters() const {
  ServiceStats::RetrainCounters sum;
  for (const auto& shard : shards_) {
    const auto per = shard->stats().retrain_counters();
    sum.runs += per.runs;
    sum.coalesced += per.coalesced;
    sum.rejected += per.rejected;
    sum.cancelled += per.cancelled;
  }
  return sum;
}

double ShardedTuningService::endpoint_latency_quantile(Endpoint endpoint, double q) const {
  auto agg = router_stats_.endpoint_aggregate(endpoint);
  for (const auto& shard : shards_) agg.merge(shard->stats().endpoint_aggregate(endpoint));
  return agg.latency.quantile(q);
}

double ShardedTuningService::mean_batch_size() const {
  // Weight each shard's mean by its batch count: total predicted rows over
  // total batches, same definition as the single-service counter.
  double rows = 0.0;
  double batches = 0.0;
  for (const auto& shard : shards_) {
    const auto n = static_cast<double>(shard->stats().batches());
    rows += shard->stats().mean_batch_size() * n;
    batches += n;
  }
  return batches > 0.0 ? rows / batches : 0.0;
}

double ShardedTuningService::mean_retrain_latency_us() const {
  double total = 0.0;
  double runs = 0.0;
  for (const auto& shard : shards_) {
    const auto n = static_cast<double>(shard->stats().retrain_counters().runs);
    total += shard->stats().mean_retrain_latency_us() * n;
    runs += n;
  }
  return runs > 0.0 ? total / runs : 0.0;
}

Table ShardedTuningService::stats_table() const {
  std::vector<ServiceStats::EndpointAggregate> aggs;
  aggs.reserve(kEndpointCount);
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const auto endpoint = static_cast<Endpoint>(i);
    // The router stats object contributes the wire-side view (and zeros for
    // the request-path counters it never records).
    auto agg = router_stats_.endpoint_aggregate(endpoint);
    for (const auto& shard : shards_) agg.merge(shard->stats().endpoint_aggregate(endpoint));
    aggs.push_back(std::move(agg));
  }
  return ServiceStats::table_of(aggs);
}

}  // namespace rafiki::serve
