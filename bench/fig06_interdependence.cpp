// Figure 6 + Section 4.6: interdependency between Compaction Method (CM) and
// Concurrent Writes (CW). The paper's observation: the effect of changing CW
// depends on which compaction strategy is active (their cells: CW 16->32
// helps SizeTiered by ~30% but barely moves Leveled; CW 32->64 costs Leveled
// ~12.7% but barely moves SizeTiered) — so a greedy one-parameter-at-a-time
// sweep cannot find the optimum. We reproduce the cross at the write-leaning
// workload where the simulator's CW response is richest and quantify the
// interaction, then demonstrate the greedy-vs-GA consequence on the measured
// store under an equal evaluation budget.
#include <cstdio>

#include "bench/common.h"
#include "collect/runner.h"
#include "opt/baselines.h"
#include "opt/ga.h"

using namespace rafiki;

int main() {
  collect::MeasureOptions measure = benchutil::paper_options().collect.measure;
  measure.seed = 661;
  const double kReadRatio = 0.1;
  auto measure_config = [&](const engine::Config& config) {
    auto workload = workload::WorkloadSpec::with_read_ratio(kReadRatio);
    return collect::measure_throughput(config, workload, measure);
  };

  const int cw_levels[] = {16, 32, 64, 96};
  Table fig({"Compaction Method", "CW=16", "CW=32", "CW=64", "CW=96",
             "effect 16->32", "effect 32->64"});
  double effect[2][2];
  for (int cm : {0, 1}) {
    double tput[4];
    int i = 0;
    for (int cw : cw_levels) {
      tput[i++] = measure_config(engine::Config::defaults()
                                     .with(engine::ParamId::kCompactionMethod, cm)
                                     .with(engine::ParamId::kConcurrentWrites, cw));
    }
    effect[cm][0] = 100.0 * (tput[1] - tput[0]) / tput[0];
    effect[cm][1] = 100.0 * (tput[2] - tput[1]) / tput[1];
    fig.add_row({cm ? "Leveled" : "SizeTiered", Table::ops(tput[0]), Table::ops(tput[1]),
                 Table::ops(tput[2]), Table::ops(tput[3]), Table::pct(effect[cm][0]),
                 Table::pct(effect[cm][1])});
  }
  benchutil::emit(fig, "Figure 6: CM x CW interdependency (RR=10%)");
  benchutil::note("the sign of the CW steps flips within each row, and the step sizes "
                  "depend on CM:\nno single CW value is optimal for both strategies.");

  // The consequence (Section 4.6): greedy per-parameter tuning vs GA on the
  // *measured* store over the key-parameter space, equal evaluation budgets.
  std::vector<opt::Dimension> dims;
  for (auto id : engine::key_params()) {
    const auto& spec = engine::param_spec(id);
    dims.push_back({std::string(spec.name),
                    spec.type != engine::ParamType::kReal, spec.lo, spec.hi});
  }
  const opt::SearchSpace space(std::move(dims));
  const auto objective = [&](std::span<const double> point) {
    return measure_config(
        engine::Config::from_vector(engine::key_params(), {point.begin(), point.end()}));
  };
  const auto greedy = opt::greedy_search(
      space, objective, engine::Config::defaults().vector_for(engine::key_params()), 5, 2);
  // The GA needs a real evaluation budget to exploit interdependencies —
  // which is exactly why Rafiki runs it against the surrogate, where an
  // evaluation costs microseconds instead of a 7-minute live benchmark
  // (Section 4.8). Here we grant that budget against the simulator directly.
  const auto ga = opt::ga_optimize(space, objective, benchutil::paper_options().ga);

  Table consequence({"strategy", "best measured ops/s", "evaluations",
                     "equivalent live-benchmark time"});
  auto live_hours = [](std::size_t evals) {
    return Table::num(static_cast<double>(evals) * 7.0 / 60.0, 1) + " h";
  };
  consequence.add_row({"greedy one-at-a-time", Table::ops(greedy.best_fitness),
                       std::to_string(greedy.evaluations), live_hours(greedy.evaluations)});
  consequence.add_row({"genetic algorithm", Table::ops(ga.best_fitness),
                       std::to_string(ga.evaluations), live_hours(ga.evaluations)});
  benchutil::emit(consequence, "Greedy vs GA on the live store (RR=10%)");
  benchutil::note("the GA's budget is only affordable against the surrogate — "
                  "which is Rafiki's design point.");

  const double interaction =
      std::abs(effect[0][0] - effect[1][0]) + std::abs(effect[0][1] - effect[1][1]);
  benchutil::compare("CW effect depends on CM (step deltas)",
                     "ST 16->32 +30% vs L ~0; L 32->64 -12.7% vs ST ~0",
                     "16->32: ST " + Table::pct(effect[0][0]) + " vs L " +
                         Table::pct(effect[1][0]) + "; 32->64: ST " +
                         Table::pct(effect[0][1]) + " vs L " + Table::pct(effect[1][1]));
  benchutil::compare("interaction magnitude (sum |step deltas|)", "tens of percent",
                     Table::pct(interaction));
  benchutil::compare("non-monotone CW response (greedy hazard)", "yes",
                     (effect[0][0] > 0) != (effect[0][1] > 0) ? "yes (sign flip)" : "NO");
  benchutil::compare("GA (full budget) vs greedy", "GA >= greedy",
                     Table::pct(100.0 * (ga.best_fitness - greedy.best_fitness) /
                                greedy.best_fitness));
  return 0;
}
