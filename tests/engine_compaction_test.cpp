#include <gtest/gtest.h>

#include "engine/compaction.h"

namespace rafiki::engine {
namespace {

SSTable make_table(std::uint32_t id, std::int64_t lo, std::int64_t hi, std::size_t keys,
                   int level = 0) {
  std::vector<std::int64_t> ks;
  for (std::size_t i = 0; i < keys; ++i) {
    ks.push_back(lo + static_cast<std::int64_t>(i) * (hi - lo) /
                          static_cast<std::int64_t>(keys ? keys : 1));
  }
  ks.push_back(hi);
  return SSTable(id, std::move(ks), 100.0, 0.01, level);
}

TEST(SizeTiered, TriggersAtMinThreshold) {
  SizeTieredPlanner planner(4, 32);
  std::vector<SSTable> tables;
  for (std::uint32_t i = 0; i < 3; ++i) tables.push_back(make_table(i, 0, 100, 50));
  EXPECT_FALSE(planner.plan(tables, {}).has_value());
  tables.push_back(make_table(3, 0, 100, 50));
  const auto plan = planner.plan(tables, {});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->input_ids.size(), 4u);
  EXPECT_EQ(plan->output_level, 0);
}

TEST(SizeTiered, BucketsBySimilarSize) {
  SizeTieredPlanner planner(4, 32);
  std::vector<SSTable> tables;
  // Four small tables and four 20x larger ones: only same-size buckets merge.
  for (std::uint32_t i = 0; i < 4; ++i) tables.push_back(make_table(i, 0, 100, 50));
  for (std::uint32_t i = 4; i < 8; ++i) tables.push_back(make_table(i, 0, 100, 1000));
  const auto plan = planner.plan(tables, {});
  ASSERT_TRUE(plan.has_value());
  std::size_t small = 0, large = 0;
  for (auto id : plan->input_ids) (id < 4 ? small : large) += 1;
  EXPECT_TRUE(small == 0 || large == 0) << "mixed bucket merged";
  EXPECT_EQ(plan->input_ids.size(), 4u);
}

TEST(SizeTiered, RespectsMaxThreshold) {
  SizeTieredPlanner planner(4, 6);
  std::vector<SSTable> tables;
  for (std::uint32_t i = 0; i < 10; ++i) tables.push_back(make_table(i, 0, 100, 50));
  const auto plan = planner.plan(tables, {});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->input_ids.size(), 6u);
}

TEST(SizeTiered, SkipsBusyTables) {
  SizeTieredPlanner planner(4, 32);
  std::vector<SSTable> tables;
  for (std::uint32_t i = 0; i < 4; ++i) tables.push_back(make_table(i, 0, 100, 50));
  BusySet busy = {0};
  EXPECT_FALSE(planner.plan(tables, busy).has_value());
}

TEST(Leveled, L0PromotionIncludesOverlappingL1) {
  LeveledPlanner planner(/*sstable_target_bytes=*/100.0 * 60, /*l0_trigger=*/4);
  std::vector<SSTable> tables;
  for (std::uint32_t i = 0; i < 4; ++i) tables.push_back(make_table(i, 0, 1000, 50, 0));
  tables.push_back(make_table(10, 0, 500, 50, 1));     // overlaps L0 range
  tables.push_back(make_table(11, 2000, 3000, 50, 1)); // outside L0 range
  const auto plan = planner.plan(tables, {});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->output_level, 1);
  EXPECT_NE(std::find(plan->input_ids.begin(), plan->input_ids.end(), 10u),
            plan->input_ids.end());
  EXPECT_EQ(std::find(plan->input_ids.begin(), plan->input_ids.end(), 11u),
            plan->input_ids.end());
}

TEST(Leveled, DefersL0WhenOverlappingL1Busy) {
  LeveledPlanner planner(100.0 * 60, 4);
  std::vector<SSTable> tables;
  for (std::uint32_t i = 0; i < 4; ++i) tables.push_back(make_table(i, 0, 1000, 50, 0));
  tables.push_back(make_table(10, 0, 500, 50, 1));
  BusySet busy = {10};
  EXPECT_FALSE(planner.plan(tables, busy).has_value());
}

TEST(Leveled, OverflowPromotesToNextLevel) {
  // Level 1 target is 10 tables' worth; stuff it beyond target.
  const double table_bytes = 100.0 * 60;
  LeveledPlanner planner(table_bytes, 4);
  std::vector<SSTable> tables;
  std::uint32_t id = 0;
  for (int i = 0; i < 14; ++i) {
    tables.push_back(make_table(id++, i * 100, i * 100 + 90, 60, 1));
  }
  tables.push_back(make_table(id++, 0, 500, 60, 2));
  const auto plan = planner.plan(tables, {});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->output_level, 2);
}

TEST(Leveled, LevelTargetsGrowTenfold) {
  LeveledPlanner planner(1000.0);
  EXPECT_DOUBLE_EQ(planner.level_target_bytes(1), 10000.0);
  EXPECT_DOUBLE_EQ(planner.level_target_bytes(2), 100000.0);
  EXPECT_DOUBLE_EQ(planner.level_target_bytes(3), 1000000.0);
}

TEST(Leveled, InvariantCheckerDetectsOverlap) {
  std::vector<SSTable> good;
  good.push_back(make_table(1, 0, 100, 10, 1));
  good.push_back(make_table(2, 200, 300, 10, 1));
  good.push_back(make_table(3, 0, 300, 10, 0));  // L0 may overlap anything
  EXPECT_TRUE(leveled_invariant_holds(good));

  std::vector<SSTable> bad;
  bad.push_back(make_table(1, 0, 100, 10, 1));
  bad.push_back(make_table(2, 50, 300, 10, 1));
  EXPECT_FALSE(leveled_invariant_holds(bad));
}

}  // namespace
}  // namespace rafiki::engine
