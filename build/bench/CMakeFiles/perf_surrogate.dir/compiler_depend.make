# Empty compiler generated dependencies file for perf_surrogate.
# This may be replaced when dependencies are built.
