#include "ml/mlp.h"

#include <cmath>
#include <stdexcept>

namespace rafiki::ml {

Mlp::Mlp(std::vector<std::size_t> layer_sizes) : layers_(std::move(layer_sizes)) {
  if (layers_.size() < 2) throw std::invalid_argument("Mlp: need at least two layers");
  if (layers_.back() != 1) throw std::invalid_argument("Mlp: single-output networks only");
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    LayerView view;
    view.in = layers_[l];
    view.out = layers_[l + 1];
    view.w_offset = offset;
    offset += view.in * view.out;
    view.b_offset = offset;
    offset += view.out;
    views_.push_back(view);
  }
  params_.assign(offset, 0.0);
}

void Mlp::set_params(std::span<const double> params) {
  if (params.size() != params_.size()) throw std::invalid_argument("Mlp::set_params: size");
  std::copy(params.begin(), params.end(), params_.begin());
}

void Mlp::randomize(Rng& rng) {
  for (const auto& view : views_) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(view.in));
    for (std::size_t i = 0; i < view.in * view.out; ++i) {
      params_[view.w_offset + i] = rng.uniform(-scale, scale);
    }
    for (std::size_t i = 0; i < view.out; ++i) {
      params_[view.b_offset + i] = rng.uniform(-0.1, 0.1);
    }
  }
}

double Mlp::forward(std::span<const double> x) const {
  if (x.size() != layers_.front()) throw std::invalid_argument("Mlp::forward: input size");
  std::vector<double> a(x.begin(), x.end());
  std::vector<double> z;
  for (std::size_t l = 0; l < views_.size(); ++l) {
    const auto& view = views_[l];
    z.assign(view.out, 0.0);
    for (std::size_t o = 0; o < view.out; ++o) {
      double s = params_[view.b_offset + o];
      const double* w = &params_[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) s += w[i] * a[i];
      z[o] = l + 1 < views_.size() ? std::tanh(s) : s;  // linear output layer
    }
    a = z;
  }
  return a[0];
}

double Mlp::forward_with_gradient(std::span<const double> x, std::span<double> grad) const {
  if (x.size() != layers_.front()) throw std::invalid_argument("Mlp: input size");
  if (grad.size() != params_.size()) throw std::invalid_argument("Mlp: grad size");

  // Forward pass, caching activations per layer.
  std::vector<std::vector<double>> acts;
  acts.emplace_back(x.begin(), x.end());
  for (std::size_t l = 0; l < views_.size(); ++l) {
    const auto& view = views_[l];
    std::vector<double> a(view.out);
    for (std::size_t o = 0; o < view.out; ++o) {
      double s = params_[view.b_offset + o];
      const double* w = &params_[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) s += w[i] * acts[l][i];
      a[o] = l + 1 < views_.size() ? std::tanh(s) : s;
    }
    acts.push_back(std::move(a));
  }

  // Backward pass: delta = d(output)/d(pre-activation of layer l).
  std::vector<double> delta{1.0};  // linear output unit
  for (std::size_t li = views_.size(); li-- > 0;) {
    const auto& view = views_[li];
    const auto& a_in = acts[li];
    for (std::size_t o = 0; o < view.out; ++o) {
      grad[view.b_offset + o] = delta[o];
      double* g = &grad[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) g[i] = delta[o] * a_in[i];
    }
    if (li == 0) break;
    // Propagate through the weights and the tanh of the previous layer
    // (acts[li] holds tanh(z) so tanh' = 1 - a^2).
    std::vector<double> prev(view.in, 0.0);
    for (std::size_t o = 0; o < view.out; ++o) {
      const double* w = &params_[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) prev[i] += w[i] * delta[o];
    }
    for (std::size_t i = 0; i < view.in; ++i) {
      prev[i] *= 1.0 - acts[li][i] * acts[li][i];
    }
    delta = std::move(prev);
  }
  return acts.back()[0];
}

void Normalizer::fit(std::span<const double> values) {
  lo_.assign(1, values.empty() ? 0.0 : values[0]);
  hi_.assign(1, values.empty() ? 1.0 : values[0]);
  for (double v : values) {
    lo_[0] = std::min(lo_[0], v);
    hi_[0] = std::max(hi_[0], v);
  }
}

void Normalizer::fit_columns(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return;
  const std::size_t n = rows.front().size();
  lo_.assign(n, rows.front()[0]);
  hi_.assign(n, rows.front()[0]);
  for (std::size_t c = 0; c < n; ++c) {
    lo_[c] = hi_[c] = rows.front()[c];
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < n; ++c) {
      lo_[c] = std::min(lo_[c], row[c]);
      hi_[c] = std::max(hi_[c], row[c]);
    }
  }
}

double Normalizer::map(double v, std::size_t feature) const {
  const double lo = lo_.at(feature);
  const double hi = hi_.at(feature);
  if (hi <= lo) return 0.0;
  return 2.0 * (v - lo) / (hi - lo) - 1.0;
}

double Normalizer::unmap(double v, std::size_t feature) const {
  const double lo = lo_.at(feature);
  const double hi = hi_.at(feature);
  return lo + (v + 1.0) * 0.5 * (hi - lo);
}

std::vector<double> Normalizer::map_row(std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = map(row[c], c);
  return out;
}

}  // namespace rafiki::ml
