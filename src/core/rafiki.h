// The Rafiki middleware (Figure 1): the end-to-end pipeline of
//   1. workload characterization          (workload/characterize.h)
//   2. important-parameter identification (one-at-a-time ANOVA)
//   3. data collection                    (collect/)
//   4. surrogate modelling                (ml/ DNN ensemble)
//   5. online configuration optimization  (opt/ genetic algorithm)
// This class owns stages 2-5; stage 1 is a pure function of the trace and is
// consumed through WorkloadSpec.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collect/dataset.h"
#include "engine/config.h"
#include "ml/anova.h"
#include "ml/ensemble.h"
#include "opt/ga.h"
#include "opt/space.h"
#include "tune/screen.h"
#include "tune/subspace.h"
#include "workload/spec.h"

namespace rafiki::core {

struct RafikiOptions {
  /// The benchmarked workload grid: 11 read ratios in 10% steps (Section 4.2).
  std::vector<double> workload_grid = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  std::size_t n_configs = 20;
  workload::WorkloadSpec base_workload{};
  collect::CollectOptions collect{};

  /// ANOVA screen settings: measurement replicates per parameter level, and
  /// the representative workload it runs against.
  std::size_t anova_repeats = 3;
  double anova_read_ratio = 0.45;

  /// Number of key parameters; 0 selects automatically with the paper's
  /// "distinct drop in variance" heuristic.
  std::size_t key_param_count = 5;

  ml::EnsembleOptions ensemble{};
  opt::GaOptions ga{};

  /// Risk-aversion of the configuration search: when > 0 the GA maximizes
  /// the ensemble's lower confidence bound (mean − risk_aversion × member
  /// spread) instead of the raw mean. The argmax of a noisy surrogate
  /// systematically overestimates — the search gravitates to wherever the
  /// model happens to err upward — and the penalty steers it toward
  /// configurations the ensemble members agree on. Matters most for
  /// high-dimensional surrogates (dynamic_knobs trains over the full
  /// registry); 0 keeps the paper's raw-mean fitness.
  double ga_risk_aversion = 0.0;

  /// Target the ScyllaDB engine model; parameter selection then applies the
  /// Section 4.10 procedure (strip ignored params, refill by variance).
  bool scylla = false;

  /// Online significance-aware knob selection (src/tune/). When set, the
  /// surrogate is trained over the FULL parameter registry — key_params()
  /// becomes all registered knobs in registry order, so a later re-cut of
  /// the active set never invalidates the trained model — while optimize()
  /// searches only the subspace the tune::ActiveSubspace currently holds,
  /// with inactive knobs pinned at their best-known values. The subspace is
  /// seeded from the offline ANOVA sweep and then follows streamed
  /// (workload, config, throughput) observations via observe_sample() /
  /// rescreen(). `key_param_count` is ignored in this mode.
  bool dynamic_knobs = false;
  tune::ScreenOptions screen{};
  tune::SubspaceOptions subspace{};
};

struct ParamRanking {
  engine::ParamId id{};
  double score = 0.0;  ///< stddev of per-level mean throughput (Figure 5)
  double f_statistic = 0.0;
  double p_value = 1.0;
};

class Rafiki {
 public:
  explicit Rafiki(RafikiOptions options = RafikiOptions{});
  ~Rafiki();
  Rafiki(Rafiki&&) noexcept;
  Rafiki& operator=(Rafiki&&) noexcept;

  /// Stage 2a: one-at-a-time sweep + ANOVA over every registered parameter,
  /// sorted by descending score. Results are cached.
  const std::vector<ParamRanking>& rank_parameters();

  /// Stage 2b: choose the key parameters from the ranking (ScyllaDB variant
  /// strips internally-ignored parameters first). Cached.
  const std::vector<engine::ParamId>& select_key_params();

  /// Bypass the ANOVA stage with a known-good selection (e.g. the paper's
  /// five), useful for tests and cheaper benches.
  void set_key_params(std::vector<engine::ParamId> params);

  /// The currently selected key parameters (empty until selected or set);
  /// the serve layer snapshots this alongside the trained ensemble.
  const std::vector<engine::ParamId>& key_params() const noexcept { return key_params_; }

  /// Stage 3: benchmark the workload grid against the sampled configs.
  collect::Dataset collect();

  /// Stage 4: fit the surrogate ensemble on a dataset.
  void train(const collect::Dataset& dataset);
  bool trained() const noexcept { return surrogate_.trained(); }
  const ml::SurrogateEnsemble& surrogate() const noexcept { return surrogate_; }

  /// Surrogate prediction for (workload, configuration) — Equation (2).
  double predict(double read_ratio, const engine::Config& config) const;

  /// Batched variant: one ensemble evaluation for many configurations at a
  /// fixed workload. Bit-for-bit identical to predict() per row.
  std::vector<double> predict_batch(double read_ratio,
                                    const std::vector<engine::Config>& configs) const;

  struct OptimizeResult {
    engine::Config config;
    double predicted_throughput = 0.0;
    std::size_t surrogate_evaluations = 0;
    double wall_seconds = 0.0;
    /// Best feasible predicted throughput per GA generation (the search's
    /// convergence trace); the knob-ablation bench derives its
    /// evaluations-to-quality metric from it.
    std::vector<double> best_history;
    /// Best configuration per GA generation, parallel to best_history.
    /// Entries where best_history is -inf (no feasible individual yet) hold
    /// the default config as a placeholder — check best_history first.
    std::vector<engine::Config> config_history;
  };
  /// Stage 5: GA search over the key-parameter space against the surrogate.
  OptimizeResult optimize(double read_ratio) const;

  /// Search space spanned by the key parameters.
  opt::SearchSpace key_space() const;

  // --- dynamic knob selection (options.dynamic_knobs) -----------------------
  // These methods are const because the dynamic knob state is side-car state
  // of the pipeline (the serve layer holds a const Rafiki&); all of them are
  // thread-safe and no-ops / empties on a static-mode instance.

  bool dynamic() const noexcept { return dynamic_ != nullptr; }

  /// Folds one observed (workload, configuration, throughput) sample into
  /// the streaming significance screen. Cheap (no model evaluation); safe to
  /// call from measurement paths.
  void observe_sample(double read_ratio, const engine::Config& config,
                      double throughput) const;

  /// Re-cuts the active knob set from the current blended ranking. Returns
  /// true when the active set actually changed. Intended to run on the
  /// background optimize path (OnlineTuner::run_optimize / RetrainWorker),
  /// never on a request thread.
  bool rescreen() const;

  /// The knobs the GA currently searches: the active subspace in dynamic
  /// mode, key_params() otherwise.
  std::vector<engine::ParamId> active_params() const;

  /// Current blended significance ranking (empty in static mode).
  std::vector<tune::KnobScore> knob_ranking() const;

  /// Pins the active set explicitly (freezing it against re-cuts) — the
  /// ablation arms and tests. Static-mode fallback: set_key_params.
  void set_active_params(std::vector<engine::ParamId> params);

  /// Telemetry for the dynamic knob layer (all zero in static mode).
  struct TuneStats {
    std::size_t observations = 0;  ///< samples folded into the screen
    std::size_t recuts = 0;        ///< re-cut attempts
    std::size_t changes = 0;       ///< re-cuts that changed the active set
    std::size_t active = 0;        ///< current active-set size
  };
  TuneStats tune_stats() const;

  const RafikiOptions& options() const noexcept { return options_; }

 private:
  struct DynamicKnobs;

  void ensure_full_key_params();

  OptimizeResult optimize_dynamic(double read_ratio) const;

  /// GA fitness for a batch of feature rows: the ensemble mean, or its lower
  /// confidence bound when ga_risk_aversion is set.
  std::vector<double> fitness_batch(const std::vector<std::vector<double>>& rows) const;

  RafikiOptions options_;
  std::vector<ParamRanking> ranking_;
  std::vector<engine::ParamId> key_params_;
  ml::SurrogateEnsemble surrogate_;
  /// Knob screen + active subspace, null in static mode. unique_ptr keeps
  /// Rafiki movable and — deliberately — lets the dynamic state mutate
  /// through the const references the serve layer holds.
  std::unique_ptr<DynamicKnobs> dynamic_;
};

}  // namespace rafiki::core
