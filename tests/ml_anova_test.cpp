#include "ml/anova.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rafiki::ml {
namespace {

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(regularized_incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(regularized_incomplete_beta(2, 2, 0.4), 0.16 * (3 - 0.8), 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  const double lhs = regularized_incomplete_beta(3.5, 1.25, 0.6);
  const double rhs = 1.0 - regularized_incomplete_beta(1.25, 3.5, 0.4);
  EXPECT_NEAR(lhs, rhs, 1e-10);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(FDistribution, TailProbabilities) {
  // F(1, 1): P(F > 1) = 0.5 exactly.
  EXPECT_NEAR(f_distribution_sf(1.0, 1, 1), 0.5, 1e-9);
  // Critical value: F(2, 10) upper 5% point is about 4.10.
  EXPECT_NEAR(f_distribution_sf(4.10, 2, 10), 0.05, 0.005);
  // Large F -> vanishing tail.
  EXPECT_LT(f_distribution_sf(100.0, 3, 20), 1e-8);
  EXPECT_DOUBLE_EQ(f_distribution_sf(0.0, 3, 20), 1.0);
}

TEST(OneWayAnova, DetectsRealGroupDifferences) {
  Rng rng(5);
  std::vector<std::vector<double>> groups(3);
  const double means[] = {100.0, 130.0, 160.0};
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 12; ++i) groups[g].push_back(rng.gaussian(means[g], 5.0));
  }
  const auto result = one_way_anova(groups);
  EXPECT_GT(result.f_statistic, 10.0);
  EXPECT_LT(result.p_value, 0.001);
  EXPECT_EQ(result.df_between, 2u);
  EXPECT_EQ(result.df_within, 33u);
}

TEST(OneWayAnova, AcceptsNullWhenGroupsIdentical) {
  Rng rng(9);
  std::vector<std::vector<double>> groups(4);
  for (auto& group : groups) {
    for (int i = 0; i < 10; ++i) group.push_back(rng.gaussian(50.0, 8.0));
  }
  const auto result = one_way_anova(groups);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(OneWayAnova, DegenerateInputsAreSafe) {
  EXPECT_DOUBLE_EQ(one_way_anova({}).f_statistic, 0.0);
  EXPECT_DOUBLE_EQ(one_way_anova({{1.0, 2.0}}).f_statistic, 0.0);
  // Zero within-group variance with distinct means: infinite F, p = 0.
  const auto result = one_way_anova({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_TRUE(std::isinf(result.f_statistic));
  EXPECT_DOUBLE_EQ(result.p_value, 0.0);
}

TEST(LevelMeanStddev, MatchesHandComputation) {
  // Group means: 10, 20, 30 -> sample stddev = 10.
  const double score =
      level_mean_stddev({{9.0, 11.0}, {19.0, 21.0}, {29.0, 31.0}});
  EXPECT_NEAR(score, 10.0, 1e-12);
}

TEST(DistinctDrop, FindsTheLargestGap) {
  std::vector<AnovaRanking> ranking = {
      {"a", 110.0, 0, 0}, {"b", 90.0, 0, 0}, {"c", 70.0, 0, 0},
      {"d", 60.0, 0, 0},  {"e", 55.0, 0, 0}, {"f", 11.0, 0, 0},  // 5x drop here
      {"g", 9.0, 0, 0},   {"h", 7.0, 0, 0},
  };
  EXPECT_EQ(distinct_drop_cutoff(ranking, 2, 8), 5u);
}

TEST(DistinctDrop, RespectsBounds) {
  std::vector<AnovaRanking> ranking = {
      {"a", 100.0, 0, 0}, {"b", 1.0, 0, 0}, {"c", 0.9, 0, 0}, {"d", 0.8, 0, 0}};
  // The natural cut is k=1, but min_k forces at least 2.
  EXPECT_GE(distinct_drop_cutoff(ranking, 2, 3), 2u);
  EXPECT_LE(distinct_drop_cutoff(ranking, 2, 3), 3u);
}

TEST(DistinctDrop, AllEqualScoresFallBackToMinK) {
  // Every consecutive ratio is 1.0, so no drop is "distinct"; the heuristic
  // keeps the smallest allowed set rather than inventing a gap.
  std::vector<AnovaRanking> ranking(7, {"x", 5.0, 0, 0});
  EXPECT_EQ(distinct_drop_cutoff(ranking, 3, 6), 3u);
}

TEST(DistinctDrop, TiesAtTheCutDoNotSplitAGroup) {
  // A tied plateau right after a real gap: the cut lands on the gap, and the
  // ties below it stay together (out of the set).
  std::vector<AnovaRanking> ranking = {
      {"a", 90.0, 0, 0}, {"b", 88.0, 0, 0}, {"c", 86.0, 0, 0},
      {"d", 10.0, 0, 0}, {"e", 10.0, 0, 0}, {"f", 10.0, 0, 0},
  };
  EXPECT_EQ(distinct_drop_cutoff(ranking, 2, 5), 3u);
}

TEST(DistinctDrop, ShortRankingsReturnTheirSize) {
  std::vector<AnovaRanking> ranking = {{"a", 9.0, 0, 0}, {"b", 3.0, 0, 0}};
  // size <= min_k: nothing to cut, keep everything.
  EXPECT_EQ(distinct_drop_cutoff(ranking, 3, 8), 2u);
  EXPECT_EQ(distinct_drop_cutoff({}, 3, 8), 0u);
}

TEST(DistinctDrop, ResultIsClampedToTheRequestedRange) {
  // The by-far largest drop sits at k=6, outside [2, 4]: the cut must still
  // land inside the range (at the largest in-range drop, k=2).
  std::vector<AnovaRanking> ranking = {
      {"a", 100.0, 0, 0}, {"b", 98.0, 0, 0},  {"c", 49.0, 0, 0}, {"d", 48.0, 0, 0},
      {"e", 47.0, 0, 0},  {"f", 46.0, 0, 0},  {"g", 0.1, 0, 0},  {"h", 0.05, 0, 0},
  };
  const auto k = distinct_drop_cutoff(ranking, 2, 4);
  EXPECT_EQ(k, 2u);
  // max_k also clamps against the ranking length itself.
  EXPECT_LE(distinct_drop_cutoff(ranking, 2, 100), ranking.size());
  // A zero score below the cut yields an infinite ratio and still respects
  // the bounds.
  std::vector<AnovaRanking> with_zero = {
      {"a", 10.0, 0, 0}, {"b", 5.0, 0, 0}, {"c", 0.0, 0, 0}, {"d", 0.0, 0, 0}};
  EXPECT_EQ(distinct_drop_cutoff(with_zero, 2, 3), 2u);
}

}  // namespace
}  // namespace rafiki::ml
