#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ml/activation.h"

#include <gtest/gtest.h>

namespace rafiki::ml {
namespace {

TEST(Mlp, ParamCountMatchesTopology) {
  Mlp net({6, 14, 4, 1});
  // (6*14 + 14) + (14*4 + 4) + (4*1 + 1) = 98 + 60 + 5
  EXPECT_EQ(net.param_count(), 163u);
  EXPECT_EQ(net.input_size(), 6u);
}

TEST(Mlp, RejectsMultiOutput) {
  EXPECT_THROW(Mlp({3, 4, 2}), std::invalid_argument);
  EXPECT_THROW(Mlp({3}), std::invalid_argument);
}

TEST(Mlp, ZeroWeightsGiveZeroOutput) {
  Mlp net({3, 5, 1});
  EXPECT_DOUBLE_EQ(net.forward(std::vector<double>{0.3, -0.2, 0.9}), 0.0);
}

TEST(Mlp, ForwardMatchesHandComputedTinyNet) {
  // 1 input -> 1 tanh hidden -> 1 linear output.
  Mlp net({1, 1, 1});
  // params order: W0 (1), b0 (1), W1 (1), b1 (1)
  net.set_params(std::vector<double>{2.0, 0.5, 3.0, -1.0});
  const double x = 0.25;
  // The hidden activation is fast_tanh (|err| vs tanh <= ~3.5e-9), so the
  // exact hand computation uses it too; the std::tanh reference bounds the
  // total drift the approximation introduces.
  const double expected_exact = 3.0 * fast_tanh(2.0 * x + 0.5) - 1.0;
  const double expected_tanh = 3.0 * std::tanh(2.0 * x + 0.5) - 1.0;
  EXPECT_EQ(net.forward(std::vector<double>{x}), expected_exact);
  EXPECT_NEAR(net.forward(std::vector<double>{x}), expected_tanh, 3.0 * 5e-9);
}

TEST(FastTanh, TracksStdTanhWithinFiveNanos) {
  // Dense sweep across the reduction boundaries and the saturation clamp.
  double max_abs_err = 0.0;
  for (int i = -40000; i <= 40000; ++i) {
    const double x = static_cast<double>(i) * 1e-3;
    max_abs_err = std::max(max_abs_err, std::abs(fast_tanh(x) - std::tanh(x)));
  }
  EXPECT_LT(max_abs_err, 5e-9);
  EXPECT_EQ(fast_tanh(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fast_tanh(100.0), 1.0);
  EXPECT_DOUBLE_EQ(fast_tanh(-100.0), -1.0);
}

TEST(FastTanh, BlockMatchesScalarBitForBit) {
  // Odd length exercises both the SIMD body and the scalar tail.
  std::vector<double> values(1031);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = -8.0 + 16.0 * static_cast<double>(i) / static_cast<double>(values.size());
  }
  std::vector<double> expected = values;
  for (double& v : expected) v = fast_tanh(v);
  fast_tanh_block(values.data(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], expected[i]) << "element " << i;
  }
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  Mlp net({3, 5, 2, 1});
  Rng rng(42);
  net.randomize(rng);
  const std::vector<double> x = {0.4, -0.7, 0.1};

  std::vector<double> grad(net.param_count());
  const double out = net.forward_with_gradient(x, grad);
  EXPECT_NEAR(out, net.forward(x), 1e-12);

  const double eps = 1e-6;
  std::vector<double> params(net.params().begin(), net.params().end());
  for (std::size_t j = 0; j < params.size(); ++j) {
    auto perturbed = params;
    perturbed[j] += eps;
    net.set_params(perturbed);
    const double up = net.forward(x);
    perturbed[j] -= 2 * eps;
    net.set_params(perturbed);
    const double down = net.forward(x);
    net.set_params(params);
    const double fd = (up - down) / (2 * eps);
    EXPECT_NEAR(grad[j], fd, 1e-5) << "param " << j;
  }
}

TEST(Mlp, RandomizeIsSeedDeterministic) {
  Mlp a({4, 6, 1}), b({4, 6, 1});
  Rng ra(7), rb(7);
  a.randomize(ra);
  b.randomize(rb);
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(a.forward(x), b.forward(x));
}

TEST(Normalizer, MapsToMinusOneOne) {
  Normalizer norm;
  norm.fit_columns({{0.0, 10.0}, {4.0, 30.0}});
  EXPECT_DOUBLE_EQ(norm.map(0.0, 0), -1.0);
  EXPECT_DOUBLE_EQ(norm.map(4.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm.map(2.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm.map(20.0, 1), 0.0);
  EXPECT_NEAR(norm.unmap(norm.map(3.3, 0), 0), 3.3, 1e-12);
}

TEST(Normalizer, DegenerateFeatureMapsToZero) {
  Normalizer norm;
  norm.fit_columns({{5.0}, {5.0}});
  EXPECT_DOUBLE_EQ(norm.map(5.0, 0), 0.0);
}

}  // namespace
}  // namespace rafiki::ml
