// Atomically-swapped publication slot for immutable artifacts. Readers grab
// a shared_ptr with a single atomic load — they never block behind a
// publisher holding a mutex, and whatever snapshot they grabbed stays alive
// (refcounted) for as long as they use it, however many swaps happen
// meanwhile. This is what lets a background retrain republish a new model
// version with zero downtime for in-flight requests.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

#include "util/sync.h"

// libstdc++'s lock-free std::atomic<shared_ptr> (_Sp_atomic) protects its
// internal pointer with a lock bit embedded in the refcount word; the mutual
// exclusion on the *slot word* is real, but the reader side is released with
// a relaxed store that TSan's happens-before machinery cannot see, so every
// concurrent get()/set() pair reports a false race inside the library. Under
// TSan we substitute a mutex-backed slot and keep the lock-free path
// everywhere else.
//
// Ordering audit (both paths publish with the same visibility guarantee):
//   * Lock-free path — set() stores with memory_order_release and get()
//     loads with memory_order_acquire. The pairing is load-bearing beyond
//     the slot pointer itself: it is what makes the pointee's fields (the
//     snapshot built and filled before set()) visible to a reader thread
//     that obtained the pointer, so neither side may be weakened to
//     relaxed. (The shared_ptr control block alone only orders the
//     refcount, not the payload writes.)
//   * TSan path — slot_ is GUARDED_BY(mutex_); the publisher's writes
//     happen-before mutex_.unlock() in set(), which synchronizes-with the
//     reader's mutex_.lock() in get(). A mutex release/acquire is at least
//     as strong as the store(release)/load(acquire) pairing it replaces, so
//     the two modes are semantically identical — the mutex slot is a TSan
//     visibility aid, not a weaker substitute.

#if defined(__SANITIZE_THREAD__)
#define RAFIKI_REGISTRY_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAFIKI_REGISTRY_TSAN 1
#endif
#endif

namespace rafiki::serve {

template <typename T>
class VersionedRegistry {
 public:
  /// Current value (may be null before the first publication). The returned
  /// shared_ptr pins that version for the caller's lifetime of use.
  std::shared_ptr<const T> get() const noexcept {
#if defined(RAFIKI_REGISTRY_TSAN)
    MutexLock lock(mutex_);
    return slot_;
#else
    return slot_.load(std::memory_order_acquire);
#endif
  }

  /// Atomically replaces the published value; concurrent readers keep
  /// whatever version they already hold.
  void set(std::shared_ptr<const T> value) noexcept {
#if defined(RAFIKI_REGISTRY_TSAN)
    MutexLock lock(mutex_);
    slot_ = std::move(value);
#else
    slot_.store(std::move(value), std::memory_order_release);
#endif
  }

 private:
#if defined(RAFIKI_REGISTRY_TSAN)
  mutable Mutex mutex_;
  std::shared_ptr<const T> slot_ GUARDED_BY(mutex_);
#else
  std::atomic<std::shared_ptr<const T>> slot_{};
#endif
};

}  // namespace rafiki::serve
