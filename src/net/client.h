// net::Client — a small blocking client for the tuning service's RPC
// front-end: connect/request timeouts, request pipelining (send many, wait by
// id, responses may arrive out of order), and typed wrappers for the three
// endpoints. One Client is one connection and is NOT thread-safe; use one
// instance per thread (bench/net_load's client fleet does exactly that).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/config.h"
#include "net/wire.h"
#include "serve/types.h"

namespace rafiki::net {

/// Transport-level outcome of a call, orthogonal to serve::Status (which
/// only exists once a response frame arrived).
enum class NetStatus : std::uint8_t {
  kOk = 0,
  kNotConnected,
  kConnectFailed,
  kSendFailed,
  /// No response within the request timeout. The connection stays open; a
  /// late response is still matched by a later wait()/call().
  kTimeout,
  kConnectionClosed,
  /// The byte stream violated the protocol (fatal decode on our side).
  kProtocolError,
  /// The server answered with an error frame; see CallResult::remote_error.
  kRemoteError,
};
inline constexpr std::size_t kNetStatusCount = 8;

const char* net_status_name(NetStatus status) noexcept;

struct CallResult {
  NetStatus net = NetStatus::kOk;
  /// Set when net == kRemoteError (the server's error-frame code).
  WireError remote_error = WireError::kNone;
  /// Valid when net == kOk.
  serve::Response response;
  /// Transport delivered a response and the service said kOk.
  bool ok() const noexcept { return net == NetStatus::kOk && response.ok(); }
};

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds request_timeout{5000};
  std::size_t max_payload = kDefaultMaxPayload;
  /// Tenant namespace stamped on every request the typed wrappers build
  /// (predict/optimize/observe_window). Raw send()/call() requests keep
  /// whatever tenant the caller set. 0 is the default namespace.
  serve::TenantId tenant = 0;
};

class Client {
 public:
  explicit Client(ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  NetStatus connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Pipelined send: writes the request frame and returns its id without
  /// waiting for the response. Returns 0 on failure (reason in *status).
  std::uint64_t send(const serve::Request& request, NetStatus* status = nullptr);
  /// Blocks until the response for `id` arrives (or the request timeout).
  CallResult wait(std::uint64_t id);
  /// send + wait.
  CallResult call(const serve::Request& request);

  // Typed wrappers for the three endpoints. Each stamps the configured
  // tenant (ClientOptions::tenant / set_tenant) on the request.
  CallResult predict(double read_ratio,
                     const engine::Config& config = engine::Config::defaults());
  CallResult optimize(double read_ratio);
  CallResult observe_window(double read_ratio);

  /// Switches the tenant namespace for subsequent typed-wrapper calls.
  void set_tenant(serve::TenantId tenant) noexcept { options_.tenant = tenant; }
  serve::TenantId tenant() const noexcept { return options_.tenant; }

 private:
  NetStatus read_some(std::chrono::steady_clock::time_point deadline);
  NetStatus drain_frames();
  /// Closes only the socket. Buffered frames and completed responses
  /// survive — a FIN often arrives in the same read batch as the last
  /// responses, and those must still be claimable by wait().
  void close_fd();

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  /// Responses that arrived while waiting for a different id.
  std::map<std::uint64_t, CallResult> completed_;
};

}  // namespace rafiki::net
