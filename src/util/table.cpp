#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rafiki {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::ops(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  std::string digits = buf;
  std::string out;
  const bool negative = !digits.empty() && digits.front() == '-';
  if (negative) digits.erase(digits.begin());
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string out = emit_row(headers_);
  std::string rule = "|";
  for (auto w : widths) {
    rule.append(w + 2, '-');
    rule += '|';
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace rafiki
