// Tuning ScyllaDB (Section 4.10): the engine's internal auto-tuner silently
// ignores several user parameters, so Rafiki first discovers which knobs are
// worth tuning (strip ignored, refill by ANOVA variance), then optimizes the
// remaining space. Gains are smaller than for Cassandra — the auto-tuner
// already covers part of the headroom — but real.
#include <cstdio>

#include "collect/runner.h"
#include "core/rafiki.h"
#include "engine/scylla.h"

using namespace rafiki;

int main() {
  // Show the auto-tuner in action: request extreme values for an ignored
  // parameter and watch the effective config discard them.
  const auto requested =
      engine::Config::defaults().with(engine::ParamId::kConcurrentWrites, 96);
  const auto effective = engine::ScyllaServer::effective_config(requested, {});
  std::printf("requested concurrent_writes=96 -> effective %d (auto-tuned)\n",
              effective.get_int(engine::ParamId::kConcurrentWrites));

  core::RafikiOptions options;
  options.scylla = true;
  options.workload_grid = {0.0, 0.25, 0.5, 0.75, 1.0};
  options.n_configs = 14;
  // ScyllaDB's tuner fluctuations demand longer measurements and more ANOVA
  // replicates than the Cassandra quickstart, or the screen selects noise.
  options.collect.measure.ops = 80000;
  options.ensemble.n_nets = 10;
  options.anova_repeats = 3;
  core::Rafiki rafiki(options);

  std::puts("\nselecting ScyllaDB key parameters (ANOVA, ignored params stripped)...");
  const auto& params = rafiki.select_key_params();
  for (auto id : params) {
    std::printf("  - %s\n", std::string(engine::param_name(id)).c_str());
  }

  std::puts("collecting + training on the ScyllaDB model...");
  rafiki.train(rafiki.collect());

  const double read_ratio = 0.7;
  const auto result = rafiki.optimize(read_ratio);
  std::printf("\noptimized config: %s\n", result.config.to_string().c_str());

  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 888;
  workload::WorkloadSpec workload = options.base_workload;
  workload.read_ratio = read_ratio;
  const double tuned = collect::measure_throughput(result.config, workload, verify);
  const double fallback =
      collect::measure_throughput(engine::Config::defaults(), workload, verify);
  std::printf("measured @RR=70%%:  default %.0f ops/s  ->  tuned %.0f ops/s  (%+.1f%%)\n",
              fallback, tuned, 100.0 * (tuned - fallback) / fallback);
  std::puts("(the paper reports ~9-12% for ScyllaDB vs ~41% for Cassandra)");
  return 0;
}
