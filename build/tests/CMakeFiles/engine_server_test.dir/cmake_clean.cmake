file(REMOVE_RECURSE
  "CMakeFiles/engine_server_test.dir/engine_server_test.cpp.o"
  "CMakeFiles/engine_server_test.dir/engine_server_test.cpp.o.d"
  "engine_server_test"
  "engine_server_test.pdb"
  "engine_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
