// Wire types of the tuning service (the middleware face of the pipeline):
// one request/response pair shared by the three endpoints the paper's
// MG-RAST-scale clients would hit continuously — Predict (surrogate lookup,
// micro-batched), Optimize (GA over the snapshot), ObserveWindow (online
// re-tuning feed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "engine/config.h"

namespace rafiki::serve {

enum class Endpoint : std::uint8_t { kPredict = 0, kOptimize = 1, kObserveWindow = 2 };
inline constexpr std::size_t kEndpointCount = 3;

enum class Status : std::uint8_t {
  kOk = 0,
  /// Rejected at admission: the bounded request queue is full. Producers are
  /// never blocked past capacity; they get this immediately instead.
  kOverloaded,
  /// The request's (virtual-clock) deadline had passed before execution.
  kDeadlineExceeded,
  /// No model snapshot has been published yet (or the endpoint needs a tuner
  /// that was never attached).
  kNotReady,
  /// The service is stopping; no new work is admitted.
  kShuttingDown,
};
/// Number of Status values; keep in sync with the enum (the name-string
/// exhaustiveness test walks [0, kStatusCount) and the wire codec range-checks
/// decoded status bytes against it).
inline constexpr std::size_t kStatusCount = 5;

const char* endpoint_name(Endpoint endpoint) noexcept;
const char* status_name(Status status) noexcept;

/// Deadlines are expressed in ticks of the clock injected through
/// ServiceOptions — virtual time, never the wall clock, so deadline
/// behaviour is deterministic and testable (see tools/lint_rules.md).
using Tick = std::uint64_t;
inline constexpr Tick kNoDeadline = std::numeric_limits<Tick>::max();

/// Tenant namespace id. Tenants are dense [0, tenants); tenant 0 is the
/// default namespace every pre-tenant caller lands in, so a fleet of one
/// behaves exactly like the original single-tenant service.
using TenantId = std::uint32_t;

struct Request {
  Endpoint endpoint = Endpoint::kPredict;
  /// Tenant namespace this request executes in (snapshot slot, tuner state,
  /// retrain coalescing key-space). Travels on the wire in protocol v2.
  TenantId tenant = 0;
  /// The characterized workload the request concerns (all endpoints).
  double read_ratio = 0.5;
  /// Configuration to score (kPredict only).
  engine::Config config = engine::Config::defaults();
  /// Latest clock tick at which executing this request is still useful.
  Tick deadline = kNoDeadline;
};

struct Response {
  Status status = Status::kOk;
  /// Version of the snapshot that answered (0 = none involved).
  std::uint64_t model_version = 0;

  // kPredict: predicted throughput with the ensemble's cross-member spread
  // as an uncertainty band (mean +/- stddev), plus the micro-batch size the
  // request was coalesced into.
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t batch_size = 0;

  // kOptimize / kObserveWindow.
  engine::Config config = engine::Config::defaults();
  double predicted_throughput = 0.0;
  bool reconfigured = false;
  /// kObserveWindow only: the returned config predates this window's regime.
  /// The tuner had no optimized entry for the (materially moved) read ratio,
  /// so the current config is served stale while a background optimization
  /// was enqueued; a later window picks up the republished tuned entry.
  bool stale = false;
  std::size_t surrogate_evaluations = 0;

  bool ok() const noexcept { return status == Status::kOk; }
};

}  // namespace rafiki::serve
