// net::Server — the RPC front-end over a serve::TuningBackend (the single
// TuningService or the ShardedTuningService router): a poll-driven,
// multi-threaded TCP server speaking the length-prefixed binary protocol of
// net/wire.h.
//
//   * Non-blocking sockets throughout; each connection is owned by exactly
//     one IO loop thread (round-robin assignment at accept), so read-side
//     state needs no locks. Loop 0 doubles as the acceptor.
//   * Pipelining — any number of requests (up to max_pipeline) may be in
//     flight per connection; responses carry the request id they answer and
//     may return out of order. Completion uses TuningService::try_submit's
//     callback path: a worker thread encodes the response into the
//     connection's (mutex-guarded) output buffer and wakes the owning loop
//     through a pipe — the loop never blocks on a future.
//   * Backpressure maps to the wire, not to TCP stalls: a full service queue
//     or a full per-connection pipeline answers with a typed kOverloaded
//     response immediately; the socket keeps draining.
//   * Malformed frames: recoverable ones (bad enum/payload under a valid
//     header) are answered with an error frame and the stream continues;
//     fatal ones (bad magic/version/oversized length) get one final error
//     frame and the connection closes.
//   * stop() drains gracefully: in-flight requests finish and their
//     responses flush, requests decoded during the drain are answered with
//     kShuttingDown — no accepted frame is ever dropped. Connections whose
//     handshake completed before the drain (still sitting in the accept
//     backlog) are adopted and answered too, instead of being RST by the
//     listener close. Idle connections are held until the peer closes (its
//     frames may still be on the wire), bounded by ServerOptions::drain_grace.
//   * Wire telemetry (connections, frames, bytes, decode errors, per-endpoint
//     wire latency) folds into the service's ServiceStats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "serve/backend.h"
#include "util/sync.h"

namespace rafiki::net {

struct ServerOptions {
  /// Bind address. The default serves loopback only — remote exposure is an
  /// explicit decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the real one.
  std::uint16_t port = 0;
  /// IO loop threads. Loop 0 also accepts; connections are assigned
  /// round-robin.
  std::size_t io_threads = 1;
  int backlog = 64;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// Frames claiming a larger payload are rejected before buffering.
  std::size_t max_payload = kDefaultMaxPayload;
  /// In-flight (submitted, unanswered) requests per connection; excess
  /// requests answer kOverloaded on the wire.
  std::size_t max_pipeline = 64;
  /// recv() chunk size.
  std::size_t read_chunk = 1 << 16;
  /// Drain grace: how long stop() keeps an *idle* connection open waiting
  /// for the peer's FIN. A momentarily-idle connection can have frames
  /// already on the wire (a client mid-burst); closing it on the first idle
  /// observation loses them. The peer closing its end (or going dead) still
  /// releases the connection immediately — the grace only bounds how long a
  /// silent, healthy peer can hold up stop().
  std::chrono::milliseconds drain_grace{250};
};

class Server {
 public:
  /// The backend must outlive the server.
  explicit Server(serve::TuningBackend& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the IO loops. False on socket errors (see
  /// last_error()). Idempotent.
  bool start();
  /// Graceful drain: answer everything already on the wire (including
  /// connections still in the accept backlog), flush, close, join.
  /// Idempotent.
  void stop();

  /// Actual bound port (after start()); 0 before.
  std::uint16_t port() const noexcept { return port_; }
  bool running() const {
    MutexLock lock(lifecycle_mutex_);
    return started_ && !stopped_;
  }
  std::string last_error() const {
    MutexLock lock(lifecycle_mutex_);
    return last_error_;
  }

 private:
  /// Wakeup pipe shared between an IO loop and the response callbacks that
  /// need to rouse it. Callbacks can outlive stop() by a few instructions
  /// (a worker mid-callback while the loops join), so the pipe's lifetime is
  /// ref-counted rather than tied to the Server.
  struct Waker {
    int read_fd = -1;
    int write_fd = -1;
    ~Waker();
    void wake() const noexcept;
    void drain() const noexcept;
  };

  struct Connection {
    int fd = -1;
    /// Owning loop's waker; response callbacks use it to rouse the loop.
    std::shared_ptr<Waker> waker;
    // --- owned by the loop thread ---
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;
    bool read_closed = false;  ///< peer sent FIN (or read side gave up)
    bool fatal = false;        ///< protocol-fatal: close once output flushes
    /// Protocol version of the most recent well-formed frame from this peer
    /// (loop-thread only). Responses and error frames are encoded in the
    /// peer's own dialect, so a v1 client never receives a 24-byte header.
    std::uint8_t wire_version = kProtocolVersion;
    // --- shared with response callbacks ---
    rafiki::Mutex out_mutex;
    std::vector<std::uint8_t> obuf GUARDED_BY(out_mutex);
    std::size_t opos GUARDED_BY(out_mutex) = 0;
    /// Socket broken: discard output. Written and read on the owning loop
    /// thread only (handle_read / flush); atomic so that invariant is a
    /// tearing-safe implementation detail, not a correctness cliff.
    std::atomic<bool> dead{false};
    /// Incremented on the loop thread at submit; decremented by the service
    /// worker's completion callback (release) — idle()/should_close() load
    /// with acquire to order against the callback's buffer writes.
    std::atomic<std::size_t> in_flight{0};
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  struct Loop {
    std::shared_ptr<Waker> waker;
    rafiki::Mutex incoming_mutex;
    /// Handoff from the acceptor.
    std::vector<ConnectionPtr> incoming GUARDED_BY(incoming_mutex);
    std::vector<ConnectionPtr> conns;  ///< loop-thread only
    std::thread thread;
  };

  void loop_main(std::size_t index);
  void do_accept(Loop& loop);
  void handle_read(Connection& conn);
  void process_frames(const ConnectionPtr& conn);
  void handle_request(const ConnectionPtr& conn, const Frame& frame);
  /// Encodes in the connection's wire_version, echoing the request's tenant.
  void queue_response(Connection& conn, std::uint64_t request_id,
                      serve::Endpoint endpoint, const serve::Response& response,
                      serve::TenantId tenant);
  void queue_error(Connection& conn, std::uint64_t request_id, WireError error,
                   serve::TenantId tenant = 0);
  void flush(Connection& conn);
  /// No pending work in either direction and the peer is still healthy —
  /// the draining loop's criterion for letting a connection go.
  bool idle(Connection& conn) const;
  bool should_close(Connection& conn) const;
  void close_connection(Connection& conn);

  serve::TuningBackend& service_;
  ServerOptions options_;
  serve::ServiceStats& stats_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::size_t next_loop_ = 0;  ///< acceptor-thread only (round robin)
  std::atomic<std::size_t> open_connections_{0};
  std::atomic<bool> draining_{false};
  mutable rafiki::Mutex lifecycle_mutex_;
  bool started_ GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ GUARDED_BY(lifecycle_mutex_) = false;
  std::string last_error_ GUARDED_BY(lifecycle_mutex_);
};

}  // namespace rafiki::net
