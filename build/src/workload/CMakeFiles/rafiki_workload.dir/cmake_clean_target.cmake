file(REMOVE_RECURSE
  "librafiki_workload.a"
)
