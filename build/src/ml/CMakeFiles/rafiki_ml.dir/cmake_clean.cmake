file(REMOVE_RECURSE
  "CMakeFiles/rafiki_ml.dir/anova.cpp.o"
  "CMakeFiles/rafiki_ml.dir/anova.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/dtree.cpp.o"
  "CMakeFiles/rafiki_ml.dir/dtree.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/ensemble.cpp.o"
  "CMakeFiles/rafiki_ml.dir/ensemble.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/knn.cpp.o"
  "CMakeFiles/rafiki_ml.dir/knn.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/matrix.cpp.o"
  "CMakeFiles/rafiki_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/metrics.cpp.o"
  "CMakeFiles/rafiki_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/mlp.cpp.o"
  "CMakeFiles/rafiki_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/rafiki_ml.dir/trainbr.cpp.o"
  "CMakeFiles/rafiki_ml.dir/trainbr.cpp.o.d"
  "librafiki_ml.a"
  "librafiki_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
