// Bit-for-bit parity of the batched inference paths with their scalar
// originals. The serve layer's micro-batcher and the GA's per-generation
// population evaluation both assume that batching is a pure reshaping of the
// computation — same accumulation order per output element, so EXPECT_EQ
// (exact bits), not EXPECT_NEAR.
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ml/ensemble.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "opt/ga.h"
#include "opt/space.h"
#include "util/rng.h"

namespace rafiki::ml {
namespace {

TEST(ForwardBatch, MatchesForwardBitForBit) {
  Mlp net({4, 7, 3, 1});
  Rng rng(2024);
  net.randomize(rng);

  constexpr std::size_t kRows = 33;
  Matrix x(kRows, 4);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = rng.uniform(-1.0, 1.0);
  }

  const auto batched = net.forward_batch(x);
  ASSERT_EQ(batched.size(), kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(batched[r], net.forward(x.row(r))) << "row " << r;
  }
}

TEST(ForwardBatch, SingleRowAndEmptyBatch) {
  Mlp net({2, 5, 1});
  Rng rng(7);
  net.randomize(rng);

  Matrix one(1, 2);
  one(0, 0) = 0.3;
  one(0, 1) = -0.8;
  const auto single = net.forward_batch(one);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], net.forward(one.row(0)));

  EXPECT_TRUE(net.forward_batch(Matrix(0, 2)).empty());
}

class EnsembleBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small synthetic regression problem; enough structure that training
    // converges and members disagree slightly (nonzero spread).
    Rng rng(55);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 60; ++i) {
      std::vector<double> row = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 4.0),
                                 rng.uniform(-2.0, 2.0)};
      x.push_back(row);
      y.push_back(3.0 * row[0] - row[1] + 0.5 * row[2] * row[2]);
    }
    EnsembleOptions options;
    options.n_nets = 4;
    options.hidden = {6};
    options.train.max_epochs = 40;
    ensemble_.fit(x, y, options);

    for (int i = 0; i < 17; ++i) {
      queries_.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 4.0),
                          rng.uniform(-2.0, 2.0)});
    }
  }

  SurrogateEnsemble ensemble_;
  std::vector<std::vector<double>> queries_;
};

TEST_F(EnsembleBatch, PredictBatchMatchesPredictBitForBit) {
  ASSERT_TRUE(ensemble_.trained());
  const auto batched = ensemble_.predict_batch(queries_);
  ASSERT_EQ(batched.size(), queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(batched[i], ensemble_.predict(queries_[i])) << "query " << i;
  }
}

TEST_F(EnsembleBatch, UncertaintyBatchMatchesScalarPath) {
  const auto batched = ensemble_.predict_batch_with_uncertainty(queries_);
  ASSERT_EQ(batched.size(), queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    const auto scalar = ensemble_.predict_with_uncertainty(queries_[i]);
    EXPECT_EQ(batched[i].mean, scalar.mean) << "query " << i;
    EXPECT_EQ(batched[i].stddev, scalar.stddev) << "query " << i;
    EXPECT_GE(batched[i].stddev, 0.0);
    EXPECT_TRUE(std::isfinite(batched[i].stddev));
  }
}

TEST_F(EnsembleBatch, EmptyBatchIsEmpty) {
  const std::vector<std::vector<double>> no_rows;
  EXPECT_TRUE(ensemble_.predict_batch(no_rows).empty());
  EXPECT_TRUE(ensemble_.predict_batch_with_uncertainty(no_rows).empty());
}

}  // namespace
}  // namespace rafiki::ml

namespace rafiki::opt {
namespace {

double rastrigin_like(std::span<const double> x) {
  double value = 0.0;
  for (double v : x) value -= v * v - std::cos(3.0 * v);
  return value;
}

TEST(GaBatched, IdenticalToScalarGa) {
  SearchSpace space(std::vector<Dimension>{{"a", false, -4.0, 4.0},
                                           {"b", true, 0.0, 32.0},
                                           {"c", false, -1.0, 3.0}});
  GaOptions options;
  options.population = 16;
  options.generations = 12;
  options.seed = 321;

  const auto scalar = ga_optimize(space, rastrigin_like, options);
  const auto batched = ga_optimize_batched(
      space,
      [](const std::vector<std::vector<double>>& points) {
        std::vector<double> out;
        out.reserve(points.size());
        for (const auto& point : points) out.push_back(rastrigin_like(point));
        return out;
      },
      options);

  // Same RNG stream, same evaluations, bit-identical trajectory.
  EXPECT_EQ(scalar.best_point, batched.best_point);
  EXPECT_EQ(scalar.best_fitness, batched.best_fitness);
  EXPECT_EQ(scalar.evaluations, batched.evaluations);
  EXPECT_EQ(scalar.best_history, batched.best_history);
}

TEST(GaBatched, ThrowsOnWrongBatchArity) {
  SearchSpace space(std::vector<Dimension>{{"a", false, 0.0, 1.0}});
  GaOptions options;
  options.population = 8;
  options.generations = 2;
  EXPECT_THROW(ga_optimize_batched(
                   space,
                   [](const std::vector<std::vector<double>>& points) {
                     return std::vector<double>(points.size() + 1, 0.0);
                   },
                   options),
               std::invalid_argument);
}

}  // namespace
}  // namespace rafiki::opt
