#include "engine/config.h"

#include <cstdio>
#include <stdexcept>

namespace rafiki::engine {

Config::Config() {
  for (const auto& spec : param_registry()) {
    values_[static_cast<std::size_t>(spec.id)] = spec.def;
  }
}

Config& Config::set(ParamId id, double value) noexcept {
  values_[static_cast<std::size_t>(id)] = param_spec(id).snap(value);
  return *this;
}

Config Config::with(ParamId id, double value) const noexcept {
  Config copy = *this;
  copy.set(id, value);
  return copy;
}

std::vector<double> Config::key_vector() const { return vector_for(key_params()); }

Config Config::from_key_vector(const std::vector<double>& key_values) {
  return from_vector(key_params(), key_values);
}

std::vector<double> Config::vector_for(const std::vector<ParamId>& params) const {
  std::vector<double> values;
  values.reserve(params.size());
  for (ParamId id : params) values.push_back(get(id));
  return values;
}

Config Config::from_vector(const std::vector<ParamId>& params,
                           const std::vector<double>& values) {
  if (params.size() != values.size()) {
    throw std::invalid_argument("Config::from_vector: size mismatch");
  }
  Config config;
  for (std::size_t i = 0; i < params.size(); ++i) config.set(params[i], values[i]);
  return config;
}

std::string Config::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& spec : param_registry()) {
    const double v = get(spec.id);
    if (v == spec.def) continue;
    if (!first) out += ", ";
    first = false;
    char buf[96];
    if (spec.type == ParamType::kReal) {
      std::snprintf(buf, sizeof buf, "%s=%.4g", std::string(spec.name).c_str(), v);
    } else {
      std::snprintf(buf, sizeof buf, "%s=%d", std::string(spec.name).c_str(),
                    static_cast<int>(v));
    }
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace rafiki::engine
