#include "opt/ga.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rafiki::opt {
namespace {

struct Individual {
  std::vector<double> genome;
  double raw = 0.0;        // objective value
  double violation = 0.0;  // constraint violation
  double score = 0.0;      // penalized fitness used for selection
};

}  // namespace

GaResult ga_optimize(const SearchSpace& space, const Objective& objective,
                     const GaOptions& options) {
  return ga_optimize_batched(
      space,
      [&objective](const std::vector<std::vector<double>>& points) {
        std::vector<double> values;
        values.reserve(points.size());
        for (const auto& point : points) values.push_back(objective(point));
        return values;
      },
      options);
}

GaResult ga_optimize_batched(const SearchSpace& space, const BatchObjective& objective,
                             const GaOptions& options) {
  Rng rng(options.seed);
  GaResult result;

  // Genome creation (which consumes the RNG stream) is fully decoupled from
  // fitness evaluation (which does not), so a whole cohort can be scored in
  // one batched objective call without perturbing the random sequence.
  auto evaluate_from = [&](std::vector<Individual>& pop, std::size_t first) {
    std::vector<std::vector<double>> points;
    points.reserve(pop.size() - first);
    for (std::size_t i = first; i < pop.size(); ++i) points.push_back(pop[i].genome);
    const auto values = objective(points);
    if (values.size() != points.size()) {
      throw std::invalid_argument("ga_optimize_batched: objective returned wrong count");
    }
    for (std::size_t i = first; i < pop.size(); ++i) {
      pop[i].raw = values[i - first];
      pop[i].violation = space.violation(pop[i].genome);
    }
    result.evaluations += points.size();
  };

  std::vector<Individual> population(options.population);
  for (auto& ind : population) ind.genome = space.random_point(rng);
  // Warm starts overwrite genomes only after every random draw above, so the
  // RNG stream is untouched and seedless runs stay bit-identical.
  std::size_t seeded = 0;
  for (const auto& point : options.seed_points) {
    if (point.size() != space.size() || seeded >= population.size()) continue;
    population[seeded++].genome = space.snap(point);
  }
  evaluate_from(population, 0);

  auto rescore = [&](std::vector<Individual>& pop) {
    // Penalty scale follows the population's fitness spread so the penalty
    // stays meaningful whatever the objective's units are.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& ind : pop) {
      lo = std::min(lo, ind.raw);
      hi = std::max(hi, ind.raw);
    }
    const double spread = std::max(hi - lo, 1e-9);
    for (auto& ind : pop) {
      ind.score = ind.raw - options.penalty_weight * spread * ind.violation;
    }
  };
  rescore(population);

  auto tournament_pick = [&](const std::vector<Individual>& pop) -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t t = 0; t < options.tournament; ++t) {
      const auto& cand = pop[rng.bounded(pop.size())];
      if (!best || cand.score > best->score) best = &cand;
    }
    return *best;
  };

  Individual best_feasible;
  best_feasible.raw = -std::numeric_limits<double>::infinity();
  auto track_best = [&](const std::vector<Individual>& pop) {
    for (const auto& ind : pop) {
      if (ind.violation == 0.0 && ind.raw > best_feasible.raw) best_feasible = ind;
    }
    result.best_history.push_back(best_feasible.raw);
    result.best_point_history.push_back(space.snap(best_feasible.genome));
  };
  track_best(population);

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(population.size());

    // Elitism: carry the top scorers unchanged.
    std::vector<const Individual*> ranked;
    ranked.reserve(population.size());
    for (const auto& ind : population) ranked.push_back(&ind);
    std::sort(ranked.begin(), ranked.end(),
              [](const Individual* a, const Individual* b) { return a->score > b->score; });
    for (std::size_t e = 0; e < std::min(options.elites, ranked.size()); ++e) {
      next.push_back(*ranked[e]);
    }
    const std::size_t carried = next.size();  // elites keep their scores

    while (next.size() < population.size()) {
      const Individual& a = tournament_pick(population);
      const Individual& b = tournament_pick(population);
      Individual child;
      child.genome.resize(space.size());
      if (rng.bernoulli(options.crossover_rate)) {
        // Random-weighted average per gene: interpolation within the
        // parents' span, as the paper specifies.
        for (std::size_t i = 0; i < space.size(); ++i) {
          const double r = rng.uniform();
          child.genome[i] = r * a.genome[i] + (1.0 - r) * b.genome[i];
        }
      } else {
        child.genome = rng.bernoulli(0.5) ? a.genome : b.genome;
      }
      for (std::size_t i = 0; i < space.size(); ++i) {
        const auto& d = space.dim(i);
        if (rng.bernoulli(options.mutation_rate)) {
          child.genome[i] += rng.gaussian(0.0, options.mutation_sigma * (d.hi - d.lo));
          child.genome[i] = std::clamp(child.genome[i], d.lo, d.hi);
        }
        // Rounding move for integral genes: interpolating crossover leaves
        // them fractional (penalized), so half the offspring snap back onto
        // the integer lattice, keeping a feasible sub-population alive.
        if (d.integral && rng.bernoulli(0.5)) {
          child.genome[i] = std::round(child.genome[i]);
        }
      }
      next.push_back(std::move(child));
    }
    evaluate_from(next, carried);

    population = std::move(next);
    rescore(population);
    track_best(population);
  }

  // Report the best feasible individual, snapped (snapping is a no-op for a
  // feasible point, but also guards the degenerate never-feasible case).
  if (std::isinf(best_feasible.raw)) {
    // No feasible individual was ever seen (can only happen with an
    // all-integral space and zero feasible draws); snap the best scorer.
    const auto* best = &population.front();
    for (const auto& ind : population) {
      if (ind.score > best->score) best = &ind;
    }
    best_feasible = *best;
  }
  result.best_point = space.snap(best_feasible.genome);
  result.best_fitness = objective({result.best_point}).front();
  ++result.evaluations;
  return result;
}

}  // namespace rafiki::opt
