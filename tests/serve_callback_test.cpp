// MoveFunc (util/func.h): the serve layer's move-only completion-callback
// type. Under test — inline placement for hot-path-sized captures (no heap
// allocation per request), move-only captures, exactly-once invoke/destroy,
// move transfer emptying the source, and heap fallback for oversized targets.
#include <chrono>
#include <cstddef>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "util/func.h"

namespace rafiki {
namespace {

using Callback = MoveFunc<void(int)>;

TEST(MoveFunc, InvokesTheTarget) {
  int seen = 0;
  Callback cb = [&seen](int value) { seen = value; };
  ASSERT_TRUE(static_cast<bool>(cb));
  cb(42);
  EXPECT_EQ(seen, 42);
}

TEST(MoveFunc, DefaultAndNullptrAreEmpty) {
  Callback empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  Callback null = nullptr;
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(MoveFunc, AcceptsMoveOnlyCaptures) {
  // The whole point over std::function: a promise, a unique_ptr, or another
  // MoveFunc can ride in the capture.
  auto owned = std::make_unique<int>(7);
  MoveFunc<int()> cb = [owned = std::move(owned)] { return *owned; };
  EXPECT_EQ(cb(), 7);
}

TEST(MoveFunc, MoveTransfersAndEmptiesTheSource) {
  int seen = 0;
  Callback a = [&seen](int value) { seen = value; };
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b(5);
  EXPECT_EQ(seen, 5);

  Callback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c(9);
  EXPECT_EQ(seen, 9);
}

/// Counts live instances and destructor runs — the exactly-once probe.
struct Tracked {
  explicit Tracked(int* destroyed) : destroyed_(destroyed) {}
  Tracked(Tracked&& other) noexcept : destroyed_(other.destroyed_) {
    other.destroyed_ = nullptr;  // moved-from shells don't count
  }
  Tracked(const Tracked&) = delete;
  ~Tracked() {
    if (destroyed_ != nullptr) ++*destroyed_;
  }
  int* destroyed_;
};

TEST(MoveFunc, DestroysTheTargetExactlyOnce) {
  int destroyed = 0;
  {
    Callback cb = [tracked = Tracked(&destroyed)](int) {};
    Callback moved = std::move(cb);
    // cb's reset on destruction must not double-destroy the relocated target.
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(MoveFunc, ReassignmentDestroysTheOldTarget) {
  int first = 0;
  int second = 0;
  Callback cb = [tracked = Tracked(&first)](int) {};
  cb = [tracked = Tracked(&second)](int) {};
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
  cb = nullptr;
  Callback empty;
  cb = std::move(empty);
  EXPECT_EQ(second, 1);
}

TEST(MoveFunc, HotPathCapturesStoreInline) {
  // The shape net::Server's response callback captures: two shared_ptrs, a
  // raw pointer, two 32-bit frame ids, a 16-bit tenant, a 64-bit version,
  // and a time_point. Pinning it to the inline buffer is what makes the
  // submit path allocation-free; if a capture grows past kInlineSize this
  // assert fires at compile time instead of silently re-adding a heap
  // allocation per request.
  struct WireShape {
    std::shared_ptr<int> connection;
    std::shared_ptr<int> waker;
    void* stats;
    std::uint64_t id;
    std::uint8_t endpoint;
    std::uint32_t tenant;
    std::uint8_t version;
    std::chrono::steady_clock::time_point t0;
    void operator()(int) const {}
  };
  static_assert(sizeof(WireShape) == 72,
                "mirror of net::Server's submit capture; update alongside it");
  static_assert(MoveFunc<void(int)>::stores_inline<WireShape>(),
                "net::Server-shaped captures must fit MoveFunc's inline buffer");
  // A shared_ptr-promise capture (the submit() future adapter) fits too.
  struct PromiseShape {
    std::shared_ptr<int> promise;
    void operator()(int) const {}
  };
  static_assert(MoveFunc<void(int)>::stores_inline<PromiseShape>());
}

TEST(MoveFunc, OversizedTargetsFallBackToHeapAndStillWork) {
  struct Big {
    std::byte padding[128];
    int value;
    int operator()() const { return value; }
  };
  static_assert(!MoveFunc<int()>::stores_inline<Big>());
  Big big{};
  big.value = 11;
  MoveFunc<int()> cb = big;
  MoveFunc<int()> moved = std::move(cb);
  EXPECT_EQ(moved(), 11);
}

TEST(MoveFunc, HeapTargetDestroyedExactlyOnce) {
  int destroyed = 0;
  struct BigTracked {
    std::byte padding[128];
    Tracked tracked;
    void operator()(int) const {}
  };
  static_assert(!Callback::stores_inline<BigTracked>());
  {
    Callback cb = BigTracked{{}, Tracked(&destroyed)};
    Callback moved = std::move(cb);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(MoveFunc, ReturnsValuesAndForwardsArguments) {
  MoveFunc<std::unique_ptr<int>(std::unique_ptr<int>)> doubler =
      [](std::unique_ptr<int> in) {
        *in *= 2;
        return in;
      };
  auto result = doubler(std::make_unique<int>(21));
  EXPECT_EQ(*result, 42);
}

}  // namespace
}  // namespace rafiki
