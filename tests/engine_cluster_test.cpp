#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/scylla.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace rafiki::engine {
namespace {

workload::WorkloadSpec spec_with(double rr) {
  auto spec = workload::WorkloadSpec::with_read_ratio(rr);
  spec.initial_keys = 20000;
  return spec;
}

TEST(Scylla, EffectiveConfigOverridesIgnoredParams) {
  Hardware hw;
  const auto requested = Config::defaults()
                             .with(ParamId::kConcurrentWrites, 8)
                             .with(ParamId::kMemtableCleanupThreshold, 0.05)
                             .with(ParamId::kFileCacheSizeMb, 1024);
  const auto effective = ScyllaServer::effective_config(requested, hw);
  // Ignored parameters replaced by internal values.
  EXPECT_DOUBLE_EQ(effective.get(ParamId::kConcurrentWrites), 64.0);
  EXPECT_DOUBLE_EQ(effective.get(ParamId::kMemtableCleanupThreshold), 0.25);
  // Honoured parameters survive.
  EXPECT_DOUBLE_EQ(effective.get(ParamId::kFileCacheSizeMb), 1024.0);
  // Per-flush compaction trigger: most eager supported threshold.
  EXPECT_EQ(effective.get_int(ParamId::kMinCompactionThreshold),
            static_cast<int>(param_spec(ParamId::kMinCompactionThreshold).lo));
}

TEST(Scylla, IgnoredParamsContainThePaperSet) {
  const auto& ignored = ScyllaServer::ignored_params();
  for (auto id : {ParamId::kConcurrentWrites, ParamId::kConcurrentCompactors,
                  ParamId::kMemtableCleanupThreshold}) {
    EXPECT_NE(std::find(ignored.begin(), ignored.end(), id), ignored.end());
  }
  // CM and FCZ must remain tunable, or Section 4.10 is impossible.
  for (auto id : {ParamId::kCompactionMethod, ParamId::kFileCacheSizeMb}) {
    EXPECT_EQ(std::find(ignored.begin(), ignored.end(), id), ignored.end());
  }
}

TEST(Scylla, ChangingIgnoredParamDoesNotChangeThroughput) {
  auto run = [](const Config& config) {
    const auto spec = spec_with(0.7);
    workload::Generator generator(spec, 3);
    ScyllaServer server(config);
    server.preload(generator.preload_keys(), spec.value_bytes);
    RunOptions opts;
    opts.ops = 20000;
    return server.run(generator, opts).throughput_ops;
  };
  const double base = run(Config::defaults());
  const double tweaked = run(Config::defaults().with(ParamId::kConcurrentWrites, 96));
  EXPECT_DOUBLE_EQ(base, tweaked);
}

TEST(Scylla, ThroughputFluctuatesMoreThanCassandra) {
  // Figure 10: under a stationary 70%-read workload ScyllaDB's 10-second
  // throughput varies strongly; Cassandra's is comparatively stable.
  const auto spec = spec_with(0.7);
  RunOptions opts;
  opts.ops = 120000;
  opts.record_windows = true;
  opts.window_s = 0.1;

  workload::Generator g1(spec, 5);
  Server cassandra(Config::defaults());
  cassandra.preload(g1.preload_keys(), spec.value_bytes);
  const auto c_stats = cassandra.run(g1, opts);

  workload::Generator g2(spec, 5);
  ScyllaServer scylla(Config::defaults());
  scylla.preload(g2.preload_keys(), spec.value_bytes);
  const auto s_stats = scylla.run(g2, opts);

  ASSERT_GT(c_stats.window_throughput.size(), 4u);
  ASSERT_GT(s_stats.window_throughput.size(), 4u);
  const double c_cv = stddev(c_stats.window_throughput) / mean(c_stats.window_throughput);
  const double s_cv = stddev(s_stats.window_throughput) / mean(s_stats.window_throughput);
  EXPECT_GT(s_cv, 2.0 * c_cv);
}

TEST(Scylla, FasterBaseEngineOnWriteHeavy) {
  const auto spec = spec_with(0.0);
  workload::Generator g1(spec, 7), g2(spec, 7);
  Server cassandra(Config::defaults());
  cassandra.preload(g1.preload_keys(), spec.value_bytes);
  ScyllaServer scylla(Config::defaults());
  scylla.preload(g2.preload_keys(), spec.value_bytes);
  RunOptions opts;
  opts.ops = 30000;
  EXPECT_GT(scylla.run(g2, opts).throughput_ops,
            cassandra.run(g1, opts).throughput_ops);
}

TEST(Cluster, RejectsBadSizes) {
  EXPECT_THROW(Cluster(Config::defaults(), 0, 1), std::invalid_argument);
}

TEST(Cluster, ReplicationFactorClampsToClusterSize) {
  Cluster cluster(Config::defaults(), 2, 5);
  EXPECT_EQ(cluster.replication_factor(), 2);
}

TEST(Cluster, FullReplicationStoresAllKeysEverywhere) {
  Cluster cluster(Config::defaults(), 2, 2);
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 5000; ++k) keys.push_back(k);
  cluster.preload(keys, 256);
  for (int s = 0; s < 2; ++s) {
    std::size_t total = 0;
    for (const auto& table : cluster.server(s).sstables()) total += table.key_count();
    EXPECT_GE(total, keys.size());  // >= because of version duplication
  }
}

TEST(Cluster, TwoServersOutperformOneOnReads) {
  // Two servers with two shooters should sustain materially more read
  // throughput than one server with one shooter (reads are balanced).
  const auto spec = spec_with(1.0);
  RunOptions opts;
  opts.ops = 20000;

  Cluster single(Config::defaults(), 1, 1);
  {
    workload::Generator preload_gen(spec, 1);
    single.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> one_shooter{workload::Generator(spec, 11)};
  const auto single_stats = single.run(one_shooter, opts);

  Cluster pair(Config::defaults(), 2, 2);
  {
    workload::Generator preload_gen(spec, 1);
    pair.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> two_shooters{workload::Generator(spec, 11),
                                                workload::Generator(spec, 12)};
  const auto pair_stats = pair.run(two_shooters, opts);

  EXPECT_GT(pair_stats.throughput_ops, single_stats.throughput_ops * 1.4);
  EXPECT_EQ(pair_stats.ops, 2u * opts.ops);
}

TEST(Cluster, WritesAreReplicatedToAllReplicas) {
  const auto spec = spec_with(0.0);
  Cluster pair(Config::defaults(), 2, 2);
  {
    workload::Generator preload_gen(spec, 1);
    pair.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> shooters{workload::Generator(spec, 21)};
  RunOptions opts;
  opts.ops = 10000;
  pair.run(shooters, opts);
  // RF = 2: every write lands on both servers.
  EXPECT_EQ(pair.server(0).write_count(), 10000u);
  EXPECT_EQ(pair.server(1).write_count(), 10000u);
}

}  // namespace
}  // namespace rafiki::engine
