// Ablation: surrogate-model families (Section 3.7.2's discussion).
//
// The paper tried an interpretable decision tree as the surrogate, found it
// "woefully inadequate", saw improvement when leaves were allowed linear
// combinations of parameters, and settled on the DNN ensemble. OtterTune-
// style systems interpolate from nearest neighbours instead (Section 5).
// This bench trains every family on the same 200-sample corpus and compares
// (a) unseen-configuration prediction error and (b) end-to-end tuning
// quality: the measured throughput of the config a GA finds against each
// surrogate.
#include <cstdio>
#include <functional>

#include "bench/common.h"
#include "collect/runner.h"
#include "ml/dtree.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "opt/ga.h"

using namespace rafiki;

namespace {

using PredictFn = std::function<double(std::span<const double>)>;

struct Family {
  std::string name;
  /// Trains on rows/targets and returns a predictor.
  std::function<PredictFn(const std::vector<std::vector<double>>&,
                          std::span<const double>)> fit;
};

double holdout_error(const Family& family, const collect::Dataset& dataset,
                     int trials) {
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto split = dataset.split_by_config(0.25, 700 + trial);
    const auto train = dataset.subset(split.train);
    const auto predictor =
        family.fit(train.feature_matrix(engine::key_params()), train.targets());
    std::vector<double> actual, predicted;
    for (auto i : split.test) {
      const auto& sample = dataset[i];
      actual.push_back(sample.throughput);
      predicted.push_back(
          predictor(collect::Dataset::features(sample, engine::key_params())));
    }
    total += ml::mape_percent(actual, predicted);
  }
  return total / trials;
}

}  // namespace

int main() {
  auto options = benchutil::paper_options();
  options.collect.fault_rate = 20.0 / 220.0;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  benchutil::note("collecting the shared 200-sample corpus...");
  const auto dataset = rafiki.collect();
  std::printf("collected %zu samples\n", dataset.size());

  std::vector<Family> families;
  families.push_back(
      {"DNN ensemble (20 nets, pruned)",
       [&](const auto& X, auto y) -> PredictFn {
         auto model = std::make_shared<ml::SurrogateEnsemble>();
         auto opts = options.ensemble;
         model->fit(X, y, opts);
         return [model](std::span<const double> x) { return model->predict(x); };
       }});
  families.push_back(
      {"single DNN",
       [&](const auto& X, auto y) -> PredictFn {
         auto model = std::make_shared<ml::SurrogateEnsemble>();
         auto opts = options.ensemble;
         opts.n_nets = 1;
         opts.prune_fraction = 0.0;
         model->fit(X, y, opts);
         return [model](std::span<const double> x) { return model->predict(x); };
       }});
  families.push_back(
      {"decision tree (constant leaves)",
       [](const auto& X, auto y) -> PredictFn {
         auto model = std::make_shared<ml::DecisionTreeRegressor>();
         model->fit(X, y, {.max_depth = 7, .min_samples_leaf = 5});
         return [model](std::span<const double> x) { return model->predict(x); };
       }});
  families.push_back(
      {"decision tree (linear leaves)",
       [](const auto& X, auto y) -> PredictFn {
         auto model = std::make_shared<ml::DecisionTreeRegressor>();
         model->fit(X, y,
                    {.max_depth = 4, .min_samples_leaf = 12, .linear_leaves = true});
         return [model](std::span<const double> x) { return model->predict(x); };
       }});
  families.push_back(
      {"k-nearest-neighbour interpolation",
       [](const auto& X, auto y) -> PredictFn {
         auto model = std::make_shared<ml::KnnRegressor>();
         model->fit(X, y, {.k = 5, .weight_power = 2.0});
         return [model](std::span<const double> x) { return model->predict(x); };
       }});

  // End-to-end tuning quality at a read-heavy workload.
  const double kReadRatio = 0.9;
  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 717171;
  workload::WorkloadSpec workload = options.base_workload;
  workload.read_ratio = kReadRatio;
  const double fallback =
      collect::measure_throughput(engine::Config::defaults(), workload, verify);

  const auto space = rafiki.key_space();
  Table table({"surrogate family", "unseen-config error", "GA-chosen config measured",
               "gain over default"});
  double ensemble_err = 0.0, tree_err = 0.0, linear_tree_err = 0.0;
  for (const auto& family : families) {
    const double error = holdout_error(family, dataset, 4);
    // Train on everything, tune, verify on the store.
    const auto predictor =
        family.fit(dataset.feature_matrix(engine::key_params()), dataset.targets());
    const auto objective = [&](std::span<const double> point) {
      std::vector<double> features;
      features.reserve(point.size() + 1);
      features.push_back(kReadRatio);
      features.insert(features.end(), point.begin(), point.end());
      return predictor(features);
    };
    const auto ga = opt::ga_optimize(space, objective, options.ga);
    const double measured = collect::measure_throughput(
        engine::Config::from_vector(engine::key_params(), ga.best_point), workload,
        verify);
    table.add_row({family.name, Table::pct(error), Table::ops(measured),
                   Table::pct(100.0 * (measured - fallback) / fallback)});
    if (family.name.starts_with("DNN ensemble")) ensemble_err = error;
    if (family.name.starts_with("decision tree (constant")) tree_err = error;
    if (family.name.starts_with("decision tree (linear")) linear_tree_err = error;
  }
  benchutil::emit(table, "Ablation: surrogate families on the same corpus");

  benchutil::compare("plain decision tree vs DNN ensemble", "woefully inadequate",
                     Table::pct(tree_err) + " vs " + Table::pct(ensemble_err));
  benchutil::compare("linear leaves improve the tree", "yes",
                     linear_tree_err < tree_err ? "yes (" + Table::pct(linear_tree_err) +
                                                      " vs " + Table::pct(tree_err) + ")"
                                                : "NO");
  benchutil::compare("expressivity worth the interpretability loss", "yes",
                     ensemble_err < linear_tree_err ? "yes" : "NO");
  return 0;
}
