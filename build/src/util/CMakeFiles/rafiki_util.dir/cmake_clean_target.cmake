file(REMOVE_RECURSE
  "librafiki_util.a"
)
