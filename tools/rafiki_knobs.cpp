// rafiki_knobs — inspect the tunable-parameter registry and the latest
// online knob-selection results.
//
//   rafiki_knobs registry
//       Dump all registered parameters: domain, default, type, ANOVA levels
//       and redundancy links — the ground truth the tune/ layer screens.
//
//   rafiki_knobs ranking [--json PATH]
//       Print the blended significance ranking and the pruned arm's active
//       set from a knob-ablation run (default PATH: BENCH_knobs.json, as
//       written by bench/knob_ablation).
//
// Exit status: 0 on success, 1 on bad usage or unreadable/unparsable input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/params.h"

using namespace rafiki;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s registry | ranking [--json PATH]\n", argv0);
}

const char* type_name(engine::ParamType type) {
  switch (type) {
    case engine::ParamType::kCategorical: return "categorical";
    case engine::ParamType::kInteger: return "integer";
    case engine::ParamType::kReal: return "real";
  }
  return "?";
}

int dump_registry() {
  std::printf("%-32s %-12s %10s %10s %10s %7s  %s\n", "param", "type", "lo", "hi",
              "default", "levels", "redundant_with");
  for (const auto& spec : engine::param_registry()) {
    const std::string redundant =
        spec.redundant_with == engine::ParamId::kCount
            ? "-"
            : std::string(engine::param_name(spec.redundant_with));
    std::printf("%-32s %-12s %10g %10g %10g %7d  %s\n",
                std::string(spec.name).c_str(), type_name(spec.type), spec.lo, spec.hi,
                spec.def, spec.anova_levels, redundant.c_str());
  }
  std::printf("\n%zu parameters registered\n", engine::param_registry().size());
  return 0;
}

// --- minimal extraction over bench-written JSON ----------------------------
// BENCH_knobs.json is machine-written by bench/knob_ablation with a fixed
// shape; these helpers scan for known keys rather than parsing generally.

/// The span of the array following `"key": [`, starting at `from`.
std::string array_after(const std::string& text, const std::string& key,
                        std::size_t from = 0) {
  const auto at = text.find("\"" + key + "\"", from);
  if (at == std::string::npos) return {};
  const auto open = text.find('[', at);
  if (open == std::string::npos) return {};
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '[') ++depth;
    if (text[i] == ']' && --depth == 0) return text.substr(open + 1, i - open - 1);
  }
  return {};
}

std::string string_field(const std::string& object, const std::string& key) {
  const auto at = object.find("\"" + key + "\"");
  if (at == std::string::npos) return {};
  const auto open = object.find('"', object.find(':', at));
  if (open == std::string::npos) return {};
  const auto close = object.find('"', open + 1);
  if (close == std::string::npos) return {};
  return object.substr(open + 1, close - open - 1);
}

double number_field(const std::string& object, const std::string& key) {
  const auto at = object.find("\"" + key + "\"");
  if (at == std::string::npos) return 0.0;
  const auto colon = object.find(':', at);
  if (colon == std::string::npos) return 0.0;
  return std::strtod(object.c_str() + colon + 1, nullptr);
}

/// Top-level objects of a JSON array body.
std::vector<std::string> array_objects(const std::string& body) {
  std::vector<std::string> objects;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '{' && depth++ == 0) start = i;
    if (body[i] == '}' && --depth == 0) objects.push_back(body.substr(start, i - start + 1));
  }
  return objects;
}

int print_ranking(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rafiki_knobs: cannot read %s (run bench/knob_ablation first)\n",
                 path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const auto entries = array_objects(array_after(text, "ranking"));
  if (entries.empty()) {
    std::fprintf(stderr, "rafiki_knobs: no \"ranking\" array in %s\n", path.c_str());
    return 1;
  }
  std::printf("blended knob ranking (%s):\n", path.c_str());
  std::printf("%4s  %-32s %12s %12s %12s %8s\n", "rank", "param", "blended", "seed",
              "stream", "samples");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries[i];
    std::printf("%4zu  %-32s %12.1f %12.1f %12.1f %8.0f\n", i + 1,
                string_field(entry, "param").c_str(), number_field(entry, "score"),
                number_field(entry, "seed_score"), number_field(entry, "stream_score"),
                number_field(entry, "samples"));
  }

  // The pruned arm's active set, if the file carries the arms section.
  for (const auto& arm : array_objects(array_after(text, "arms"))) {
    if (string_field(arm, "arm") != "pruned") continue;
    std::printf("\npruned active set:");
    const auto active = array_after(arm, "active");
    std::size_t pos = 0;
    while ((pos = active.find('"', pos)) != std::string::npos) {
      const auto close = active.find('"', pos + 1);
      if (close == std::string::npos) break;
      std::printf(" %s", active.substr(pos + 1, close - pos - 1).c_str());
      pos = close + 1;
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  if (std::strcmp(argv[1], "registry") == 0) return dump_registry();
  if (std::strcmp(argv[1], "ranking") == 0) {
    std::string path = "BENCH_knobs.json";
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) path = argv[++i];
    }
    return print_ranking(path);
  }
  usage(argv[0]);
  return 1;
}
