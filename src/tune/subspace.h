// The dynamic active knob set and its genome mapping.
//
// ActiveSubspace owns which of the registry's parameters the GA currently
// searches. A re-cut takes a fresh KnobScreen ranking, canonicalizes
// redundant knobs (a knob with redundant_with set folds its evidence into
// its canonical knob and is never selected itself — Section 4.5's flush-
// frequency argument), applies the paper's "distinct drop" cutoff to choose
// k, and adopts the new top-k set — under a hysteresis rule so sampling
// noise cannot thrash the set:
//
//   incumbent boost — during a re-cut every currently-active knob's score
//   counts as (1 + hysteresis) x its measured score. A challenger therefore
//   only displaces an incumbent by beating it with that margin; equal-
//   evidence reshuffles keep the current set. The first cut (no incumbents)
//   adopts unconditionally.
//
// The subspace also maps between the GA's reduced genome and full
// configurations: inactive knobs are pinned at their best-known values (the
// most recent optimized configuration), so shrinking the genome never
// forgets what search already learned about the knobs it dropped. The
// mapping itself is the generic opt::SubspaceMap; this class binds it to
// engine::ParamId space.
//
// Deterministic by construction: re-cuts are pure functions of the ranking
// and the current set, active order is registry order, ties break low-id.
#pragma once

#include <cstddef>
#include <vector>

#include "engine/config.h"
#include "engine/params.h"
#include "opt/space.h"
#include "tune/screen.h"

namespace rafiki::tune {

struct SubspaceOptions {
  /// Bounds on the active-set size handed to ml::distinct_drop_cutoff.
  std::size_t min_k = 3;
  std::size_t max_k = 8;
  /// Incumbent score boost: an active knob survives a re-cut unless a
  /// challenger beats (1 + hysteresis) x its score. 0 disables hysteresis.
  double hysteresis = 0.25;
};

class ActiveSubspace {
 public:
  explicit ActiveSubspace(SubspaceOptions options = {});

  /// Re-cuts the active set from a blended ranking (KnobScreen::ranking()).
  /// Returns true when the active set actually changed. No-op (false) while
  /// the set is frozen via force().
  bool recut(const std::vector<KnobScore>& ranking);

  /// Pins the active set explicitly and freezes it against future re-cuts —
  /// the "paper-fixed-5" and "naive-full-22" ablation arms, and tests.
  /// Redundancy canonicalization is deliberately NOT applied: a forced set
  /// is the caller's to choose.
  void force(std::vector<engine::ParamId> params);
  bool frozen() const noexcept { return frozen_; }

  /// Active knobs in registry order (the genome layout). Empty until the
  /// first recut()/force().
  const std::vector<engine::ParamId>& active() const noexcept { return active_; }
  bool is_active(engine::ParamId id) const;

  /// GA search space spanned by the active knobs.
  opt::SearchSpace space() const;

  /// Generic index-space mapping for the current active set: one dimension
  /// per registry parameter, inactive dimensions pinned at pinned()'s
  /// values. The optimizer searches map().reduced(); surrogate feature rows
  /// are map().expand()ed back to the full registry layout, which is what
  /// keeps the trained model valid across re-cuts. Throws while the active
  /// set is empty.
  opt::SubspaceMap map() const;

  /// Full configuration for a reduced genome: active knobs take the genome's
  /// values (snapped into domain), inactive knobs stay pinned.
  engine::Config to_config(const std::vector<double>& genome) const;
  /// Reduced genome of a full configuration (active knobs' values).
  std::vector<double> to_genome(const engine::Config& config) const;

  /// Best-known full configuration; inactive knobs are served from here.
  void pin(const engine::Config& config) { pinned_ = config; }
  const engine::Config& pinned() const noexcept { return pinned_; }

  /// Telemetry: re-cut attempts vs. re-cuts that changed the set.
  std::size_t recuts() const noexcept { return recuts_; }
  std::size_t changes() const noexcept { return changes_; }

  const SubspaceOptions& options() const noexcept { return options_; }

 private:
  SubspaceOptions options_;
  std::vector<engine::ParamId> active_;
  engine::Config pinned_ = engine::Config::defaults();
  bool frozen_ = false;
  std::size_t recuts_ = 0;
  std::size_t changes_ = 0;
};

}  // namespace rafiki::tune
