// Additional ML-module coverage: the plain-LM path, hyperparameter update
// cadence, parameter plumbing, and the online tuner's prefetch contract.
#include <gtest/gtest.h>

#include "core/online.h"
#include "core/rafiki.h"
#include "ml/trainbr.h"

namespace rafiki {
namespace {

std::pair<std::vector<std::vector<double>>, std::vector<double>> ridge_data() {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (double a = -1.0; a <= 1.0001; a += 0.25) {
    for (double b = -1.0; b <= 1.0001; b += 0.25) {
      X.push_back({a, b});
      y.push_back(0.6 * a - 0.2 * b * b);
    }
  }
  return {X, y};
}

TEST(TrainExtra, PlainLevenbergMarquardtFitsWithoutRegularization) {
  auto [X, y] = ridge_data();
  ml::Mlp net({2, 8, 1});
  Rng rng(5);
  net.randomize(rng);
  ml::TrainOptions options;
  options.bayesian_regularization = false;
  const auto result = ml::train_lm_bayes(net, X, y, options);
  EXPECT_LT(result.mse, 1e-4);
  EXPECT_DOUBLE_EQ(result.alpha, 0.0);  // never re-estimated
}

TEST(TrainExtra, UpdateIntervalDoesNotChangeQualityMaterially) {
  auto [X, y] = ridge_data();
  auto fit_with_interval = [&](std::size_t interval) {
    ml::Mlp net({2, 8, 1});
    Rng rng(7);
    net.randomize(rng);
    ml::TrainOptions options;
    options.bayes_update_interval = interval;
    return ml::train_lm_bayes(net, X, y, options).mse;
  };
  // Both cadences must fit the surface well in absolute terms; their exact
  // MSEs differ because the alpha/beta trajectory changes the optimum.
  EXPECT_LT(fit_with_interval(1), 1e-2);
  EXPECT_LT(fit_with_interval(3), 1e-2);
}

TEST(TrainExtra, EmptyTrainingSetIsRejectedGracefully) {
  ml::Mlp net({2, 4, 1});
  const auto result = ml::train_lm_bayes(net, {}, {});
  EXPECT_EQ(result.epochs, 0u);
}

TEST(TrainExtra, MlpParamPlumbingValidatesSizes) {
  ml::Mlp net({2, 3, 1});
  EXPECT_THROW(net.set_params(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(net.forward(std::vector<double>{1.0, 2.0, 3.0}), std::invalid_argument);
  std::vector<double> grad(net.param_count() + 1);
  EXPECT_THROW(net.forward_with_gradient(std::vector<double>{1.0, 2.0}, grad),
               std::invalid_argument);
}

TEST(OnlineTunerPrefetch, WarmCacheAvoidsOptimizerInCriticalWindow) {
  core::RafikiOptions options;
  options.workload_grid = {0.0, 0.5, 1.0};
  options.n_configs = 8;
  options.collect.measure.ops = 12000;
  options.collect.measure.warmup_ops = 2000;
  options.base_workload.initial_keys = 10000;
  options.ensemble.n_nets = 4;
  options.ensemble.train.max_epochs = 40;
  options.ga.population = 20;
  options.ga.generations = 15;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());

  core::OnlineTuner tuner(rafiki);
  tuner.on_window(0.9);
  EXPECT_EQ(tuner.optimizer_runs(), 1u);

  // Prefetch the write-heavy bucket ahead of the anticipated burst...
  tuner.prefetch(0.1);
  EXPECT_EQ(tuner.optimizer_runs(), 2u);
  // ...so the switch itself triggers no new optimizer run.
  const auto decision = tuner.on_window(0.1);
  EXPECT_TRUE(decision.reconfigured);
  EXPECT_EQ(tuner.optimizer_runs(), 2u);

  // Prefetching an already-cached bucket is free.
  tuner.prefetch(0.1);
  EXPECT_EQ(tuner.optimizer_runs(), 2u);
}

}  // namespace
}  // namespace rafiki
