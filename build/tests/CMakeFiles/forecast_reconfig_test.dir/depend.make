# Empty dependencies file for forecast_reconfig_test.
# This may be replaced when dependencies are built.
