// Reconfiguration planning — the paper's stated future work (Section 6: "we
// are developing algorithms for the actual online reconfiguration process
// keeping the downtime to a minimum").
//
// Applying a new configuration requires restarting datastore processes.
// Two strategies are modelled:
//   * full restart — every node restarts at once: the window is short but
//     capacity drops to zero, and every node then re-warms its caches;
//   * rolling restart — one node at a time: with replication factor >= 2 the
//     survivors keep serving, so capacity never drops below (n-1)/n minus
//     the warm-up penalty of the rejoining node.
// The planner produces a capacity timeline and the operations lost relative
// to steady state, which the online tuner weighs against the expected gain
// of the new configuration.
#pragma once

#include <cstddef>
#include <vector>

namespace rafiki::core {

struct ReconfigModel {
  /// Wall seconds for one node to drain, restart and rejoin.
  double restart_s = 30.0;
  /// Post-restart window during which the node serves with cold caches.
  double cache_warm_s = 45.0;
  /// Fraction of the node's capacity lost while its caches warm.
  double warm_penalty = 0.35;
  /// Offered load as a fraction of peak cluster capacity. Survivors absorb a
  /// restarting node's share up to their headroom — the mechanism that makes
  /// rolling restarts cheap: with utilization below (n-1)/n, taking one node
  /// out loses nothing at all.
  double offered_utilization = 0.75;
};

/// One segment of the transition: relative cluster capacity over [begin, end).
struct CapacitySegment {
  double begin_s = 0.0;
  double end_s = 0.0;
  /// Fraction of the *offered* load actually served over the segment.
  double relative_capacity = 1.0;
};

struct ReconfigOutcome {
  double duration_s = 0.0;
  /// Operations not served during the transition vs steady state.
  double ops_lost = 0.0;
  /// Worst instantaneous capacity during the transition (0 = full outage).
  double min_relative_capacity = 1.0;
  std::vector<CapacitySegment> timeline;
};

/// All nodes restart simultaneously.
ReconfigOutcome plan_full_restart(int nodes, double steady_ops_per_s,
                                  const ReconfigModel& model = {});

/// Nodes restart one at a time; requires replication so survivors hold all
/// data (replication_factor >= 2 for nodes >= 2). A single-node "cluster"
/// degenerates to a full restart.
ReconfigOutcome plan_rolling_restart(int nodes, double steady_ops_per_s,
                                     const ReconfigModel& model = {});

/// Decision helper for the online tuner: does the expected throughput gain
/// over `horizon_s` (e.g. the remaining regime duration) outweigh the ops
/// lost applying the change with the given plan?
bool reconfiguration_pays_off(double current_ops_per_s, double tuned_ops_per_s,
                              double horizon_s, const ReconfigOutcome& plan);

}  // namespace rafiki::core
