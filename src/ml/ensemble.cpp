#include "ml/ensemble.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "util/sync.h"

namespace rafiki::ml {

void SurrogateEnsemble::fit(const std::vector<std::vector<double>>& X,
                            std::span<const double> y, const EnsembleOptions& options) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("SurrogateEnsemble::fit: bad training set");
  }
  norm_in_.fit_columns(X);
  norm_out_.fit(y);

  std::vector<std::vector<double>> Xn(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) Xn[i] = norm_in_.map_row(X[i]);
  std::vector<double> yn(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) yn[i] = norm_out_.map(y[i]);

  std::vector<std::size_t> layers;
  layers.push_back(X.front().size());
  layers.insert(layers.end(), options.hidden.begin(), options.hidden.end());
  layers.push_back(1);

  // Pre-split one RNG per member in serial seed order, then train members in
  // parallel: each task touches only its own net/error/RNG slot, so the
  // weights are bit-identical to the old serial loop at any thread count.
  Rng rng(options.seed);
  std::vector<Rng> net_rngs;
  net_rngs.reserve(options.n_nets);
  for (std::size_t k = 0; k < options.n_nets; ++k) net_rngs.push_back(rng.split());

  nets_.assign(options.n_nets, Mlp(layers));
  errors_.assign(options.n_nets, 0.0);

  std::size_t threads =
      options.train_threads ? options.train_threads
                            : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  threads = std::min(threads, options.n_nets);

  const auto train_member = [&](std::size_t k) {
    nets_[k].randomize(net_rngs[k]);
    const auto result = train_lm_bayes(nets_[k], Xn, yn, options.train);
    errors_[k] = result.mse;
  };

  if (threads <= 1) {
    for (std::size_t k = 0; k < options.n_nets; ++k) train_member(k);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    // Local mutex: GUARDED_BY cannot annotate captured locals, so the
    // contract here is the surrounding scope — first_error is only touched
    // under error_mutex inside the workers and read after all joins.
    Mutex error_mutex;
    const auto worker = [&] {
      for (std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
           k < options.n_nets; k = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
          train_member(k);
        } catch (...) {
          MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
    worker();
    for (auto& thread : pool) thread.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Prune the worst-performing fraction by training error.
  const auto n_prune = static_cast<std::size_t>(
      options.prune_fraction * static_cast<double>(nets_.size()));
  std::vector<std::size_t> order(nets_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return errors_[a] < errors_[b]; });
  active_.assign(nets_.size(), false);
  for (std::size_t i = 0; i + n_prune < order.size(); ++i) active_[order[i]] = true;
}

std::size_t SurrogateEnsemble::active_nets() const noexcept {
  return static_cast<std::size_t>(std::count(active_.begin(), active_.end(), true));
}

double SurrogateEnsemble::predict(std::span<const double> x) const {
  if (nets_.empty()) throw std::logic_error("SurrogateEnsemble::predict: not trained");
  const auto xn = norm_in_.map_row(x);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 0; k < nets_.size(); ++k) {
    if (!active_[k]) continue;
    sum += nets_[k].forward(xn);
    ++count;
  }
  return norm_out_.unmap(sum / static_cast<double>(count ? count : 1));
}

SurrogateEnsemble::Prediction SurrogateEnsemble::predict_with_uncertainty(
    std::span<const double> x) const {
  return predict_batch_with_uncertainty({{x.begin(), x.end()}}).front();
}

std::vector<double> SurrogateEnsemble::predict_batch(
    const std::vector<std::vector<double>>& x_rows) const {
  if (nets_.empty()) throw std::logic_error("SurrogateEnsemble::predict_batch: not trained");
  if (x_rows.empty()) return {};
  Matrix packed(x_rows.size(), norm_in_.features());
  for (std::size_t r = 0; r < x_rows.size(); ++r) {
    if (x_rows[r].size() != norm_in_.features()) {
      throw std::invalid_argument("SurrogateEnsemble::predict_batch: row size");
    }
    for (std::size_t c = 0; c < norm_in_.features(); ++c) packed(r, c) = x_rows[r][c];
  }
  return predict_batch(packed);
}

std::vector<double> SurrogateEnsemble::predict_batch(const Matrix& x_rows) const {
  if (nets_.empty()) throw std::logic_error("SurrogateEnsemble::predict_batch: not trained");
  if (x_rows.rows() == 0) return {};
  if (x_rows.cols() != norm_in_.features()) {
    throw std::invalid_argument("SurrogateEnsemble::predict_batch: row size");
  }
  const std::size_t n = x_rows.rows();

  Matrix xn(n, norm_in_.features());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < norm_in_.features(); ++c) {
      xn(r, c) = norm_in_.map(x_rows(r, c), c);
    }
  }

  // Member order matches predict()'s loop, so the per-row sums round the
  // same way and the batched path is bit-for-bit identical. One scratch and
  // one member buffer serve every net, so the per-batch cost stays in the
  // affine/tanh kernels rather than the allocator.
  std::vector<double> sum(n, 0.0);
  std::vector<double> member(n);
  Mlp::BatchScratch scratch;
  std::size_t count = 0;
  for (std::size_t k = 0; k < nets_.size(); ++k) {
    if (!active_[k]) continue;
    nets_[k].forward_batch(xn, member, scratch);
    for (std::size_t r = 0; r < n; ++r) sum[r] += member[r];
    ++count;
  }
  std::vector<double> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = norm_out_.unmap(sum[r] / static_cast<double>(count ? count : 1));
  }
  return out;
}

std::vector<SurrogateEnsemble::Prediction> SurrogateEnsemble::predict_batch_with_uncertainty(
    const std::vector<std::vector<double>>& x_rows) const {
  if (nets_.empty()) {
    throw std::logic_error("SurrogateEnsemble::predict_batch_with_uncertainty: not trained");
  }
  if (x_rows.empty()) return {};
  Matrix packed(x_rows.size(), norm_in_.features());
  for (std::size_t r = 0; r < x_rows.size(); ++r) {
    if (x_rows[r].size() != norm_in_.features()) {
      throw std::invalid_argument("SurrogateEnsemble::predict_batch_with_uncertainty: row size");
    }
    for (std::size_t c = 0; c < norm_in_.features(); ++c) packed(r, c) = x_rows[r][c];
  }
  return predict_batch_with_uncertainty(packed);
}

std::vector<SurrogateEnsemble::Prediction> SurrogateEnsemble::predict_batch_with_uncertainty(
    const Matrix& x_rows) const {
  if (nets_.empty()) {
    throw std::logic_error("SurrogateEnsemble::predict_batch_with_uncertainty: not trained");
  }
  if (x_rows.rows() == 0) return {};
  if (x_rows.cols() != norm_in_.features()) {
    throw std::invalid_argument("SurrogateEnsemble::predict_batch_with_uncertainty: row size");
  }
  const std::size_t n = x_rows.rows();

  Matrix xn(n, norm_in_.features());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < norm_in_.features(); ++c) {
      xn(r, c) = norm_in_.map(x_rows(r, c), c);
    }
  }

  std::vector<double> sum(n, 0.0);
  std::vector<double> sumsq(n, 0.0);
  std::vector<double> member(n);
  Mlp::BatchScratch scratch;
  std::size_t count = 0;
  for (std::size_t k = 0; k < nets_.size(); ++k) {
    if (!active_[k]) continue;
    nets_[k].forward_batch(xn, member, scratch);
    for (std::size_t r = 0; r < n; ++r) {
      sum[r] += member[r];
      sumsq[r] += member[r] * member[r];
    }
    ++count;
  }

  std::vector<Prediction> out(n);
  const auto denom = static_cast<double>(count ? count : 1);
  for (std::size_t r = 0; r < n; ++r) {
    const double mean_n = sum[r] / denom;
    out[r].mean = norm_out_.unmap(mean_n);
    if (count > 1) {
      const double var_n =
          std::max(0.0, (sumsq[r] - sum[r] * mean_n) / static_cast<double>(count - 1));
      out[r].stddev = norm_out_.unmap_delta(std::sqrt(var_n));
    }
  }
  return out;
}

}  // namespace rafiki::ml
