// Measurement harness — the YCSB-equivalent "shooter" protocol of Section
// 4.2: every data-collection event runs against a freshly reset server
// (paper: a fresh Docker container) that is bulk-loaded with the dataset,
// warmed with a short burst of mixed traffic, and then benchmarked for a
// fixed operation budget standing in for the 5-minute measurement window.
#pragma once

#include <cstdint>

#include "engine/config.h"
#include "engine/server.h"
#include "workload/spec.h"

namespace rafiki::collect {

struct MeasureOptions {
  /// Operations in the measured window (the "5-minute benchmark").
  std::size_t ops = 80000;
  /// Unmeasured mixed traffic executed first so flush/compaction activity is
  /// in steady state when measurement begins.
  std::size_t warmup_ops = 8000;
  double warmup_read_ratio = 0.3;
  /// Harness measurement noise (multiplicative sd on reported throughput).
  double noise_sd = 0.015;
  /// Update-history duplication handed to Server::preload.
  double version_dup = 0.65;
  std::uint64_t seed = 1;
  /// Benchmark the ScyllaDB engine model instead of the Cassandra one.
  bool scylla = false;
  /// Forwarded to RunOptions for time-series experiments (Figure 10).
  bool record_windows = false;
  double window_s = 10.0;
  engine::Hardware hardware{};
};

/// One full measurement: fresh server + preload + warmup + benchmark.
engine::RunStats measure(const engine::Config& config, const workload::WorkloadSpec& workload,
                         const MeasureOptions& options = {});

/// Convenience: mean throughput only.
double measure_throughput(const engine::Config& config,
                          const workload::WorkloadSpec& workload,
                          const MeasureOptions& options = {});

}  // namespace rafiki::collect
