file(REMOVE_RECURSE
  "CMakeFiles/engine_cluster_test.dir/engine_cluster_test.cpp.o"
  "CMakeFiles/engine_cluster_test.dir/engine_cluster_test.cpp.o.d"
  "engine_cluster_test"
  "engine_cluster_test.pdb"
  "engine_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
