// Section 4.8's search-speed analysis: the GA over the trained surrogate
// evaluates thousands of configurations per second, four orders of magnitude
// faster than measuring configurations on the live system (~2 minutes of
// loading + 5 minutes of benchmarking per sample), while reaching within 15%
// (Cassandra) / 9.5% (ScyllaDB) of the best configuration an exhaustive
// search finds.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "collect/runner.h"
#include "opt/baselines.h"

using namespace rafiki;

namespace {

struct EngineResult {
  double rafiki_measured = 0.0;
  double exhaustive_best = 0.0;
  double within_pct = 0.0;
  std::size_t surrogate_evals = 0;
  double ga_seconds = 0.0;
  double surrogate_eval_us = 0.0;
  double surrogate_batch_eval_us = 0.0;
};

EngineResult run_engine(bool scylla) {
  auto options = benchutil::paper_options(scylla);
  // Longer windows for ScyllaDB so its tuner fluctuations average out.
  if (scylla) options.collect.measure.ops = 160000;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());

  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 616161;
  const double rr = 0.9;
  auto measure_at = [&](const engine::Config& config) {
    workload::WorkloadSpec workload = options.base_workload;
    workload.read_ratio = rr;
    return collect::measure_throughput(config, workload, verify);
  };

  EngineResult result;
  const auto optimized = rafiki.optimize(rr);
  result.surrogate_evals = optimized.surrogate_evaluations;
  result.ga_seconds = optimized.wall_seconds;
  result.rafiki_measured = measure_at(optimized.config);

  // Exhaustive search on the live store (coarse grid, ~108 configs).
  const auto space = rafiki.key_space();
  const std::vector<std::size_t> levels = {2, 3, 3, 3, 2};
  const auto grid = opt::grid_search(
      space,
      [&](std::span<const double> point) {
        return measure_at(
            engine::Config::from_vector(engine::key_params(), {point.begin(), point.end()}));
      },
      levels);
  result.exhaustive_best = grid.best_fitness;
  result.within_pct =
      100.0 * (grid.best_fitness - result.rafiki_measured) / grid.best_fitness;

  // Surrogate evaluation latency.
  // det:ok(wall-clock): measuring latency is this benchmark's purpose
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kEvals = 20000;
  double sink = 0.0;
  for (int i = 0; i < kEvals; ++i) {
    sink += rafiki.predict(rr, engine::Config::defaults());
  }
  // det:ok(wall-clock): measuring latency is this benchmark's purpose
  const auto t1 = std::chrono::steady_clock::now();
  result.surrogate_eval_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kEvals;

  // Batched evaluation latency: the kernel the GA population loop and the
  // serve layer's micro-batcher now run on (Rafiki::predict_batch).
  constexpr std::size_t kBatch = 64;
  const std::vector<engine::Config> batch(kBatch, engine::Config::defaults());
  // det:ok(wall-clock): measuring latency is this benchmark's purpose
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvals / static_cast<int>(kBatch); ++i) {
    const auto out = rafiki.predict_batch(rr, batch);
    sink += out.front();
  }
  // det:ok(wall-clock): measuring latency is this benchmark's purpose
  const auto t3 = std::chrono::steady_clock::now();
  const int batched_evals = (kEvals / static_cast<int>(kBatch)) * static_cast<int>(kBatch);
  result.surrogate_batch_eval_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / batched_evals;
  if (sink == -1.0) std::printf("?");  // defeat over-eager optimizers
  return result;
}

}  // namespace

int main() {
  benchutil::note("training + searching on the Cassandra model...");
  const auto cassandra = run_engine(false);
  benchutil::note("training + searching on the ScyllaDB model...");
  const auto scylla = run_engine(true);

  // Live-measurement cost per configuration sample, as the paper estimates:
  // ~2 minutes of data loading plus 5 minutes of stable measurement.
  const double live_sample_seconds = 7.0 * 60.0;
  const double exhaustive_seconds =
      static_cast<double>(cassandra.surrogate_evals) * live_sample_seconds;
  const double speedup = exhaustive_seconds / std::max(cassandra.ga_seconds, 1e-9);

  Table table({"engine", "GA+surrogate best (measured)", "exhaustive best",
               "within % of best", "surrogate evals", "GA wall time"});
  table.add_row({"Cassandra", Table::ops(cassandra.rafiki_measured),
                 Table::ops(cassandra.exhaustive_best), Table::pct(cassandra.within_pct),
                 std::to_string(cassandra.surrogate_evals),
                 Table::num(cassandra.ga_seconds, 3) + " s"});
  table.add_row({"ScyllaDB", Table::ops(scylla.rafiki_measured),
                 Table::ops(scylla.exhaustive_best), Table::pct(scylla.within_pct),
                 std::to_string(scylla.surrogate_evals),
                 Table::num(scylla.ga_seconds, 3) + " s"});
  benchutil::emit(table, "Section 4.8: GA+surrogate vs exhaustive search");

  std::printf("\nsurrogate evaluation: %.1f us/sample (paper: 45 us)\n",
              cassandra.surrogate_eval_us);
  std::printf("batched surrogate evaluation (batch 64): %.2f us/sample (%.1fx faster)\n",
              cassandra.surrogate_batch_eval_us,
              cassandra.surrogate_eval_us /
                  std::max(cassandra.surrogate_batch_eval_us, 1e-9));
  std::printf("equivalent live sampling for %zu evals: %.0f hours; GA took %.2f s\n",
              cassandra.surrogate_evals, exhaustive_seconds / 3600.0,
              cassandra.ga_seconds);

  benchutil::compare("Cassandra within-best gap", "15%", Table::pct(cassandra.within_pct));
  benchutil::compare("ScyllaDB within-best gap", "9.5%", Table::pct(scylla.within_pct));
  benchutil::compare("search-time ratio vs live exhaustive", ">= 10,000x",
                     Table::num(speedup / 1000.0, 0) + ",000x-ish (" +
                         Table::num(speedup, 0) + "x)");
  benchutil::compare("surrogate evals per optimization", "~3,350",
                     std::to_string(cassandra.surrogate_evals));
  return 0;
}
