#include "serve/stats.h"

#include <algorithm>

namespace rafiki::serve {

const char* endpoint_name(Endpoint endpoint) noexcept {
  switch (endpoint) {
    case Endpoint::kPredict:
      return "Predict";
    case Endpoint::kOptimize:
      return "Optimize";
    case Endpoint::kObserveWindow:
      return "ObserveWindow";
  }
  return "?";
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "Ok";
    case Status::kOverloaded:
      return "Overloaded";
    case Status::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::kNotReady:
      return "NotReady";
    case Status::kShuttingDown:
      return "ShuttingDown";
  }
  return "?";
}

ServiceStats::ServiceStats(StatsOptions options)
    : options_(options),
      batch_hist_(1.0, static_cast<double>(options.max_batch) + 1.0,
                  std::max<std::size_t>(options.max_batch, 1)),
      retrain_hist_(0.0, options.retrain_hi_us, std::max<std::size_t>(options.retrain_bins, 1)) {
  per_endpoint_.reserve(kEndpointCount);
  for (std::size_t i = 0; i < kEndpointCount; ++i) per_endpoint_.emplace_back(options_);
}

void ServiceStats::record_accept(Endpoint endpoint, std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++per_endpoint_[static_cast<std::size_t>(endpoint)].counters.accepted;
  depth_stats_.add(static_cast<double>(queue_depth));
}

void ServiceStats::record_reject(Endpoint endpoint, Status reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& counters = per_endpoint_[static_cast<std::size_t>(endpoint)].counters;
  if (reason == Status::kShuttingDown) {
    ++counters.rejected_shutdown;
  } else {
    ++counters.rejected_overload;
  }
}

void ServiceStats::record_done(Endpoint endpoint, Status status, double latency_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& per = per_endpoint_[static_cast<std::size_t>(endpoint)];
  ++per.counters.completed;
  switch (status) {
    case Status::kOk:
      ++per.counters.ok;
      break;
    case Status::kDeadlineExceeded:
      ++per.counters.rejected_deadline;
      break;
    case Status::kNotReady:
      ++per.counters.not_ready;
      break;
    // These two were *accepted* and only failed afterwards (e.g. drained
    // with kShuttingDown by stop()); they must not pollute the
    // admission-reject counters that record_reject owns.
    case Status::kShuttingDown:
      ++per.counters.failed_shutdown;
      break;
    case Status::kOverloaded:
      ++per.counters.failed_overload;
      break;
  }
  per.latency.add(latency_us);
  per.latency_stats.add(latency_us);
}

void ServiceStats::record_stale(Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++per_endpoint_[static_cast<std::size_t>(endpoint)].counters.stale;
}

void ServiceStats::record_retrain(double latency_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++retrain_.runs;
  retrain_hist_.add(latency_us);
  retrain_stats_.add(latency_us);
}

void ServiceStats::record_retrain_enqueue(std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  retrain_depth_stats_.add(static_cast<double>(queue_depth));
}

void ServiceStats::record_retrain_coalesced() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++retrain_.coalesced;
}

void ServiceStats::record_retrain_rejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++retrain_.rejected;
}

void ServiceStats::record_retrain_cancelled(std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  retrain_.cancelled += count;
}

void ServiceStats::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batch_hist_.add(static_cast<double>(batch_size));
  batch_stats_.add(static_cast<double>(batch_size));
}

ServiceStats::Counters ServiceStats::counters(Endpoint endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_endpoint_[static_cast<std::size_t>(endpoint)].counters;
}

ServiceStats::Counters ServiceStats::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters sum;
  for (const auto& per : per_endpoint_) {
    sum.accepted += per.counters.accepted;
    sum.completed += per.counters.completed;
    sum.ok += per.counters.ok;
    sum.rejected_overload += per.counters.rejected_overload;
    sum.rejected_deadline += per.counters.rejected_deadline;
    sum.not_ready += per.counters.not_ready;
    sum.rejected_shutdown += per.counters.rejected_shutdown;
    sum.failed_shutdown += per.counters.failed_shutdown;
    sum.failed_overload += per.counters.failed_overload;
    sum.stale += per.counters.stale;
  }
  return sum;
}

ServiceStats::RetrainCounters ServiceStats::retrain_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retrain_;
}

double ServiceStats::retrain_latency_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retrain_hist_.quantile(q);
}

double ServiceStats::mean_retrain_latency_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retrain_stats_.mean();
}

double ServiceStats::mean_retrain_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retrain_depth_stats_.mean();
}

double ServiceStats::max_retrain_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retrain_depth_stats_.count() ? retrain_depth_stats_.max() : 0.0;
}

double ServiceStats::latency_quantile(Endpoint endpoint, double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_endpoint_[static_cast<std::size_t>(endpoint)].latency.quantile(q);
}

double ServiceStats::mean_latency_us(Endpoint endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_endpoint_[static_cast<std::size_t>(endpoint)].latency_stats.mean();
}

double ServiceStats::mean_batch_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batch_stats_.mean();
}

double ServiceStats::max_batch_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batch_stats_.count() ? batch_stats_.max() : 0.0;
}

double ServiceStats::batch_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batch_hist_.quantile(q);
}

double ServiceStats::mean_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_stats_.mean();
}

double ServiceStats::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_stats_.count() ? depth_stats_.max() : 0.0;
}

std::uint64_t ServiceStats::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

Table ServiceStats::table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Table table({"endpoint", "accepted", "ok", "stale", "overloaded", "deadline",
               "not ready", "failed", "p50 us", "p99 us", "mean us"});
  for (std::size_t i = 0; i < per_endpoint_.size(); ++i) {
    const auto& per = per_endpoint_[i];
    table.add_row({endpoint_name(static_cast<Endpoint>(i)),
                   std::to_string(per.counters.accepted), std::to_string(per.counters.ok),
                   std::to_string(per.counters.stale),
                   std::to_string(per.counters.rejected_overload),
                   std::to_string(per.counters.rejected_deadline),
                   std::to_string(per.counters.not_ready),
                   std::to_string(per.counters.failed_shutdown +
                                  per.counters.failed_overload),
                   Table::num(per.latency.quantile(0.5), 1),
                   Table::num(per.latency.quantile(0.99), 1),
                   Table::num(per.latency_stats.mean(), 1)});
  }
  return table;
}

void ServiceStats::record_connection_open() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wire_.connections_accepted;
}

void ServiceStats::record_connection_close() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wire_.connections_closed;
}

void ServiceStats::record_wire_read(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  wire_.bytes_in += bytes;
}

void ServiceStats::record_wire_write(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  wire_.bytes_out += bytes;
}

void ServiceStats::record_frame_in() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wire_.frames_in;
}

void ServiceStats::record_frame_out() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wire_.frames_out;
}

void ServiceStats::record_decode_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wire_.decode_errors;
}

void ServiceStats::record_error_frame() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wire_.error_frames_sent;
}

void ServiceStats::record_wire_latency(Endpoint endpoint, double latency_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& per = per_endpoint_[static_cast<std::size_t>(endpoint)];
  per.wire_latency.add(latency_us);
  per.wire_latency_stats.add(latency_us);
}

ServiceStats::WireCounters ServiceStats::wire_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wire_;
}

double ServiceStats::wire_latency_quantile(Endpoint endpoint, double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_endpoint_[static_cast<std::size_t>(endpoint)].wire_latency.quantile(q);
}

double ServiceStats::mean_wire_latency_us(Endpoint endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_endpoint_[static_cast<std::size_t>(endpoint)].wire_latency_stats.mean();
}

Table ServiceStats::wire_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Table table({"metric", "value"});
  table.add_row({"connections accepted", std::to_string(wire_.connections_accepted)});
  table.add_row({"connections active", std::to_string(wire_.active())});
  table.add_row({"frames in", std::to_string(wire_.frames_in)});
  table.add_row({"frames out", std::to_string(wire_.frames_out)});
  table.add_row({"decode errors", std::to_string(wire_.decode_errors)});
  table.add_row({"error frames sent", std::to_string(wire_.error_frames_sent)});
  table.add_row({"bytes in", std::to_string(wire_.bytes_in)});
  table.add_row({"bytes out", std::to_string(wire_.bytes_out)});
  for (std::size_t i = 0; i < per_endpoint_.size(); ++i) {
    const auto& per = per_endpoint_[i];
    const std::string name = endpoint_name(static_cast<Endpoint>(i));
    table.add_row({name + " wire p50 us", Table::num(per.wire_latency.quantile(0.5), 1)});
    table.add_row({name + " wire p99 us", Table::num(per.wire_latency.quantile(0.99), 1)});
  }
  return table;
}

}  // namespace rafiki::serve
