
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/anova.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/anova.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/anova.cpp.o.d"
  "/root/repo/src/ml/dtree.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/dtree.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/dtree.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/ensemble.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/trainbr.cpp" "src/ml/CMakeFiles/rafiki_ml.dir/trainbr.cpp.o" "gcc" "src/ml/CMakeFiles/rafiki_ml.dir/trainbr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rafiki_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
