# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ml_mlp_test[1]_include.cmake")
include("/root/repo/build/tests/ml_trainbr_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/engine_storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_compaction_test[1]_include.cmake")
include("/root/repo/build/tests/engine_server_test[1]_include.cmake")
include("/root/repo/build/tests/engine_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/ml_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/ml_anova_test[1]_include.cmake")
include("/root/repo/build/tests/ml_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/collect_test[1]_include.cmake")
include("/root/repo/build/tests/core_anova_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/engine_tombstone_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/engine_whitebox_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_partition_test[1]_include.cmake")
include("/root/repo/build/tests/ml_extra_test[1]_include.cmake")
