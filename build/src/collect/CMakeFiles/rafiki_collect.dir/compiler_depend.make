# Empty compiler generated dependencies file for rafiki_collect.
# This may be replaced when dependencies are built.
