// net::EventPoller — the IO-readiness engine behind net::Server.
//
// Two backends sit behind one interface:
//
//   * kPoll  — a persistent ::poll() set (level-triggered). The pollfd array
//     is maintained incrementally (add/mod/del), never rebuilt per pass, but
//     the kernel still scans every registered fd on each wait. Portable
//     fallback; kept fully testable everywhere.
//   * kEpoll — edge-triggered epoll (Linux only). Every fd is registered
//     once with EPOLLIN|EPOLLOUT|EPOLLET and never re-armed: wait() is
//     O(ready), and interest changes never touch the kernel.
//
// Edge-trigger contract (what the server relies on):
//
//   * A readiness event is reported once per *transition* (and once at
//     registration if the fd is already ready). The consumer must remember
//     reported readiness in its own state ("read-ready" / "write-ready"
//     flags) and keep consuming until the syscall says EAGAIN — only EAGAIN
//     clears the remembered state, because only a fresh transition will be
//     reported again.
//   * mod() is a level-triggered concern (POLLIN/POLLOUT interest masks);
//     the epoll backend accepts it as a no-op since it always subscribes to
//     both directions and lets the consumer's flags do the filtering.
//
// Waker lifecycle: the Waker below is the cross-thread doorbell (eventfd on
// Linux, a pipe elsewhere). Producers may hold it past the consumer's exit —
// the server ref-counts it — so it owns its fds and wake() stays safe after
// the loop stops reading. A relaxed-free pending flag coalesces wake
// syscalls: any number of producer wakes between two consumer drains cost
// one write().
#pragma once

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rafiki::net {

/// Which readiness engine an IO loop runs on.
enum class IoBackend : std::uint8_t {
  kPoll = 0,   ///< level-triggered ::poll(); portable fallback
  kEpoll = 1,  ///< edge-triggered epoll; Linux only
};

/// "poll" / "epoll".
const char* io_backend_name(IoBackend backend) noexcept;
/// Whether this build can construct the backend (epoll is Linux-only).
bool io_backend_available(IoBackend backend) noexcept;
/// Platform default: epoll where available, poll elsewhere.
IoBackend default_io_backend() noexcept;
/// Parses "poll"/"epoll" into `out`; false on anything else.
bool parse_io_backend(const char* text, IoBackend& out) noexcept;
/// Every backend this build can run, default first (for test/bench sweeps).
std::vector<IoBackend> available_io_backends();

/// One ready fd out of EventPoller::wait(). `data` is whatever the caller
/// registered; `fd` disambiguates registrations that share a data pointer
/// (the server's waker/listener sentinels).
struct PollerEvent {
  int fd = -1;
  void* data = nullptr;
  bool readable = false;
  bool writable = false;
  /// POLLERR/POLLHUP (or epoll equivalents). The consumer should attempt a
  /// read: it surfaces the error/EOF through the normal recv() path.
  bool hangup = false;
};

/// Readiness multiplexer. Not thread-safe: one loop thread owns an instance
/// (registration, waits, and teardown all happen there).
class EventPoller {
 public:
  virtual ~EventPoller() = default;

  /// Registers fd. Level-triggered backends honor the want_* interest mask
  /// (adjust later via mod()); the edge-triggered backend subscribes to both
  /// directions once and ignores the mask. False on kernel refusal.
  virtual bool add(int fd, bool want_read, bool want_write, void* data) = 0;
  /// Updates the interest mask (level-triggered backends only; edge-triggered
  /// registrations never need re-arming). False if fd is unknown.
  virtual bool mod(int fd, bool want_read, bool want_write) = 0;
  /// Deregisters fd. Call before close(): a closed fd silently vanishes from
  /// epoll but would poison a poll() set. False if fd is unknown.
  virtual bool del(int fd) = 0;
  /// Blocks up to timeout_ms (-1 = forever, 0 = non-blocking) and appends
  /// ready fds to `out` (which is not cleared). Returns the number appended.
  /// EINTR reports as 0 events so the caller re-evaluates deadlines instead
  /// of silently restarting the full timeout.
  virtual std::size_t wait(int timeout_ms, std::vector<PollerEvent>& out) = 0;

  virtual IoBackend backend() const noexcept = 0;
  /// True when readiness is reported per transition rather than per wait —
  /// the consumer must keep its own ready flags (see contract above).
  virtual bool edge_triggered() const noexcept = 0;

  /// Constructs the backend, or nullptr when it is unavailable on this
  /// platform / the kernel refuses (epoll_create failure).
  static std::unique_ptr<EventPoller> create(IoBackend backend);
};

/// Cross-thread doorbell for an IO loop: eventfd on Linux, a pipe elsewhere.
/// wake() is safe from any thread and after the consuming loop has exited;
/// drain() belongs to the single consumer thread.
class Waker {
 public:
  Waker();
  ~Waker();
  Waker(const Waker&) = delete;
  Waker& operator=(const Waker&) = delete;

  bool valid() const noexcept { return read_fd_ >= 0; }
  /// The fd the consumer registers for read readiness.
  int read_fd() const noexcept { return read_fd_; }

  /// Rouses the consumer. Coalesced: while a previous wake is still
  /// undrained, this is a single atomic exchange and no syscall.
  void wake() noexcept;
  /// Consumer side: swallow pending wake bytes and re-open the coalescing
  /// window. Must be called every time the read fd reports readable (an
  /// edge-triggered registration is not re-armed until the counter drains).
  void drain() noexcept;

 private:
  int read_fd_ = -1;
  /// Equals read_fd_ when backed by an eventfd; the pipe's write end
  /// otherwise.
  int write_fd_ = -1;
  /// True from a producer's wake() until the consumer's next drain().
  /// Exchanges on both sides (acq_rel) keep the RMW chain on this flag
  /// totally ordered, which is what makes skipping the syscall safe: a
  /// producer that reads `true` knows the corresponding wake byte has not
  /// been consumed by a completed drain yet.
  std::atomic<bool> pending_{false};
};

/// Retries fn() while it fails with EINTR. Every raw byte-moving syscall in
/// src/net/ (send/recv/accept4/read/write) goes through this; poll and
/// epoll_wait instead surface EINTR as "0 events" so callers re-evaluate
/// drain deadlines rather than restarting the full timeout.
template <typename Fn>
auto retry_eintr(Fn&& fn) -> decltype(fn()) {
  for (;;) {
    const auto r = fn();
    if (r >= 0 || errno != EINTR) return r;
  }
}

}  // namespace rafiki::net
