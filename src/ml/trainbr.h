// Levenberg-Marquardt training with Bayesian regularization — a from-scratch
// equivalent of MATLAB's `trainbr`, which the paper uses to train its
// surrogate networks (Section 4.3).
//
// The objective is F = beta * E_D + alpha * E_W with E_D = sum of squared
// errors and E_W = sum of squared weights. After every accepted LM step the
// hyperparameters are re-estimated with MacKay's evidence framework:
//   gamma = P - alpha * trace((beta J^T J + alpha I)^-1)   (effective params)
//   alpha = gamma / (2 E_W),     beta = (N - gamma) / (2 E_D)
// which automatically "reduces the effective number of parameters" exactly
// as the paper describes, preventing overfitting on ~200 samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/mlp.h"

namespace rafiki::ml {

struct TrainOptions {
  /// The paper trains "until convergence or 200 epochs, whichever first".
  std::size_t max_epochs = 200;
  double mu_initial = 5e-3;
  double mu_increase = 10.0;
  double mu_decrease = 0.1;
  double mu_max = 1e10;
  double min_gradient = 1e-7;
  /// Disable to get plain Levenberg-Marquardt (fixed alpha = 0).
  bool bayesian_regularization = true;
  /// Re-estimate alpha/beta every k-th accepted step. The evidence update
  /// needs an O(P^3) trace of an inverse; hyperparameters drift slowly, so
  /// updating every few steps costs accuracy nothing and saves ~40% of
  /// training time.
  std::size_t bayes_update_interval = 3;
};

struct TrainResult {
  double mse = 0.0;          ///< final training mean squared error
  double alpha = 0.0;        ///< final weight-decay strength
  double beta = 0.0;         ///< final inverse noise variance
  double gamma = 0.0;        ///< effective number of parameters
  std::size_t epochs = 0;
  bool converged = false;
};

/// Trains `net` in place on rows `X` (already normalized, one row per
/// sample) against targets `y`. Returns diagnostics.
TrainResult train_lm_bayes(Mlp& net, const std::vector<std::vector<double>>& X,
                           std::span<const double> y, const TrainOptions& options = {});

}  // namespace rafiki::ml
