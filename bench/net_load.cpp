// Closed-loop load benchmark for the RPC front-end (net::Server + Client
// over loopback), the wire counterpart of serve_load:
//
//   A. Wire load — a fleet of closed-loop clients (one net::Client per
//      thread) hammers Predict through real sockets across a
//      {clients} x {pipeline depth} grid: wire QPS, request p50/p99 as the
//      client observes them, and the server-side wire latency histograms
//      from ServiceStats. Gates: zero transport failures, zero decode
//      errors, frames_out == frames_in.
//   B. Mixed endpoints — Predict with periodic ObserveWindow regime shifts
//      through the wire (the paper's dynamic-workload loop, now with the
//      network in the path). Gate: zero failures, the background retrain
//      still republishes.
//   C. Drain under fire — clients keep a deep pipeline in flight while the
//      server stops. Gates: every submitted frame is answered (kOk or a
//      typed ShuttingDown — nothing lost, nothing dropped), zero decode
//      errors across the whole run.
//
// Results go to stdout (ASCII tables) and BENCH_net.json. `--smoke` keeps
// everything tiny for CI; `--out <path>` redirects the JSON; `--shards N`
// runs every phase against the ShardedTuningService router instead of a
// single service (same gates — the wire contract is backend-agnostic);
// `--io-backend poll|epoll` pins the server's event loop (default: the
// platform's preferred backend) so CI can prove the poll() fallback carries
// the same contract as edge-triggered epoll.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/online.h"
#include "engine/params.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "util/histogram.h"

using namespace rafiki;

namespace {

struct WireLoadResult {
  std::size_t clients = 0;
  std::size_t pipeline = 0;
  double qps = 0.0;
  double client_p50_us = 0.0;
  double client_p99_us = 0.0;
  double server_wire_p99_us = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t transport_failures = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
};

struct MixedResult {
  std::uint64_t predicts = 0;
  std::uint64_t windows = 0;
  std::uint64_t failed = 0;
  std::uint64_t stale_windows = 0;
  std::uint64_t versions_published = 0;
};

struct DrainResult {
  std::uint64_t submitted = 0;
  std::uint64_t answered_ok = 0;
  std::uint64_t answered_shutdown = 0;
  std::uint64_t lost = 0;
  std::uint64_t decode_errors = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // det:ok(wall-clock): measuring throughput/latency is this benchmark's purpose
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One service or an N-shard router behind the same TuningBackend surface.
std::unique_ptr<serve::TuningBackend> make_backend(std::size_t shards,
                                                   const serve::ServiceOptions& options) {
  if (shards > 1) {
    serve::ShardOptions shard_options;
    shard_options.shards = shards;
    shard_options.service = options;
    return std::make_unique<serve::ShardedTuningService>(shard_options);
  }
  return std::make_unique<serve::TuningService>(options);
}

/// One closed-loop client: `calls` pipelined bursts of depth `pipeline`,
/// recording per-request latency samples (burst time / burst size).
void client_loop(std::uint16_t port, std::size_t calls, std::size_t pipeline,
                 double rr_base, std::vector<double>& latency_us,
                 std::uint64_t& ok, std::uint64_t& failures) {
  net::Client client;
  if (client.connect("127.0.0.1", port) != net::NetStatus::kOk) {
    failures += calls;
    return;
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(pipeline);
  for (std::size_t i = 0; i < calls; i += pipeline) {
    const std::size_t burst = std::min(pipeline, calls - i);
    // det:ok(wall-clock): benchmark timing
    const auto t0 = std::chrono::steady_clock::now();
    ids.clear();
    for (std::size_t b = 0; b < burst; ++b) {
      serve::Request request;
      request.endpoint = serve::Endpoint::kPredict;
      request.read_ratio = rr_base + 0.01 * static_cast<double>((i + b) % 30);
      const auto id = client.send(request);
      if (id == 0) {
        ++failures;
        continue;
      }
      ids.push_back(id);
    }
    for (const auto id : ids) {
      const auto result = client.wait(id);
      if (result.ok()) {
        ++ok;
      } else {
        ++failures;
      }
    }
    latency_us.push_back(1e6 * seconds_since(t0) / static_cast<double>(burst));
  }
}

WireLoadResult wire_load(const core::Rafiki& rafiki, std::size_t shards,
                         net::IoBackend backend, std::size_t clients,
                         std::size_t pipeline, std::size_t calls_per_client) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4096;
  auto service = make_backend(shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->start();
  net::ServerOptions server_options;
  server_options.io_backend = backend;
  server_options.io_threads = 2;
  server_options.max_pipeline = pipeline + 1;  // the bench never self-throttles
  net::Server server(*service, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "net_load: server start failed: %s\n",
                 server.last_error().c_str());
    return {};
  }

  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::uint64_t> ok(clients, 0);
  std::vector<std::uint64_t> failures(clients, 0);
  // det:ok(wall-clock): benchmark timing
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      client_loop(server.port(), calls_per_client, pipeline,
                  0.2 + 0.05 * static_cast<double>(c % 4), latencies[c], ok[c],
                  failures[c]);
    });
  }
  for (auto& thread : fleet) thread.join();
  const double elapsed = seconds_since(t0);
  server.stop();
  service->stop();

  WireLoadResult result;
  result.clients = clients;
  result.pipeline = pipeline;
  Histogram merged(0.0, 1e6, 2048);
  for (std::size_t c = 0; c < clients; ++c) {
    result.ok += ok[c];
    result.transport_failures += failures[c];
    merged.add_all(latencies[c]);
  }
  result.qps = static_cast<double>(result.ok) / elapsed;
  result.client_p50_us = merged.quantile(0.5);
  result.client_p99_us = merged.quantile(0.99);
  const auto counters = service->stats().wire_counters();
  result.decode_errors = counters.decode_errors;
  result.frames_in = counters.frames_in;
  result.frames_out = counters.frames_out;
  result.server_wire_p99_us =
      service->stats().wire_latency_quantile(serve::Endpoint::kPredict, 0.99);
  return result;
}

MixedResult mixed_load(const core::Rafiki& rafiki, std::size_t shards,
                       net::IoBackend backend, std::size_t clients,
                       std::size_t calls_per_client, std::size_t window_every) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4096;
  core::OnlineTuner tuner(rafiki);
  auto service = make_backend(shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->attach_tuner(tuner);
  service->start();
  net::ServerOptions server_options;
  server_options.io_backend = backend;
  net::Server server(*service, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "net_load: server start failed: %s\n",
                 server.last_error().c_str());
    return {};
  }

  const std::vector<double> regimes = {0.15, 0.85, 0.45, 0.95, 0.25};
  std::vector<std::uint64_t> failed(clients, 0);
  std::vector<std::uint64_t> stale(clients, 0);
  std::vector<std::thread> fleet;
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      net::Client client;
      if (client.connect("127.0.0.1", server.port()) != net::NetStatus::kOk) {
        failed[c] += calls_per_client;
        return;
      }
      for (std::size_t i = 0; i < calls_per_client; ++i) {
        const double rr = regimes[(i / window_every) % regimes.size()];
        const auto result = (i % window_every == 0) ? client.observe_window(rr)
                                                    : client.predict(rr);
        if (!result.ok()) ++failed[c];
        if (result.net == net::NetStatus::kOk && result.response.stale) ++stale[c];
      }
    });
  }
  for (auto& thread : fleet) thread.join();
  service->wait_retrain_idle();
  server.stop();

  MixedResult result;
  const auto predict = service->endpoint_counters(serve::Endpoint::kPredict);
  const auto observe = service->endpoint_counters(serve::Endpoint::kObserveWindow);
  result.predicts = predict.completed;
  result.windows = observe.completed;
  for (auto f : failed) result.failed += f;
  for (auto s : stale) result.stale_windows += s;
  result.versions_published = service->model_version();
  service->stop();
  return result;
}

DrainResult drain_under_fire(const core::Rafiki& rafiki, std::size_t shards,
                             net::IoBackend backend, std::size_t clients,
                             std::size_t pipeline) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4096;
  auto service = make_backend(shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->start();
  net::ServerOptions server_options;
  server_options.io_backend = backend;
  server_options.max_pipeline = pipeline + 1;
  net::Server server(*service, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "net_load: server start failed: %s\n",
                 server.last_error().c_str());
    return {};
  }

  // Every client fills a deep pipeline, then the server drains while all of
  // it is in flight. The contract under test: each submitted id comes back
  // as a typed response — kOk or kShuttingDown — and none are lost.
  std::vector<std::uint64_t> submitted(clients, 0);
  std::vector<std::uint64_t> answered_ok(clients, 0);
  std::vector<std::uint64_t> answered_shutdown(clients, 0);
  std::vector<std::uint64_t> lost(clients, 0);
  std::atomic<std::size_t> senders_done{0};
  std::vector<std::thread> fleet;
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      net::Client client;
      if (client.connect("127.0.0.1", server.port()) != net::NetStatus::kOk) {
        senders_done.fetch_add(1, std::memory_order_release);
        return;
      }
      std::vector<std::uint64_t> ids;
      for (std::size_t i = 0; i < pipeline; ++i) {
        serve::Request request;
        request.endpoint = serve::Endpoint::kPredict;
        request.read_ratio = 0.3 + 0.02 * static_cast<double>(i % 20);
        const auto id = client.send(request);
        if (id != 0) ids.push_back(id);
      }
      submitted[c] = ids.size();
      senders_done.fetch_add(1, std::memory_order_release);
      for (const auto id : ids) {
        const auto result = client.wait(id);
        if (result.net != net::NetStatus::kOk) {
          ++lost[c];
        } else if (result.response.status == serve::Status::kOk) {
          ++answered_ok[c];
        } else if (result.response.status == serve::Status::kShuttingDown) {
          ++answered_shutdown[c];
        } else if (result.response.status == serve::Status::kOverloaded) {
          ++answered_ok[c];  // typed backpressure: answered, not lost
        } else {
          ++lost[c];
        }
      }
    });
  }
  // The contract covers frames the clients actually put on the wire: wait
  // until every pipeline is fully sent (the frames then sit in socket or
  // server buffers, far ahead of the 2 workers draining them) and the server
  // has started decoding, then pull the plug with the rest in flight.
  while (senders_done.load(std::memory_order_acquire) < clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::uint64_t total_sent = 0;
  for (std::size_t c = 0; c < clients; ++c) total_sent += submitted[c];
  while (total_sent != 0 && service->stats().wire_counters().frames_in == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  for (auto& thread : fleet) thread.join();
  service->stop();

  DrainResult result;
  for (std::size_t c = 0; c < clients; ++c) {
    result.submitted += submitted[c];
    result.answered_ok += answered_ok[c];
    result.answered_shutdown += answered_shutdown[c];
    result.lost += lost[c];
  }
  result.decode_errors = service->stats().wire_counters().decode_errors;
  return result;
}

void write_json(const std::string& path, const std::vector<WireLoadResult>& load,
                const MixedResult& mixed, const DrainResult& drain, bool smoke,
                std::size_t shards, net::IoBackend backend) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "net_load: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"net_load\",\n  \"smoke\": %s,\n  \"shards\": %zu,\n"
               "  \"io_backend\": \"%s\",\n",
               smoke ? "true" : "false", shards, net::io_backend_name(backend));
  // Every net_load gate is structural (transport correctness) and runs on
  // any machine, sanitizers included — nothing is ever skipped.
  std::fprintf(out, "  \"hw_threads\": %u,\n  \"gates_skipped\": %s,\n",
               benchutil::hw_threads(), benchutil::json_string_array({}).c_str());
  std::fprintf(out, "  \"wire_load\": [\n");
  for (std::size_t i = 0; i < load.size(); ++i) {
    const auto& l = load[i];
    std::fprintf(out,
                 "    {\"clients\": %zu, \"pipeline\": %zu, \"qps\": %.1f, "
                 "\"client_p50_us\": %.1f, \"client_p99_us\": %.1f, "
                 "\"server_wire_p99_us\": %.1f, \"ok\": %llu, "
                 "\"transport_failures\": %llu, \"decode_errors\": %llu, "
                 "\"frames_in\": %llu, \"frames_out\": %llu}%s\n",
                 l.clients, l.pipeline, l.qps, l.client_p50_us, l.client_p99_us,
                 l.server_wire_p99_us, static_cast<unsigned long long>(l.ok),
                 static_cast<unsigned long long>(l.transport_failures),
                 static_cast<unsigned long long>(l.decode_errors),
                 static_cast<unsigned long long>(l.frames_in),
                 static_cast<unsigned long long>(l.frames_out),
                 i + 1 < load.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"mixed_endpoints\": {\"predicts\": %llu, \"windows\": %llu, "
               "\"failed\": %llu, \"stale_windows\": %llu, "
               "\"versions_published\": %llu},\n",
               static_cast<unsigned long long>(mixed.predicts),
               static_cast<unsigned long long>(mixed.windows),
               static_cast<unsigned long long>(mixed.failed),
               static_cast<unsigned long long>(mixed.stale_windows),
               static_cast<unsigned long long>(mixed.versions_published));
  std::fprintf(out,
               "  \"drain_under_fire\": {\"submitted\": %llu, \"answered_ok\": %llu, "
               "\"answered_shutdown\": %llu, \"lost\": %llu, "
               "\"decode_errors\": %llu}\n}\n",
               static_cast<unsigned long long>(drain.submitted),
               static_cast<unsigned long long>(drain.answered_ok),
               static_cast<unsigned long long>(drain.answered_shutdown),
               static_cast<unsigned long long>(drain.lost),
               static_cast<unsigned long long>(drain.decode_errors));
  std::fclose(out);
  benchutil::note("wrote " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_net.json";
  std::size_t shards = 1;
  net::IoBackend backend = net::default_io_backend();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (shards == 0) shards = 1;
    }
    if (std::strcmp(argv[i], "--io-backend") == 0 && i + 1 < argc) {
      if (!net::parse_io_backend(argv[++i], backend) ||
          !net::io_backend_available(backend)) {
        std::fprintf(stderr, "net_load: unknown or unavailable io backend '%s'\n",
                     argv[i]);
        return 1;
      }
    }
  }
  benchutil::note(std::string("io backend: ") + net::io_backend_name(backend));

  core::RafikiOptions options;
  options.workload_grid = smoke ? std::vector<double>{0.2, 0.8}
                                : std::vector<double>{0.1, 0.5, 0.9};
  options.n_configs = smoke ? 5 : 10;
  options.collect.measure.ops = smoke ? 3000 : 20000;
  options.collect.measure.warmup_ops = smoke ? 300 : 2000;
  options.ensemble.n_nets = smoke ? 3 : 10;
  options.ensemble.train.max_epochs = smoke ? 30 : 100;
  benchutil::note("training the surrogate ensemble...");
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());

  // Phase A: wire load grid.
  const std::size_t calls = smoke ? 64 : 512;
  std::vector<WireLoadResult> load;
  for (std::size_t clients : {1u, 4u}) {
    for (std::size_t pipeline : {1u, 16u}) {
      load.push_back(wire_load(rafiki, shards, backend, clients, pipeline, calls));
    }
  }
  Table load_table({"clients", "pipeline", "QPS", "client p50 us", "client p99 us",
                    "server wire p99 us", "failed", "decode errors"});
  for (const auto& l : load) {
    load_table.add_row({std::to_string(l.clients), std::to_string(l.pipeline),
                        Table::ops(l.qps), Table::num(l.client_p50_us, 1),
                        Table::num(l.client_p99_us, 1),
                        Table::num(l.server_wire_p99_us, 1),
                        std::to_string(l.transport_failures),
                        std::to_string(l.decode_errors)});
  }
  benchutil::emit(load_table, "Phase A: closed-loop wire load (loopback RPC)");

  // Phase B: mixed endpoints with regime shifts through the wire.
  const auto mixed = mixed_load(rafiki, shards, backend, smoke ? 2 : 4,
                                smoke ? 40 : 200, smoke ? 10 : 25);
  Table mixed_table({"metric", "value"});
  mixed_table.add_row({"Predict completed", std::to_string(mixed.predicts)});
  mixed_table.add_row({"ObserveWindow completed", std::to_string(mixed.windows)});
  mixed_table.add_row({"failed calls", std::to_string(mixed.failed)});
  mixed_table.add_row({"stale-served windows", std::to_string(mixed.stale_windows)});
  mixed_table.add_row({"snapshot versions", std::to_string(mixed.versions_published)});
  benchutil::emit(mixed_table, "Phase B: mixed endpoints through the wire");
  benchutil::compare("failed calls with the network in the path", "0",
                     std::to_string(mixed.failed));

  // Phase C: graceful drain with deep pipelines in flight.
  const auto drain =
      drain_under_fire(rafiki, shards, backend, smoke ? 2 : 4, smoke ? 16 : 64);
  Table drain_table({"metric", "value"});
  drain_table.add_row({"frames submitted", std::to_string(drain.submitted)});
  drain_table.add_row({"answered Ok", std::to_string(drain.answered_ok)});
  drain_table.add_row({"answered ShuttingDown", std::to_string(drain.answered_shutdown)});
  drain_table.add_row({"lost / unanswered", std::to_string(drain.lost)});
  drain_table.add_row({"decode errors", std::to_string(drain.decode_errors)});
  benchutil::emit(drain_table, "Phase C: drain with pipelines in flight");
  benchutil::compare("frames lost across a server drain", "0",
                     std::to_string(drain.lost));

  write_json(out_path, load, mixed, drain, smoke, shards, backend);

  // Gates: transport correctness always (sanitizers included) — zero decode
  // errors, zero dropped responses, wire accounting balanced.
  bool pass = mixed.failed == 0 && drain.lost == 0 && drain.decode_errors == 0;
  pass = pass && drain.answered_ok + drain.answered_shutdown == drain.submitted;
  pass = pass && mixed.stale_windows >= 1 && mixed.versions_published > 1;
  for (const auto& l : load) {
    pass = pass && l.transport_failures == 0 && l.decode_errors == 0;
    pass = pass && l.frames_in == l.frames_out;
  }
  std::printf("\nnet_load: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
