// rafiki_serverd — standalone serving daemon: trains a small surrogate
// pipeline, publishes the snapshot, and serves the RPC protocol until stdin
// closes (or EOF in a pipe) or SIGINT/SIGTERM arrives, then drains
// gracefully and prints the stats tables. The counterpart of
// tools/rafiki_client.
//
//   rafiki_serverd [--port P] [--host H] [--io-threads N] [--workers N]
//                  [--shards N] [--tenants N] [--worker-budget N]
//                  [--io-backend poll|epoll] [--pin-shards] [--full]
//
// --io-backend pins the IO loops' readiness engine (default: edge-triggered
// epoll on Linux, the portable poll() fallback elsewhere); the drain report
// names the backend that actually served.
//
// --shards N (N > 1) serves through the ShardedTuningService router —
// per-(tenant, read-ratio-band) shards, each with its own queue/workers/
// batcher — and prints the cross-shard merged stats table on drain.
// --worker-budget N caps the fleet's total worker threads (divided across
// shards; default derives from --workers capped at the hardware threads) and
// --pin-shards pins each shard's workers to a contiguous CPU range.
//
// --tenants N (N > 1) serves a multi-tenant fleet (tenant::TenantFleet):
// each tenant gets its own model slot and OnlineTuner, requests route by the
// RKF2 header's tenant field, and the drain report includes the fleet's
// admission fairness counters. Tenant ids 0..N-1 are valid; anything else
// answers kNotReady.
//
// The default training profile is the CI smoke profile (seconds); --full
// trains the mid-sized ensemble the benches use (minutes).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/online.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include "net/server.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "tenant/fleet.h"

using namespace rafiki;

namespace {

// Async-signal-safe shutdown flag; the handler only sets it. Installed
// WITHOUT SA_RESTART so the blocking fgets() on stdin returns EINTR and the
// serve loop falls through to the same graceful drain that EOF triggers.
volatile std::sig_atomic_t g_shutdown_signal = 0;

void on_shutdown_signal(int signo) { g_shutdown_signal = signo; }

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7117;
  std::size_t io_threads = 2;
  std::size_t workers = 2;
  std::size_t shards = 1;
  std::size_t tenants = 1;
  std::size_t worker_budget = 0;
  net::IoBackend io_backend = net::default_io_backend();
  bool pin_shards = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--io-threads" && i + 1 < argc) {
      io_threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--tenants" && i + 1 < argc) {
      tenants = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--worker-budget" && i + 1 < argc) {
      worker_budget = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--io-backend" && i + 1 < argc) {
      if (!net::parse_io_backend(argv[++i], io_backend)) {
        std::fprintf(stderr, "unknown io backend '%s' (poll|epoll)\n", argv[i]);
        return 2;
      }
      if (!net::io_backend_available(io_backend)) {
        std::fprintf(stderr, "io backend '%s' is unavailable on this platform\n",
                     net::io_backend_name(io_backend));
        return 2;
      }
    } else if (arg == "--pin-shards") {
      pin_shards = true;
    } else if (arg == "--full") {
      full = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--port P] [--io-threads N] "
                   "[--workers N] [--shards N] [--tenants N] "
                   "[--worker-budget N] [--io-backend poll|epoll] "
                   "[--pin-shards] [--full]\n",
                   argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "invalid port %d\n", port);
    return 2;
  }
  if (tenants == 0) tenants = 1;

  core::RafikiOptions options;
  options.workload_grid = full ? std::vector<double>{0.1, 0.5, 0.9}
                               : std::vector<double>{0.2, 0.8};
  options.n_configs = full ? 10 : 5;
  options.collect.measure.ops = full ? 20000 : 3000;
  options.collect.measure.warmup_ops = full ? 2000 : 300;
  options.ensemble.n_nets = full ? 10 : 3;
  options.ensemble.train.max_epochs = full ? 100 : 30;
  std::printf("training the surrogate ensemble (%s profile)...\n",
              full ? "full" : "smoke");
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());
  if (!rafiki.trained()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  serve::ServiceOptions service_options;
  service_options.workers = workers;
  core::OnlineTuner tuner(rafiki);  // tenant-0 tuner for the non-fleet paths
  std::unique_ptr<serve::TuningBackend> backend;
  tenant::TenantFleet* fleet = nullptr;
  if (tenants > 1) {
    tenant::FleetOptions fleet_options;
    fleet_options.tenants = tenants;
    fleet_options.shard.shards = shards;
    fleet_options.shard.service = service_options;
    fleet_options.shard.worker_budget = worker_budget;
    fleet_options.shard.pin_shards = pin_shards;
    auto owned = std::make_unique<tenant::TenantFleet>(fleet_options);
    owned->attach_rafiki(rafiki);
    fleet = owned.get();
    backend = std::move(owned);
  } else if (shards > 1) {
    serve::ShardOptions shard_options;
    shard_options.shards = shards;
    shard_options.service = service_options;
    shard_options.worker_budget = worker_budget;
    shard_options.pin_shards = pin_shards;
    backend = std::make_unique<serve::ShardedTuningService>(shard_options);
  } else {
    backend = std::make_unique<serve::TuningService>(service_options);
  }
  serve::TuningBackend& service = *backend;
  service.publish(serve::make_snapshot(rafiki));
  if (fleet == nullptr) service.attach_tuner(tuner);
  service.start();

  net::ServerOptions server_options;
  server_options.host = host;
  server_options.port = static_cast<std::uint16_t>(port);
  server_options.io_threads = io_threads;
  server_options.io_backend = io_backend;
  net::Server server(service, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "server start failed: %s\n", server.last_error().c_str());
    service.stop();
    return 1;
  }

  // Graceful shutdown on SIGINT/SIGTERM: no SA_RESTART, so the fgets() below
  // is interrupted (EINTR -> nullptr) and the normal drain path runs —
  // in-flight requests finish, stats tables still print.
  struct sigaction sa{};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  std::printf("serving on %s:%u (model version %llu, %zu shard%s, %zu tenant%s, "
              "%s io backend); close stdin or SIGINT/SIGTERM to stop\n",
              host.c_str(), server.port(),
              static_cast<unsigned long long>(service.model_version()), shards,
              shards == 1 ? "" : "s", tenants, tenants == 1 ? "" : "s",
              net::io_backend_name(io_backend));
  std::fflush(stdout);

  // Serve until stdin closes — works interactively (Ctrl-D), under a pipe,
  // and under process supervisors that hold stdin open for the lifetime —
  // or until a shutdown signal interrupts the read.
  char buffer[256];
  while (g_shutdown_signal == 0 &&
         std::fgets(buffer, sizeof buffer, stdin) != nullptr) {
  }

  if (g_shutdown_signal != 0) {
    std::printf("caught %s, draining...\n",
                g_shutdown_signal == SIGTERM ? "SIGTERM" : "SIGINT");
  } else {
    std::printf("stdin closed, draining...\n");
  }
  const auto before = service.stats().wire_counters();
  server.stop();
  service.stop();
  const auto after = service.stats().wire_counters();

  // Drain report: what the graceful shutdown actually flushed, and how the
  // event loop batched it (one flush = one per-connection drain attempt; the
  // syscalls-per-frame figure is the wire's hardware-independent cost).
  std::printf("drained: %llu frame(s) answered during drain, %llu connection(s) "
              "closed, %llu frame(s) total in / %llu out\n",
              static_cast<unsigned long long>(after.frames_out - before.frames_out),
              static_cast<unsigned long long>(after.connections_closed -
                                              before.connections_closed),
              static_cast<unsigned long long>(after.frames_in),
              static_cast<unsigned long long>(after.frames_out));
  std::printf("io backend %s: %llu flush(es), %llu flush syscall(s), "
              "%.2f frame(s)/flush, %.4f syscall(s)/frame, %llu EAGAIN "
              "partial write(s)\n",
              net::io_backend_name(io_backend),
              static_cast<unsigned long long>(after.flushes),
              static_cast<unsigned long long>(after.flush_syscalls),
              after.frames_per_flush(), after.flush_syscalls_per_frame(),
              static_cast<unsigned long long>(after.flush_eagain));

  // stats_table() merges across shards for the sharded backend; wire-level
  // telemetry always lives in the backend's front-end stats object.
  std::printf("\n=== request stats ===\n%s", service.stats_table().render().c_str());
  std::printf("\n=== wire stats ===\n%s", service.stats().wire_table().render().c_str());
  if (fleet != nullptr) {
    const auto fc = fleet->fleet_counters();
    std::printf("\n=== fleet admission ===\nadmitted %llu | quota rejected %llu | "
                "in-flight rejected %llu | unknown tenant %llu\n",
                static_cast<unsigned long long>(fc.admitted),
                static_cast<unsigned long long>(fc.quota_rejected),
                static_cast<unsigned long long>(fc.inflight_rejected),
                static_cast<unsigned long long>(fc.unknown_tenant));
  }
  return 0;
}
