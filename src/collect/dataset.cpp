#include "collect/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace rafiki::collect {

std::vector<double> Dataset::features(const Sample& sample,
                                      const std::vector<engine::ParamId>& params) {
  std::vector<double> row;
  row.reserve(params.size() + 1);
  row.push_back(sample.workload.read_ratio);
  for (auto id : params) row.push_back(sample.config.get(id));
  return row;
}

std::vector<std::vector<double>> Dataset::feature_matrix(
    const std::vector<engine::ParamId>& params) const {
  std::vector<std::vector<double>> rows;
  rows.reserve(samples_.size());
  for (const auto& sample : samples_) rows.push_back(features(sample, params));
  return rows;
}

std::vector<double> Dataset::targets() const {
  std::vector<double> y;
  y.reserve(samples_.size());
  for (const auto& sample : samples_) y.push_back(sample.throughput);
  return y;
}

namespace {

/// Groups sample indices by a key extractor, then withholds whole groups.
template <typename KeyFn>
Dataset::Split split_by_group(std::size_t n, double test_fraction, std::uint64_t seed,
                              KeyFn key_of) {
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) groups[key_of(i)].push_back(i);

  std::vector<const std::vector<std::size_t>*> order;
  order.reserve(groups.size());
  for (const auto& [key, members] : groups) order.push_back(&members);
  rafiki::Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }

  const auto n_test_groups = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(test_fraction * static_cast<double>(order.size()))));
  Dataset::Split split;
  for (std::size_t g = 0; g < order.size(); ++g) {
    auto& bucket = g < n_test_groups ? split.test : split.train;
    bucket.insert(bucket.end(), order[g]->begin(), order[g]->end());
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace

Dataset::Split Dataset::split_by_config(double test_fraction, std::uint64_t seed) const {
  return split_by_group(samples_.size(), test_fraction, seed, [&](std::size_t i) {
    return samples_[i].config.to_string();
  });
}

Dataset::Split Dataset::split_by_workload(double test_fraction, std::uint64_t seed) const {
  return split_by_group(samples_.size(), test_fraction, seed, [&](std::size_t i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", samples_[i].workload.read_ratio);
    return std::string(buf);
  });
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  for (auto i : indices) out.add(samples_.at(i));
  return out;
}

std::string Dataset::to_csv(const std::vector<engine::ParamId>& params) const {
  std::string out = "read_ratio";
  for (auto id : params) {
    out += ',';
    out += std::string(engine::param_name(id));
  }
  out += ",throughput\n";
  char buf[64];
  for (const auto& sample : samples_) {
    const auto row = features(sample, params);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::snprintf(buf, sizeof buf, c ? ",%.6g" : "%.6g", row[c]);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, ",%.3f\n", sample.throughput);
    out += buf;
  }
  return out;
}

Dataset Dataset::from_csv(const std::string& csv,
                          const workload::WorkloadSpec& base_workload) {
  Dataset dataset;
  std::size_t pos = 0;
  auto next_line = [&](std::string& line) {
    if (pos >= csv.size()) return false;
    const auto end = csv.find('\n', pos);
    line = csv.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? csv.size() : end + 1;
    return true;
  };
  auto split_fields = [](const std::string& line) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (;;) {
      const auto comma = line.find(',', start);
      fields.push_back(line.substr(start, comma == std::string::npos ? std::string::npos
                                                                     : comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return fields;
  };

  std::string line;
  if (!next_line(line)) throw std::invalid_argument("Dataset::from_csv: empty input");
  const auto header = split_fields(line);
  if (header.size() < 2 || header.front() != "read_ratio" ||
      header.back() != "throughput") {
    throw std::invalid_argument("Dataset::from_csv: unexpected header");
  }
  std::vector<engine::ParamId> params;
  for (std::size_t c = 1; c + 1 < header.size(); ++c) {
    const auto id = engine::find_param(header[c]);
    if (id == engine::ParamId::kCount) {
      throw std::invalid_argument("Dataset::from_csv: unknown parameter " + header[c]);
    }
    params.push_back(id);
  }

  while (next_line(line)) {
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    if (fields.size() != header.size()) {
      throw std::invalid_argument("Dataset::from_csv: malformed row: " + line);
    }
    Sample sample;
    sample.workload = base_workload;
    try {
      sample.workload.read_ratio = std::stod(fields.front());
      for (std::size_t c = 0; c < params.size(); ++c) {
        sample.config.set(params[c], std::stod(fields[c + 1]));
      }
      sample.throughput = std::stod(fields.back());
    } catch (const std::exception&) {
      throw std::invalid_argument("Dataset::from_csv: non-numeric field in: " + line);
    }
    dataset.add(std::move(sample));
  }
  return dataset;
}

std::vector<engine::Config> sample_configs(const std::vector<engine::ParamId>& params,
                                           std::size_t count, std::uint64_t seed) {
  return sample_configs_focused(params, params, count, seed);
}

std::vector<engine::Config> sample_configs_focused(
    const std::vector<engine::ParamId>& params,
    const std::vector<engine::ParamId>& active, std::size_t count,
    std::uint64_t seed) {
  std::vector<engine::Config> configs;
  configs.push_back(engine::Config::defaults());
  // Coverage rule (Section 3.5): every parameter's minimum and maximum occur
  // at least once. One config per extreme with the rest at defaults, so each
  // parameter's boundary behaviour is observed in isolation.
  auto add_unique = [&](const engine::Config& config) {
    if (configs.size() < count &&
        std::find(configs.begin(), configs.end(), config) == configs.end()) {
      configs.push_back(config);
    }
  };
  for (auto id : params) {
    add_unique(engine::Config::defaults().with(id, engine::param_spec(id).lo));
    add_unique(engine::Config::defaults().with(id, engine::param_spec(id).hi));
  }

  // Random fill varies only `active` jointly; everything else stays at its
  // default. A surrogate whose search will pin inactive knobs to defaults is
  // only ever evaluated on that slice, so that is where joint (interaction)
  // support matters — axis-aligned extremes alone leave a 22-D model assuming
  // additivity exactly where the GA pushes hardest.
  rafiki::Rng rng(seed);
  while (configs.size() < count) {
    engine::Config config;
    for (auto id : active) {
      const auto& spec = engine::param_spec(id);
      config.set(id, rng.uniform(spec.lo, spec.hi));  // set() snaps integrals
    }
    if (std::find(configs.begin(), configs.end(), config) == configs.end()) {
      configs.push_back(config);
    }
  }
  return configs;
}

Dataset collect_dataset(const std::vector<engine::Config>& configs,
                        const std::vector<double>& read_ratios,
                        const workload::WorkloadSpec& base_workload,
                        const CollectOptions& options) {
  rafiki::Rng rng(options.seed);
  Dataset dataset;
  std::uint64_t measurement = 0;
  for (const auto& config : configs) {
    for (double rr : read_ratios) {
      ++measurement;
      if (options.fault_rate > 0.0 && rng.bernoulli(options.fault_rate)) {
        continue;  // sample lost to a harness fault, per the paper's protocol
      }
      workload::WorkloadSpec workload = base_workload;
      workload.read_ratio = rr;
      MeasureOptions measure_opts = options.measure;
      measure_opts.seed = options.measure.seed + measurement;
      Sample sample;
      sample.workload = workload;
      sample.config = config;
      sample.throughput = measure_throughput(config, workload, measure_opts);
      dataset.add(std::move(sample));
    }
  }
  return dataset;
}

}  // namespace rafiki::collect
