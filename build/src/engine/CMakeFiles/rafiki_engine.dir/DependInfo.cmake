
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cluster.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/cluster.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/cluster.cpp.o.d"
  "/root/repo/src/engine/compaction.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/compaction.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/compaction.cpp.o.d"
  "/root/repo/src/engine/config.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/config.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/config.cpp.o.d"
  "/root/repo/src/engine/params.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/params.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/params.cpp.o.d"
  "/root/repo/src/engine/scylla.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/scylla.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/scylla.cpp.o.d"
  "/root/repo/src/engine/server.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/server.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/server.cpp.o.d"
  "/root/repo/src/engine/sstable.cpp" "src/engine/CMakeFiles/rafiki_engine.dir/sstable.cpp.o" "gcc" "src/engine/CMakeFiles/rafiki_engine.dir/sstable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rafiki_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rafiki_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
