# Empty compiler generated dependencies file for engine_storage_test.
# This may be replaced when dependencies are built.
