// Table 1 + Section 4.6: maximum, default and minimum throughput over the
// collected configuration set for three workloads (90%, 50%, 10% reads),
// showing how impactful the five key parameters are. The paper reports the
// best-vs-worst spread reaching 102.5% at RR=90%.
#include <cstdio>

#include "bench/common.h"
#include "collect/dataset.h"

using namespace rafiki;

int main() {
  auto options = benchutil::paper_options();
  const auto configs =
      collect::sample_configs(engine::key_params(), options.n_configs, options.collect.seed);
  collect::CollectOptions collect_options = options.collect;

  benchutil::note("measuring 20 configurations x {90%, 50%, 10%} reads...");
  const auto dataset = collect::collect_dataset(configs, {0.9, 0.5, 0.1},
                                                options.base_workload, collect_options);

  Table table({"workload", "maximum", "default", "minimum", "max % over min",
               "default % over min"});
  struct Row {
    double rr;
    double max_over_min;
  };
  std::vector<Row> rows;
  for (double rr : {0.9, 0.5, 0.1}) {
    double best = 0.0, worst = 1e18, fallback = 0.0;
    for (const auto& sample : dataset.samples()) {
      if (std::abs(sample.workload.read_ratio - rr) > 1e-9) continue;
      best = std::max(best, sample.throughput);
      worst = std::min(worst, sample.throughput);
      if (sample.config == engine::Config::defaults()) fallback = sample.throughput;
    }
    const double max_over_min = 100.0 * (best - worst) / worst;
    const double def_over_min = 100.0 * (fallback - worst) / worst;
    rows.push_back({rr, max_over_min});
    char label[48];
    std::snprintf(label, sizeof label, "Average Throughput (read=%.0f%%)", rr * 100);
    table.add_row({label, Table::ops(best), Table::ops(fallback), Table::ops(worst),
                   Table::pct(max_over_min), Table::pct(def_over_min)});
  }
  benchutil::emit(table, "Table 1: max/default/min throughput over the config set");

  benchutil::compare("spread @ read=90% (max % over min)", "102.5%",
                     Table::pct(rows[0].max_over_min));
  benchutil::compare("spread @ read=50%", "68.5%", Table::pct(rows[1].max_over_min));
  benchutil::compare("spread @ read=10%", "30.7%", Table::pct(rows[2].max_over_min));
  benchutil::compare("spread grows with read share", "yes",
                     rows[0].max_over_min > rows[2].max_over_min ? "yes" : "NO");
  return 0;
}
