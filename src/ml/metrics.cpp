#include "ml/metrics.h"

#include <cmath>
#include <vector>

#include "util/stats.h"

namespace rafiki::ml {

double mape_percent(std::span<const double> actual, std::span<const double> predicted,
                    double epsilon) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size() && i < predicted.size(); ++i) {
    if (std::abs(actual[i]) < epsilon) continue;
    sum += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++n;
  }
  return n ? 100.0 * sum / static_cast<double>(n) : 0.0;
}

double r_squared(std::span<const double> actual, std::span<const double> predicted) {
  if (actual.size() != predicted.size() || actual.size() < 2) return 0.0;
  const double mean_actual = rafiki::mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean_actual) * (actual[i] - mean_actual);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  if (actual.empty() || actual.size() != predicted.size()) return 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
  }
  return std::sqrt(ss / static_cast<double>(actual.size()));
}

std::vector<double> percent_errors(std::span<const double> actual,
                                   std::span<const double> predicted, double epsilon) {
  std::vector<double> errors;
  errors.reserve(actual.size());
  for (std::size_t i = 0; i < actual.size() && i < predicted.size(); ++i) {
    if (std::abs(actual[i]) < epsilon) continue;
    errors.push_back(100.0 * (predicted[i] - actual[i]) / actual[i]);
  }
  return errors;
}

}  // namespace rafiki::ml
