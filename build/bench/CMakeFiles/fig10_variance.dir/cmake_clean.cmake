file(REMOVE_RECURSE
  "CMakeFiles/fig10_variance.dir/fig10_variance.cpp.o"
  "CMakeFiles/fig10_variance.dir/fig10_variance.cpp.o.d"
  "fig10_variance"
  "fig10_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
