// Peer-to-peer multi-server deployment (paper Section 4.9 / Table 3).
//
// The paper's two-server experiment adds a second shooter and raises the
// replication factor by one, so every node stores an equivalent number of
// keys as the single-server case. Here a Cluster drives N identical Servers:
// writes are replicated to `replication_factor` nodes placed by a hash ring,
// reads are served by one replica round-robin (consistency level ONE), and
// every operation pays a small coordinator overhead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/server.h"

namespace rafiki::engine {

class Cluster {
 public:
  Cluster(const Config& config, int n_servers, int replication_factor,
          Hardware hardware = {}, CostModel costs = {});

  /// Loads initial data onto every replica that owns each key.
  void preload(std::span<const std::int64_t> keys, std::uint32_t value_bytes);

  /// Drives the cluster with one generator per server ("shooter") and
  /// aggregates statistics. Total offered operations = opts.ops * n_servers,
  /// matching the paper's load scaling.
  RunStats run(std::vector<workload::Generator>& shooters, const RunOptions& opts);

  int size() const noexcept { return static_cast<int>(servers_.size()); }
  int replication_factor() const noexcept { return replication_factor_; }
  const Server& server(int i) const { return *servers_.at(static_cast<std::size_t>(i)); }

 private:
  std::size_t primary_of(std::int64_t key) const noexcept;

  std::vector<std::unique_ptr<Server>> servers_;
  int replication_factor_;
  std::size_t read_rr_ = 0;  // round-robin replica choice for reads
};

}  // namespace rafiki::engine
