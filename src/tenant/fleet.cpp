#include "tenant/fleet.h"

#include <utility>

namespace rafiki::tenant {

FleetOptions TenantFleet::sanitize(FleetOptions options) {
  if (options.tenants == 0) options.tenants = 1;
  // One snapshot slot / version counter / retrain key-space per tenant in
  // every shard; whatever the caller left in shard.service.tenants is
  // overridden — the fleet is the single source of truth for the tenant set.
  options.shard.service.tenants = options.tenants;
  return options;
}

TenantFleet::TenantFleet(FleetOptions options)
    : options_(sanitize(std::move(options))),
      registry_(options_.tenants, options_.quota_for),
      router_(options_.shard) {}

TenantFleet::~TenantFleet() { stop(); }

void TenantFleet::attach_rafiki(const core::Rafiki& rafiki,
                                core::OnlineTunerOptions tuner_options) {
  for (std::size_t t = 0; t < registry_.size(); ++t) {
    TenantState& state = registry_.at(t);
    state.tuner = std::make_unique<core::OnlineTuner>(rafiki, tuner_options);
    router_.attach_tenant_tuner(static_cast<serve::TenantId>(t), *state.tuner);
  }
}

std::uint64_t TenantFleet::publish(serve::ModelSnapshot snapshot) {
  return router_.publish(std::move(snapshot));
}

std::shared_ptr<const serve::ModelSnapshot> TenantFleet::snapshot() const {
  return router_.snapshot();
}

std::uint64_t TenantFleet::model_version() const { return router_.model_version(); }

std::shared_ptr<const serve::ModelSnapshot> TenantFleet::tenant_snapshot(
    serve::TenantId tenant) const {
  return router_.tenant_snapshot(tenant);
}

std::uint64_t TenantFleet::tenant_model_version(serve::TenantId tenant) const {
  return router_.tenant_model_version(tenant);
}

void TenantFleet::attach_tuner(core::OnlineTuner& tuner) {
  router_.attach_tenant_tuner(0, tuner);
}

std::future<serve::Response> TenantFleet::submit(serve::Request request) {
  // Future-style submission through the same admission path as try_submit:
  // a shared promise is fulfilled by the wrapped callback, or inline with
  // the admission verdict.
  auto promise = std::make_shared<std::promise<serve::Response>>();
  auto future = promise->get_future();
  const serve::Status admitted = try_submit(
      std::move(request),
      [promise](serve::Response response) { promise->set_value(std::move(response)); });
  if (admitted != serve::Status::kOk) {
    serve::Response response;
    response.status = admitted;
    promise->set_value(std::move(response));
  }
  return future;
}

serve::Status TenantFleet::try_submit(serve::Request request,
                                      serve::ResponseCallback done) {
  TenantState* state = registry_.find(request.tenant);
  serve::ServiceStats& stats = router_.stats();
  if (state == nullptr) {
    // A tenant id outside the fleet is a client-side configuration error,
    // not an overload: answer with the typed kNotReady (no model will ever
    // be ready for a namespace that does not exist) and count it.
    stats.record_unknown_tenant();
    return serve::Status::kNotReady;
  }
  // In-flight cap before token bucket: the cap is a pure atomic check, the
  // bucket reads a clock and takes a mutex — and a request that would be
  // rejected by the cap must not consume a rate token.
  if (!state->quota.begin_request()) {
    stats.record_inflight_reject();
    return serve::Status::kOverloaded;
  }
  if (!state->quota.try_acquire_token()) {
    state->quota.end_request();
    stats.record_quota_reject();
    return serve::Status::kOverloaded;
  }
  stats.record_tenant_admit();
  // Wrap the completion to release the in-flight slot exactly once. The
  // registry outlives the router (member order), so `state` stays valid for
  // as long as any backend callback can fire.
  auto wrapped = [state, done = std::move(done)](serve::Response response) mutable {
    state->quota.end_request();
    done(std::move(response));
  };
  const serve::Status admitted = router_.try_submit(std::move(request), std::move(wrapped));
  if (admitted != serve::Status::kOk) {
    // Router-level rejection (all shards full / shutting down): the wrapped
    // callback will never fire, so the slot is released here.
    state->quota.end_request();
  }
  return admitted;
}

void TenantFleet::start() { router_.start(); }

void TenantFleet::stop() { router_.stop(); }

}  // namespace rafiki::tenant
