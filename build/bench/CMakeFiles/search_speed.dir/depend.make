# Empty dependencies file for search_speed.
# This may be replaced when dependencies are built.
