// Hardware model and cost constants for the simulated server.
//
// The paper's testbed is a Dell PowerEdge R430: 2x Xeon E5-2623v3 (8 cores
// total @3.0 GHz), 32 GB RAM, 2x 1 TB mirrored magnetic disks, 1 Gbps
// client link that is never the bottleneck. We model that box.
//
// Scale-down: a real 5-minute benchmark touches hundreds of millions of
// rows; a simulated measurement executes ~10^5 real operations instead.
// To keep flush/compaction *frequencies per operation* realistic, every
// memory capacity (memtable space, caches) is multiplied by `mem_scale`.
// All CPU/disk cost constants live in CostModel and were calibrated so the
// engine lands in the paper's throughput regime (~40-110 kops/s) with the
// paper's qualitative sensitivities; EXPERIMENTS.md records the outcome.
#pragma once

namespace rafiki::engine {

struct Hardware {
  int cores = 8;
  double heap_mb = 8192.0;
  /// OS page cache available for SSTable chunks (beyond the in-heap file
  /// cache), before scaling. Sized so the working set is mostly (but not
  /// entirely) memory-resident, as the paper's testbed throughput implies.
  double os_cache_mb = 20480.0;

  /// Mirrored pair: both spindles serve reads, writes hit both.
  double disk_read_channels = 2.0;
  double disk_write_channels = 1.0;
  double seq_read_us_per_kb = 1e6 / (300.0 * 1024.0);   // ~300 MB/s
  double seq_write_us_per_kb = 1e6 / (250.0 * 1024.0);  // ~250 MB/s (RAID write-back)
  /// Effective cold random chunk fetch (seek + transfer, controller cache
  /// and readahead considered).
  double random_read_us = 1100.0;

  /// Memory scale-down factor applied to all byte capacities (see above).
  double mem_scale = 1.0 / 512.0;
};

/// CPU and pathway cost constants, in microseconds of a single core unless
/// noted. Magnitudes follow the observation that production Cassandra
/// sustains roughly 5-10 kops/s/core, i.e. ~100-200 core-us per operation.
struct CostModel {
  // Write path.
  double write_base_us = 52.0;        // request parse, mutation, routing
  double commitlog_us_per_kb = 9.0;   // append serialization
  double memtable_insert_us = 14.0;
  double commitlog_wait_us = 95.0;   // group-commit latency component

  // Read path.
  double read_base_us = 36.0;         // request parse, result assembly
  double memtable_probe_us = 5.0;
  double row_cache_hit_us = 10.0;
  double bloom_check_us = 2.0;
  double index_probe_us = 14.0;       // partition index search per SSTable
  double data_read_us = 10.0;         // merge one row version
  double chunk_decompress_fixed_us = 8.0;    // paid on file-cache miss
  double chunk_decompress_us_per_kb = 0.20;  // per-KB decompression slope
  double os_cache_hit_us = 22.0;      // syscall + copy when not in file cache
  double disk_read_wait_us = 180.0;   // queueing floor for a cold read

  // Background work.
  double flush_cpu_us_per_kb = 3.0;
  double compaction_cpu_us_per_kb = 6.0;
  /// Per-compactor merge throughput ceiling (CPU-bound), KB per second.
  double compactor_kbps = 12.0 * 1024.0;
  /// Per-flush-writer throughput ceiling, KB per second.
  double flush_writer_kbps = 160.0 * 1024.0;
  /// Fixed cost of creating one SSTable (metadata, bloom build, fsync).
  double flush_fixed_us = 2500.0;
  /// Fixed cost per compaction task (setup, index rebuild, cache drop) —
  /// leveled compaction runs many more, smaller tasks than size-tiered.
  double compaction_fixed_us = 2500.0;

  // Concurrency behaviour.
  /// Extra CPU per op per thread beyond the no-contention point
  /// (4x cores), modelling context-switch and lock overhead.
  double contention_us_per_thread = 0.40;
  /// Threads per core before contention starts to bite.
  double contention_free_threads_per_core = 4.0;
};

}  // namespace rafiki::engine
