// Cross-module property sweeps (TEST_P): invariants that must hold across
// seeds, workloads and parameter settings rather than at single points.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/server.h"
#include "ml/mlp.h"
#include "opt/ga.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace rafiki {
namespace {

// --- GA robustness: across seeds, the optimizer lands near the optimum of a
// multimodal objective (the paper's local-maxima concern, Section 1). ---

class GaSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaSeedSweep, LandsNearGlobalOptimum) {
  opt::SearchSpace space({{"x", false, 0.0, 1.0}, {"n", true, 0, 100}});
  const auto objective = [](std::span<const double> p) {
    // Global optimum at (0.7, 40); a decoy basin at (0.15, 80).
    const double a = std::exp(-std::pow((p[0] - 0.7) / 0.08, 2)) *
                     std::exp(-std::pow((p[1] - 40.0) / 15.0, 2));
    const double b = 0.55 * std::exp(-std::pow((p[0] - 0.15) / 0.08, 2)) *
                     std::exp(-std::pow((p[1] - 80.0) / 15.0, 2));
    return a + b;
  };
  opt::GaOptions options;
  options.seed = GetParam();
  const auto result = opt::ga_optimize(space, objective, options);
  EXPECT_NEAR(result.best_point[0], 0.7, 0.1) << "seed " << GetParam();
  EXPECT_NEAR(result.best_point[1], 40.0, 16.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaSeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654321u));

// --- Engine: across the whole read-ratio axis, runs finish with sane
// bookkeeping whatever the compaction strategy. ---

class EngineRrSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineRrSweep, BookkeepingHoldsAcrossReadRatios) {
  const double rr = GetParam() / 100.0;
  for (int cm : {0, 1}) {
    workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(rr);
    spec.initial_keys = 15000;
    workload::Generator generator(spec, 17);
    engine::Server server(
        engine::Config::defaults().with(engine::ParamId::kCompactionMethod, cm));
    server.preload(generator.preload_keys(), spec.value_bytes);
    engine::RunOptions opts;
    opts.ops = 15000;
    const auto stats = server.run(generator, opts);

    EXPECT_EQ(stats.reads + stats.writes, stats.ops);
    EXPECT_NEAR(static_cast<double>(stats.reads) / static_cast<double>(stats.ops), rr,
                0.05);
    EXPECT_GT(stats.throughput_ops, 1000.0);
    EXPECT_GE(stats.max_sstable_count, stats.final_sstable_count);
    if (cm == 1) {
      EXPECT_TRUE(engine::leveled_invariant_holds(server.sstables()));
    }
    // Virtual time consistent with throughput.
    EXPECT_NEAR(stats.throughput_ops * stats.virtual_seconds,
                static_cast<double>(stats.ops), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ReadRatios, EngineRrSweep,
                         ::testing::Values(0, 15, 30, 50, 70, 85, 100));

// --- Bloom filters: the realized false-positive rate tracks the configured
// target across the whole domain. ---

class BloomFpSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFpSweep, RealizedRateTracksTarget) {
  const double target = GetParam();
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 30000; ++k) keys.push_back(k * 3);
  const auto filter = engine::BloomFilter::build(keys, target);
  std::size_t fp = 0;
  constexpr std::size_t kProbes = 60000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    fp += filter.maybe_contains(static_cast<std::int64_t>(1000001 + 2 * i));
  }
  const double realized = static_cast<double>(fp) / kProbes;
  EXPECT_LT(realized, target * 2.2 + 0.002) << "target " << target;
  EXPECT_GT(realized, target * 0.15) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(FpChances, BloomFpSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.2));

// --- Normalizer: map/unmap round-trips across random feature scales. ---

class NormalizerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalizerSweep, RoundTripsAndBounds) {
  Rng rng(GetParam());
  std::vector<std::vector<double>> rows;
  const double scale = std::pow(10.0, rng.uniform(-3, 6));
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.uniform(-scale, scale), rng.uniform(0, scale)});
  }
  ml::Normalizer norm;
  norm.fit_columns(rows);
  for (const auto& row : rows) {
    const auto mapped = norm.map_row(row);
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_GE(mapped[c], -1.0 - 1e-9);
      EXPECT_LE(mapped[c], 1.0 + 1e-9);
      EXPECT_NEAR(norm.unmap(mapped[c], c), row[c], scale * 1e-9 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, NormalizerSweep, ::testing::Values(3u, 5u, 8u, 13u));

// --- Workload generator: realized read ratio converges for every RR and the
// stream is deterministic per seed. ---

class GeneratorRrSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorRrSweep, DeterministicAndCalibrated) {
  const double rr = GetParam() / 100.0;
  workload::Generator a(workload::WorkloadSpec::with_read_ratio(rr), 99);
  workload::Generator b(workload::WorkloadSpec::with_read_ratio(rr), 99);
  std::size_t reads = 0;
  constexpr std::size_t kN = 8000;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto op_a = a.next();
    const auto op_b = b.next();
    EXPECT_EQ(op_a.key, op_b.key);
    EXPECT_EQ(static_cast<int>(op_a.kind), static_cast<int>(op_b.kind));
    reads += op_a.kind == workload::Op::Kind::kRead;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, rr, 0.03);
}

INSTANTIATE_TEST_SUITE_P(ReadRatios, GeneratorRrSweep,
                         ::testing::Values(0, 25, 50, 75, 100));

}  // namespace
}  // namespace rafiki
