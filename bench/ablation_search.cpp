// Ablation: search strategies over the trained surrogate (Sections 3.7, 4.8).
//
// With the surrogate making evaluations nearly free, which searcher finds
// the best configurations? The paper argues for a GA because the response
// surface is non-linear, non-monotone and interdependent; this bench pits
// the GA against random search, the greedy coordinate sweep and a coarse
// grid at matched surrogate-evaluation budgets, verifying every winner on
// the live store. A budget sweep shows how GA quality scales with
// generations (the paper's ~3,350-evaluation operating point).
#include <cstdio>

#include "bench/common.h"
#include "collect/runner.h"
#include "opt/baselines.h"
#include "opt/ga.h"

using namespace rafiki;

int main() {
  auto options = benchutil::paper_options();
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  benchutil::note("collecting + training the surrogate...");
  rafiki.train(rafiki.collect());

  const double kReadRatio = 0.8;
  const auto space = rafiki.key_space();
  std::size_t surrogate_calls = 0;
  const auto objective = [&](std::span<const double> point) {
    ++surrogate_calls;
    return rafiki.predict(kReadRatio,
                          engine::Config::from_vector(engine::key_params(),
                                                      {point.begin(), point.end()}));
  };

  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 808080;
  workload::WorkloadSpec workload = options.base_workload;
  workload.read_ratio = kReadRatio;
  auto measure_point = [&](const std::vector<double>& point) {
    return collect::measure_throughput(
        engine::Config::from_vector(engine::key_params(), space.snap(point)), workload,
        verify);
  };
  const double fallback =
      collect::measure_throughput(engine::Config::defaults(), workload, verify);

  Table table({"strategy", "surrogate evals", "surrogate estimate",
               "measured ops/s", "gain over default"});
  auto add_row = [&](const std::string& name, std::size_t evals, double estimate,
                     const std::vector<double>& point) {
    const double measured = measure_point(point);
    table.add_row({name, std::to_string(evals), Table::ops(estimate),
                   Table::ops(measured),
                   Table::pct(100.0 * (measured - fallback) / fallback)});
    return measured;
  };

  surrogate_calls = 0;
  const auto ga = opt::ga_optimize(space, objective, options.ga);
  const double ga_measured = add_row("genetic algorithm", surrogate_calls,
                                     ga.best_fitness, ga.best_point);

  surrogate_calls = 0;
  const auto random = opt::random_search(space, objective, ga.evaluations, 21);
  const double random_measured =
      add_row("random search (same budget)", surrogate_calls, random.best_fitness,
              random.best_point);

  surrogate_calls = 0;
  const auto greedy = opt::greedy_search(
      space, objective, engine::Config::defaults().vector_for(engine::key_params()), 8, 3);
  add_row("greedy coordinate sweep", surrogate_calls, greedy.best_fitness,
          greedy.best_point);

  surrogate_calls = 0;
  const std::vector<std::size_t> levels = {2, 4, 5, 5, 4};
  const auto grid = opt::grid_search(space, objective, levels);
  add_row("coarse grid (800 pts)", surrogate_calls, grid.best_fitness, grid.best_point);

  benchutil::emit(table, "Ablation: search strategies over the surrogate (RR=80%)");

  // GA budget sweep.
  Table sweep({"generations", "evals", "surrogate estimate"});
  for (std::size_t generations : {5u, 15u, 35u, 70u, 140u}) {
    auto ga_options = options.ga;
    ga_options.generations = generations;
    surrogate_calls = 0;
    const auto result = opt::ga_optimize(space, objective, ga_options);
    sweep.add_row({std::to_string(generations), std::to_string(surrogate_calls),
                   Table::ops(result.best_fitness)});
  }
  benchutil::emit(sweep, "GA quality vs evaluation budget");

  benchutil::compare("GA vs random at equal budget", "GA better or equal",
                     Table::pct(100.0 * (ga_measured - random_measured) /
                                random_measured));
  benchutil::compare("~3,350 surrogate calls suffice", "yes (paper Section 4.8)",
                     std::to_string(ga.evaluations) + " evals used");
  return 0;
}
