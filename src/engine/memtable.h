// The in-memory write-back cache of the LSM write path (Section 2.2.1):
// writes accumulate here until the cleanup threshold triggers a flush that
// turns the memtable into an immutable SSTable. Deletes write tombstone
// rows, which occupy space until compaction eventually evicts them.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace rafiki::engine {

class Memtable {
 public:
  struct Row {
    std::uint32_t value_bytes = 0;
    bool tombstone = false;
  };

  /// Inserts or overwrites a row; returns the net byte growth (an update in
  /// place only grows by the size delta, as the old version is superseded).
  std::int64_t put(std::int64_t key, std::uint32_t value_bytes) {
    return emplace(key, value_bytes, false);
  }

  /// Writes a deletion marker; the tombstone itself occupies a small row.
  std::int64_t put_tombstone(std::int64_t key) { return emplace(key, 0, true); }

  bool contains(std::int64_t key) const { return rows_.contains(key); }
  /// True if the newest version here is a deletion marker.
  bool is_tombstone(std::int64_t key) const {
    const auto it = rows_.find(key);
    return it != rows_.end() && it->second.tombstone;
  }

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::uint64_t bytes() const noexcept { return static_cast<std::uint64_t>(bytes_); }
  bool empty() const noexcept { return rows_.empty(); }

  const std::unordered_map<std::int64_t, Row>& rows() const noexcept { return rows_; }

  void clear() {
    rows_.clear();
    bytes_ = 0;
  }

  /// Per-row bookkeeping overhead (key, timestamps, structure), matching the
  /// accounting Cassandra applies against memtable_cleanup_threshold.
  static constexpr std::int64_t kRowOverheadBytes = 48;

 private:
  std::int64_t emplace(std::int64_t key, std::uint32_t value_bytes, bool tombstone) {
    auto [it, inserted] = rows_.try_emplace(key, Row{value_bytes, tombstone});
    std::int64_t delta;
    if (inserted) {
      delta = static_cast<std::int64_t>(value_bytes) + kRowOverheadBytes;
    } else {
      delta = static_cast<std::int64_t>(value_bytes) -
              static_cast<std::int64_t>(it->second.value_bytes);
      it->second = Row{value_bytes, tombstone};
    }
    bytes_ += delta;
    return delta;
  }

  std::unordered_map<std::int64_t, Row> rows_;
  std::int64_t bytes_ = 0;
};

}  // namespace rafiki::engine
