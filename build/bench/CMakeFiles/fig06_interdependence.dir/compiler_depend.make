# Empty compiler generated dependencies file for fig06_interdependence.
# This may be replaced when dependencies are built.
