#include "serve/retrain.h"

#include <chrono>
#include <utility>

namespace rafiki::serve {

RetrainWorker::RetrainWorker(RunFn run, RetrainOptions options, ServiceStats* stats)
    : run_(std::move(run)), options_(options), stats_(stats) {}

RetrainWorker::~RetrainWorker() { stop(/*drain=*/false); }

RetrainWorker::Ticket RetrainWorker::finished_ticket(RetrainEnqueue result) {
  Ticket ticket;
  ticket.result = result;
  std::promise<RetrainOutcome> promise;
  ticket.done = promise.get_future().share();
  promise.set_value(RetrainOutcome::kCancelled);
  return ticket;
}

RetrainWorker::Ticket RetrainWorker::enqueue(std::uint64_t key, double read_ratio) {
  Ticket ticket;
  std::size_t depth_after = 0;
  {
    MutexLock lock(mutex_);
    if (stopping_ || stopped_) return finished_ticket(RetrainEnqueue::kStopped);
    const auto pending = pending_.find(key);
    if (pending != pending_.end()) {
      ticket.result = RetrainEnqueue::kCoalesced;
      ticket.done = pending->second;
    } else if (tasks_.size() >= options_.queue_capacity) {
      ticket = finished_ticket(RetrainEnqueue::kRejected);
    } else {
      Task task;
      task.key = key;
      task.read_ratio = read_ratio;
      task.future = task.promise.get_future().share();
      pending_.emplace(key, task.future);
      ticket.result = RetrainEnqueue::kEnqueued;
      ticket.done = task.future;
      tasks_.push_back(std::move(task));
      depth_after = tasks_.size();
    }
  }
  if (ticket.result == RetrainEnqueue::kEnqueued) {
    ready_.notify_one();
    if (stats_) stats_->record_retrain_enqueue(depth_after);
  } else if (ticket.result == RetrainEnqueue::kCoalesced) {
    if (stats_) stats_->record_retrain_coalesced();
  } else if (ticket.result == RetrainEnqueue::kRejected) {
    if (stats_) stats_->record_retrain_rejected();
  }
  return ticket;
}

void RetrainWorker::start() {
  MutexLock lock(mutex_);
  if (started_ || stopping_ || stopped_) return;
  started_ = true;
  thread_ = std::thread([this] { loop(); });
}

void RetrainWorker::loop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) ready_.wait(mutex_);
      if (tasks_.empty()) break;                 // stopping with nothing queued
      if (stopping_ && !drain_on_stop_) break;   // cancel mode: stop() fails the backlog
      task = std::move(tasks_.front());
      tasks_.pop_front();
      running_ = true;
    }

    // det:ok(wall-clock): reporting-only retrain latency measurement
    const auto t0 = std::chrono::steady_clock::now();
    run_(task.key, task.read_ratio);
    // det:ok(wall-clock): reporting-only retrain latency measurement
    const auto t1 = std::chrono::steady_clock::now();
    if (stats_) {
      stats_->record_retrain(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }

    {
      MutexLock lock(mutex_);
      pending_.erase(task.key);
      running_ = false;
    }
    task.promise.set_value(RetrainOutcome::kCompleted);
    idle_.notify_all();
  }
}

void RetrainWorker::stop(bool drain) {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    drain_on_stop_ = drain;
  }
  ready_.notify_all();
  if (thread_.joinable()) thread_.join();

  // Whatever the loop left behind (cancel mode, or stop before start):
  // resolve every promise instead of abandoning its futures.
  std::deque<Task> leftover;
  {
    MutexLock lock(mutex_);
    stopped_ = true;
    leftover.swap(tasks_);
    pending_.clear();
  }
  for (auto& task : leftover) task.promise.set_value(RetrainOutcome::kCancelled);
  if (stats_ && !leftover.empty()) {
    stats_->record_retrain_cancelled(static_cast<std::uint64_t>(leftover.size()));
  }
  idle_.notify_all();
}

std::size_t RetrainWorker::depth() const {
  MutexLock lock(mutex_);
  return tasks_.size();
}

bool RetrainWorker::stopping() const {
  MutexLock lock(mutex_);
  return stopping_;
}

void RetrainWorker::wait_idle() {
  MutexLock lock(mutex_);
  while (!stopped_ && !(tasks_.empty() && !running_)) idle_.wait(mutex_);
}

}  // namespace rafiki::serve
