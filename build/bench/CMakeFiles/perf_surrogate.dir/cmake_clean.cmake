file(REMOVE_RECURSE
  "CMakeFiles/perf_surrogate.dir/perf_surrogate.cpp.o"
  "CMakeFiles/perf_surrogate.dir/perf_surrogate.cpp.o.d"
  "perf_surrogate"
  "perf_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
