#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rafiki {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double max_of(std::span<const double> xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double correlation(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double fit_exponential_mean(std::span<const double> xs) noexcept { return mean(xs); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) noexcept {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace rafiki
