#include "ml/dtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/matrix.h"

namespace rafiki::ml {
namespace {

double subset_mean(std::span<const double> y, const std::vector<std::size_t>& idx) {
  double s = 0.0;
  for (auto i : idx) s += y[i];
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

double subset_sse(std::span<const double> y, const std::vector<std::size_t>& idx) {
  const double m = subset_mean(y, idx);
  double s = 0.0;
  for (auto i : idx) s += (y[i] - m) * (y[i] - m);
  return s;
}

/// Ridge-regularized least squares y ~ X*beta + bias; returns coefficients
/// with the bias appended.
std::vector<double> fit_ridge(const std::vector<std::vector<double>>& X,
                              std::span<const double> y,
                              const std::vector<std::size_t>& idx, double lambda) {
  const std::size_t d = X.front().size();
  Matrix design(idx.size(), d + 1);
  std::vector<double> target(idx.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::size_t c = 0; c < d; ++c) design(r, c) = X[idx[r]][c];
    design(r, d) = 1.0;
    target[r] = y[idx[r]];
  }
  Matrix gram = design.gram();
  gram.add_diagonal(lambda);
  auto rhs = design.transpose_times(target);
  auto beta = gram.solve_spd(rhs);
  if (beta.empty()) {
    beta.assign(d + 1, 0.0);
    beta[d] = subset_mean(y, idx);
  }
  return beta;
}

}  // namespace

void DecisionTreeRegressor::fit(const std::vector<std::vector<double>>& X,
                                std::span<const double> y, const DTreeOptions& options) {
  X_ = &X;
  y_ = y;
  options_ = options;
  node_count_ = 0;
  depth_ = 0;
  std::vector<std::size_t> indices(X.size());
  std::iota(indices.begin(), indices.end(), 0);
  root_ = build(indices, 0);
  X_ = nullptr;
  y_ = {};
}

std::unique_ptr<DecisionTreeRegressor::Node> DecisionTreeRegressor::build(
    std::vector<std::size_t>& indices, std::size_t depth) {
  auto node = std::make_unique<Node>();
  ++node_count_;
  depth_ = std::max(depth_, depth);
  const auto& X = *X_;

  const bool can_split = depth < options_.max_depth &&
                         indices.size() >= 2 * options_.min_samples_leaf;
  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  if (can_split) {
    const double parent_sse = subset_sse(y_, indices);
    const std::size_t d = X.front().size();
    for (std::size_t f = 0; f < d; ++f) {
      // Sort by feature, scan candidate thresholds at value boundaries.
      std::sort(indices.begin(), indices.end(),
                [&](std::size_t a, std::size_t b) { return X[a][f] < X[b][f]; });
      double left_sum = 0.0, left_sq = 0.0;
      double total_sum = 0.0, total_sq = 0.0;
      for (auto i : indices) {
        total_sum += y_[i];
        total_sq += y_[i] * y_[i];
      }
      for (std::size_t k = 0; k + 1 < indices.size(); ++k) {
        const double yi = y_[indices[k]];
        left_sum += yi;
        left_sq += yi * yi;
        if (X[indices[k]][f] == X[indices[k + 1]][f]) continue;
        const auto n_left = static_cast<double>(k + 1);
        const auto n_right = static_cast<double>(indices.size() - k - 1);
        const auto min_leaf = static_cast<double>(options_.min_samples_leaf);
        if (n_left < min_leaf || n_right < min_leaf) {
          continue;
        }
        const double sse_left = left_sq - left_sum * left_sum / n_left;
        const double right_sum = total_sum - left_sum;
        const double sse_right = (total_sq - left_sq) - right_sum * right_sum / n_right;
        const double gain = parent_sse - sse_left - sse_right;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (X[indices[k]][f] + X[indices[k + 1]][f]);
        }
      }
    }
  }

  if (best_gain > 1e-12) {
    node->feature = best_feature;
    node->threshold = best_threshold;
    std::vector<std::size_t> left, right;
    for (auto i : indices) {
      (X[i][best_feature] <= best_threshold ? left : right).push_back(i);
    }
    node->left = build(left, depth + 1);
    node->right = build(right, depth + 1);
    return node;
  }

  if (options_.linear_leaves && indices.size() > X.front().size() + 1) {
    node->linear = fit_ridge(X, y_, indices, options_.ridge_lambda);
  }
  node->value = subset_mean(y_, indices);
  return node;
}

const DecisionTreeRegressor::Node* DecisionTreeRegressor::descend(
    std::span<const double> x) const {
  const Node* node = root_.get();
  while (node && !node->is_leaf()) {
    node = x[node->feature] <= node->threshold ? node->left.get() : node->right.get();
  }
  return node;
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  const Node* leaf = descend(x);
  if (!leaf) return 0.0;
  if (!leaf->linear.empty()) {
    double s = leaf->linear.back();
    for (std::size_t c = 0; c < x.size() && c + 1 < leaf->linear.size(); ++c) {
      s += leaf->linear[c] * x[c];
    }
    return s;
  }
  return leaf->value;
}

}  // namespace rafiki::ml
