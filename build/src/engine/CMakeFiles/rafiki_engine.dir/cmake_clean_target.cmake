file(REMOVE_RECURSE
  "librafiki_engine.a"
)
