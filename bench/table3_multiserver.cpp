// Table 3 + Section 4.9: improvement of Rafiki-selected configurations over
// the default for a single server vs a two-server peer cluster. The paper's
// two-server setup adds one more shooter and raises the replication factor
// by one so each instance stores an equivalent number of keys.
#include <cstdio>

#include "bench/common.h"
#include "engine/cluster.h"

using namespace rafiki;

namespace {

double cluster_throughput(const engine::Config& config, double rr, int servers,
                          const workload::WorkloadSpec& base) {
  workload::WorkloadSpec spec = base;
  spec.read_ratio = rr;
  engine::Cluster cluster(config, servers, /*replication_factor=*/servers);
  {
    workload::Generator preload_gen(spec, 1);
    cluster.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> shooters;
  for (int s = 0; s < servers; ++s) shooters.emplace_back(spec, 9000 + s);
  engine::RunOptions opts;
  opts.ops = 60000;
  opts.seed = 31337;
  return cluster.run(shooters, opts).throughput_ops;
}

}  // namespace

int main() {
  auto options = benchutil::paper_options();
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  benchutil::note("training the single-server surrogate (20 configs x 11 workloads)...");
  rafiki.train(rafiki.collect());

  const std::vector<double> read_ratios = {0.1, 0.5, 1.0};
  Table table({"workload", "RR=10%", "RR=50%", "RR=100%"});
  std::vector<std::string> single_row = {"Single Server Improve"};
  std::vector<std::string> dual_row = {"Two Servers Improve"};
  double single_sum = 0.0, dual_sum = 0.0;
  for (double rr : read_ratios) {
    const auto tuned = rafiki.optimize(rr).config;
    const double s_def =
        cluster_throughput(engine::Config::defaults(), rr, 1, options.base_workload);
    const double s_opt = cluster_throughput(tuned, rr, 1, options.base_workload);
    const double d_def =
        cluster_throughput(engine::Config::defaults(), rr, 2, options.base_workload);
    const double d_opt = cluster_throughput(tuned, rr, 2, options.base_workload);
    const double s_gain = 100.0 * (s_opt - s_def) / s_def;
    const double d_gain = 100.0 * (d_opt - d_def) / d_def;
    single_row.push_back(Table::pct(s_gain));
    dual_row.push_back(Table::pct(d_gain));
    single_sum += s_gain;
    dual_sum += d_gain;
    std::printf("RR=%.0f%%: single %s -> %s, dual %s -> %s (config %s)\n", rr * 100,
                Table::ops(s_def).c_str(), Table::ops(s_opt).c_str(),
                Table::ops(d_def).c_str(), Table::ops(d_opt).c_str(),
                tuned.to_string().c_str());
  }
  table.add_row(single_row);
  table.add_row(dual_row);
  benchutil::emit(table, "Table 3: Rafiki vs default, single vs two servers");

  benchutil::compare("single-server improvements (RR 10/50/100)",
                     "15.2% / 41.34% / 48.35%",
                     single_row[1] + " / " + single_row[2] + " / " + single_row[3]);
  benchutil::compare("two-server improvements (RR 10/50/100)", "3.2% / 67.37% / 51.4%",
                     dual_row[1] + " / " + dual_row[2] + " / " + dual_row[3]);
  benchutil::compare("average improvement single vs dual", "34% vs 40% (similar)",
                     Table::pct(single_sum / 3.0) + " vs " + Table::pct(dual_sum / 3.0));
  return 0;
}
