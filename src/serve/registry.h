// Atomically-swapped publication slot for immutable artifacts. Readers grab
// a shared_ptr with a single atomic load — they never block behind a
// publisher holding a mutex, and whatever snapshot they grabbed stays alive
// (refcounted) for as long as they use it, however many swaps happen
// meanwhile. This is what lets a background retrain republish a new model
// version with zero downtime for in-flight requests.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

// libstdc++'s lock-free std::atomic<shared_ptr> (_Sp_atomic) protects its
// internal pointer with a lock bit embedded in the refcount word and releases
// the reader side with a relaxed store. The mutual exclusion is real, but
// TSan's happens-before machinery cannot see it, so every concurrent
// get()/set() pair reports a false race inside the library. Under TSan we
// substitute a mutex-backed slot — identical semantics, and the rest of the
// serve layer still gets checked — and keep the lock-free path everywhere
// else.
#if defined(__SANITIZE_THREAD__)
#define RAFIKI_REGISTRY_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAFIKI_REGISTRY_TSAN 1
#endif
#endif

#if defined(RAFIKI_REGISTRY_TSAN)
#include <mutex>
#endif

namespace rafiki::serve {

template <typename T>
class VersionedRegistry {
 public:
  /// Current value (may be null before the first publication). The returned
  /// shared_ptr pins that version for the caller's lifetime of use.
  std::shared_ptr<const T> get() const noexcept {
#if defined(RAFIKI_REGISTRY_TSAN)
    std::lock_guard<std::mutex> lock(mutex_);
    return slot_;
#else
    return slot_.load(std::memory_order_acquire);
#endif
  }

  /// Atomically replaces the published value; concurrent readers keep
  /// whatever version they already hold.
  void set(std::shared_ptr<const T> value) noexcept {
#if defined(RAFIKI_REGISTRY_TSAN)
    std::lock_guard<std::mutex> lock(mutex_);
    slot_ = std::move(value);
#else
    slot_.store(std::move(value), std::memory_order_release);
#endif
  }

 private:
#if defined(RAFIKI_REGISTRY_TSAN)
  mutable std::mutex mutex_;
  std::shared_ptr<const T> slot_;
#else
  std::atomic<std::shared_ptr<const T>> slot_{};
#endif
};

}  // namespace rafiki::serve
