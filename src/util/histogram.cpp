#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace rafiki {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins ? bins : 1)),
      counts_(bins ? bins : 1, 0) {}

void Histogram::add(double x) noexcept {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

void Histogram::add_binned(double x, std::size_t count) noexcept {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  counts_[bin] += count;
  total_ += count;
}

void Histogram::merge(const Histogram& other) noexcept {
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto count = static_cast<double>(counts_[i]);
    if (count == 0.0) continue;
    if (cum + count >= target) {
      const double frac = std::clamp((target - cum) / count, 0.0, 1.0);
      return bin_lo(i) + frac * width_;
    }
    cum += count;
  }
  return hi_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(max_count) *
        static_cast<double>(max_bar_width));
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %-*s %zu\n", bin_lo(i), bin_hi(i),
                  static_cast<int>(max_bar_width),
                  std::string(bar, '#').c_str(), counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace rafiki
