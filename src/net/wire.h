// Deterministic wire codec for the tuning service's RPC front-end.
//
// Framing is length-prefixed with a fixed-size header; every multi-byte
// field is serialized explicitly little-endian, one byte at a time — never a
// memcpy of an in-memory struct — so the format is identical across
// architectures and compilers (see the `wire-memcpy` rule in
// tools/lint_rules.md). Doubles travel as their IEEE-754 bit pattern
// (std::bit_cast to u64), so an encode/decode round trip is bit-exact.
//
// Protocol version 2 ("RKF2") header — 24 bytes:
//
//   offset  size  field
//   0       4     magic          0x524B4631 ("1FKR" on the wire, LE)
//   4       1     version        2 (kProtocolVersion)
//   5       1     frame type     FrameType (request / response / error)
//   6       1     endpoint       serve::Endpoint (0 for error frames)
//   7       1     code           request: 0; response: serve::Status;
//                                error: WireError
//   8       8     request id     caller-chosen correlation id (pipelining)
//   16      4     tenant id      serve::TenantId namespace (0 = default)
//   20      4     payload length bounded by the decoder's max_payload
//
// Version 1 ("RKF1") frames are the same layout minus the tenant field
// (20-byte header, payload length at offset 16). The decoder still accepts
// them — compat decode: the frame lands in tenant 0 and `Frame::version`
// records 1 so a server can answer a v1 peer in v1. Any *other* version byte
// is fatal (kBadVersion): an unknown header layout means the stream offset
// itself cannot be trusted, per the PR 4 fatal-vs-recoverable taxonomy.
// Payload bodies are identical in both versions.
//
// Decode is fuzz-resistant by construction: all reads are bounds-checked
// cursor operations, lengths are bounded before any buffering decision, enum
// bytes are range-checked against the *Count constants, and non-finite
// doubles in payloads are rejected. Malformed input splits into *recoverable*
// errors (valid header, bad body — the peer gets an error frame and the
// stream continues) and *fatal* ones (the framing itself can't be trusted —
// the connection closes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/types.h"

namespace rafiki::net {

inline constexpr std::uint32_t kMagic = 0x524B4631u;  // "1FKR" little-endian
inline constexpr std::uint8_t kProtocolVersion = 2;
/// Oldest version the decoder still accepts (compat decode into tenant 0).
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Header size of a version-1 frame (no tenant field).
inline constexpr std::size_t kHeaderSizeV1 = 20;
/// Default per-frame payload bound; both sides reject bigger claims before
/// buffering anything, so a hostile length prefix cannot balloon memory.
inline constexpr std::size_t kDefaultMaxPayload = 1 << 16;

enum class FrameType : std::uint8_t { kRequest = 0, kResponse = 1, kError = 2 };
inline constexpr std::size_t kFrameTypeCount = 3;

/// Wire-level error codes carried by error frames (header `code` byte).
/// Service-level outcomes (Overloaded, ShuttingDown, ...) are NOT errors:
/// they travel as regular response frames with the corresponding
/// serve::Status, so clients always see a typed response.
enum class WireError : std::uint8_t {
  kNone = 0,
  /// Header was well-formed but the frame type or an enum byte was out of
  /// range.
  kBadFrame,
  /// Payload failed validation (wrong size, bad config count, non-finite
  /// doubles).
  kBadPayload,
  kUnsupportedVersion,
  kPayloadTooLarge,
  /// Request named an endpoint outside serve::Endpoint's range.
  kUnknownEndpoint,
};
inline constexpr std::size_t kWireErrorCount = 6;

/// Outcome of a decode attempt over a byte stream.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  /// Not enough bytes buffered for a full frame yet; read more and retry.
  kNeedMore,
  // --- fatal: the stream cannot be resynchronized; close the connection ---
  kBadMagic,
  kBadVersion,
  kBadLength,
  // --- recoverable: header valid, frame skipped; answer with an error frame ---
  kBadFrameType,
  kBadEnum,
  kBadPayload,
};
inline constexpr std::size_t kDecodeStatusCount = 8;

/// True for decode outcomes after which the byte stream is still usable.
constexpr bool decode_recoverable(DecodeStatus status) noexcept {
  return status == DecodeStatus::kBadFrameType || status == DecodeStatus::kBadEnum ||
         status == DecodeStatus::kBadPayload;
}

const char* frame_type_name(FrameType type) noexcept;
const char* wire_error_name(WireError error) noexcept;
const char* decode_status_name(DecodeStatus status) noexcept;

/// One decoded frame. Which member is meaningful depends on `type`.
struct Frame {
  FrameType type = FrameType::kRequest;
  serve::Endpoint endpoint = serve::Endpoint::kPredict;
  std::uint64_t request_id = 0;
  /// Header version this frame arrived in (1 or 2). A server answers each
  /// peer in the version the peer spoke.
  std::uint8_t version = kProtocolVersion;
  /// Tenant namespace from the v2 header (always 0 for v1 frames). For
  /// request frames this is also copied into `request.tenant`.
  serve::TenantId tenant = 0;
  serve::Request request;    ///< type == kRequest
  serve::Response response;  ///< type == kResponse
  WireError error = WireError::kNone;  ///< type == kError
};

// --- primitive little-endian put/get helpers (exposed for the codec tests) ---

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

/// Bounds-checked read cursor over a byte span. Every get_* returns false
/// (without advancing) once the remaining bytes run out — the decoder can
/// never over-read, whatever the input claims.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool get_u8(std::uint8_t& v) noexcept;
  bool get_u16(std::uint16_t& v) noexcept;
  bool get_u32(std::uint32_t& v) noexcept;
  bool get_u64(std::uint64_t& v) noexcept;
  bool get_f64(double& v) noexcept;
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- frame encoders (append to `out`) ---
//
// `version` selects the header layout (2 by default; 1 emits the legacy
// 20-byte header, dropping the tenant field — v1 peers have no tenant
// namespace on the wire). Payload bytes are identical in both versions.

void encode_request(std::uint64_t request_id, const serve::Request& request,
                    std::vector<std::uint8_t>& out,
                    std::uint8_t version = kProtocolVersion);
void encode_response(std::uint64_t request_id, serve::Endpoint endpoint,
                     const serve::Response& response, std::vector<std::uint8_t>& out,
                     serve::TenantId tenant = 0,
                     std::uint8_t version = kProtocolVersion);
void encode_error(std::uint64_t request_id, WireError error,
                  std::vector<std::uint8_t>& out, serve::TenantId tenant = 0,
                  std::uint8_t version = kProtocolVersion);

/// Attempts to decode one frame from the front of [data, data + size).
///
///   kOk          — `frame` is filled; `consumed` is the whole frame size.
///   kNeedMore    — incomplete; `consumed` is 0.
///   recoverable  — header was valid: `frame.request_id` / `frame.endpoint`
///                  are set (best effort), `consumed` skips the bad frame so
///                  the caller can answer with an error frame and continue.
///   fatal        — `consumed` is 0; the caller must drop the connection
///                  (after optionally sending one last error frame).
DecodeStatus decode_frame(const std::uint8_t* data, std::size_t size,
                          std::size_t max_payload, Frame& frame, std::size_t& consumed);

}  // namespace rafiki::net
