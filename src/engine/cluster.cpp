#include "engine/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace rafiki::engine {
namespace {

constexpr std::size_t kEpochOps = 256;
/// Request coordination (parse, routing, response assembly) added to every
/// operation in a multi-node deployment.
constexpr double kCoordinatorUs = 9.0;

}  // namespace

Cluster::Cluster(const Config& config, int n_servers, int replication_factor,
                 Hardware hardware, CostModel costs)
    : replication_factor_(std::clamp(replication_factor, 1, std::max(1, n_servers))) {
  if (n_servers < 1) throw std::invalid_argument("Cluster: need at least one server");
  costs.read_base_us += kCoordinatorUs;
  costs.write_base_us += kCoordinatorUs;
  servers_.reserve(static_cast<std::size_t>(n_servers));
  for (int i = 0; i < n_servers; ++i) {
    servers_.push_back(std::make_unique<Server>(config, hardware, costs));
  }
}

std::size_t Cluster::primary_of(std::int64_t key) const noexcept {
  return static_cast<std::size_t>(static_cast<std::uint64_t>(key) * 2654435761ull %
                                  servers_.size());
}

void Cluster::preload(std::span<const std::int64_t> keys, std::uint32_t value_bytes) {
  std::vector<std::vector<std::int64_t>> per_server(servers_.size());
  for (auto key : keys) {
    const std::size_t primary = primary_of(key);
    for (int r = 0; r < replication_factor_; ++r) {
      per_server[(primary + static_cast<std::size_t>(r)) % servers_.size()].push_back(key);
    }
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->preload(per_server[i], value_bytes);
  }
}

RunStats Cluster::run(std::vector<workload::Generator>& shooters, const RunOptions& opts) {
  if (shooters.empty()) throw std::invalid_argument("Cluster::run: no shooters");
  const std::size_t total_ops = opts.ops * shooters.size();
  std::vector<std::vector<workload::Op>> per_server(servers_.size());
  double elapsed_us = 0.0;
  std::size_t done = 0;

  while (done < total_ops) {
    for (auto& ops : per_server) ops.clear();
    const std::size_t batch = std::min(kEpochOps * shooters.size(), total_ops - done);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto op = shooters[i % shooters.size()].next();
      if (op.kind == workload::Op::Kind::kRead) {
        // Consistency level ONE: one replica answers; rotate for balance.
        const std::size_t replica =
            (primary_of(op.key) + (read_rr_++ % static_cast<std::size_t>(replication_factor_))) %
            servers_.size();
        per_server[replica].push_back(op);
      } else {
        const std::size_t primary = primary_of(op.key);
        for (int r = 0; r < replication_factor_; ++r) {
          per_server[(primary + static_cast<std::size_t>(r)) % servers_.size()].push_back(op);
        }
      }
    }
    // Servers proceed in parallel; the epoch lasts as long as the slowest.
    double t_max = 0.0;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!per_server[i].empty()) {
        t_max = std::max(t_max, servers_[i]->step(per_server[i]));
      }
    }
    elapsed_us += t_max;
    done += batch;
  }

  RunStats stats;
  stats.ops = done;
  stats.virtual_seconds = elapsed_us / 1e6;
  stats.throughput_ops =
      stats.virtual_seconds > 0.0 ? static_cast<double>(done) / stats.virtual_seconds : 0.0;
  double probes = 0.0;
  std::size_t reads = 0;
  for (const auto& server : servers_) {
    stats.reads += server->read_count();
    stats.writes += server->write_count();
    stats.flushes += server->flush_count();
    stats.compactions += server->compaction_count();
    stats.final_sstable_count += server->sstables().size();
    probes += server->total_probes();
    reads += server->read_count();
  }
  stats.avg_sstables_probed = reads ? probes / static_cast<double>(reads) : 0.0;
  return stats;
}

}  // namespace rafiki::engine
