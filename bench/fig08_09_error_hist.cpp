// Figures 8 & 9 + Table 2's protocol: distribution of signed prediction
// errors over ten randomized 75/25 splits, withholding whole configurations
// (Figure 8) or whole workloads (Figure 9). The paper reports 7.5% / 5.6%
// average absolute error with most mass within +-5% and little bias.
#include <cstdio>

#include "bench/common.h"
#include "ml/metrics.h"
#include "util/histogram.h"
#include "util/stats.h"

using namespace rafiki;

namespace {

struct DimensionResult {
  std::vector<double> errors;  // signed percent errors pooled over trials
  double mean_abs = 0.0;
};

DimensionResult run_dimension(const collect::Dataset& dataset,
                              const core::RafikiOptions& options, bool by_config) {
  DimensionResult result;
  constexpr int kTrials = 10;
  double abs_sum = 0.0;
  std::size_t abs_n = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto split = by_config ? dataset.split_by_config(0.25, 300 + trial)
                                 : dataset.split_by_workload(0.25, 400 + trial);
    core::Rafiki model(options);
    model.set_key_params(engine::key_params());
    model.train(dataset.subset(split.train));
    std::vector<double> actual, predicted;
    for (auto i : split.test) {
      const auto& sample = dataset[i];
      actual.push_back(sample.throughput);
      predicted.push_back(model.predict(sample.workload.read_ratio, sample.config));
    }
    for (double e : ml::percent_errors(actual, predicted)) {
      result.errors.push_back(e);
      abs_sum += std::abs(e);
      ++abs_n;
    }
  }
  result.mean_abs = abs_n ? abs_sum / static_cast<double>(abs_n) : 0.0;
  return result;
}

void report(const char* title, const DimensionResult& result, const char* paper_avg) {
  Histogram histogram(-20.0, 20.0, 16);
  histogram.add_all(result.errors);
  benchutil::section(title);
  std::fputs(histogram.render().c_str(), stdout);
  std::size_t within5 = 0;
  for (double e : result.errors) within5 += std::abs(e) <= 5.0;
  std::printf("validations: %zu, mean signed error: %+.2f%%, mean |error|: %.2f%%, "
              "within +-5%%: %.0f%%\n",
              result.errors.size(), mean(result.errors), result.mean_abs,
              100.0 * static_cast<double>(within5) /
                  static_cast<double>(result.errors.size()));
  benchutil::compare("average absolute error", paper_avg,
                     Table::pct(result.mean_abs));
  benchutil::compare("bias (mean signed error)", "close to zero",
                     Table::pct(mean(result.errors)));
}

}  // namespace

int main() {
  auto options = benchutil::paper_options();
  options.collect.fault_rate = 20.0 / 220.0;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  benchutil::note("collecting the 200-sample training corpus...");
  const auto dataset = rafiki.collect();
  std::printf("collected %zu usable samples\n", dataset.size());

  const auto config_dim = run_dimension(dataset, options, /*by_config=*/true);
  report("Figure 8: error distribution, unseen configurations", config_dim, "7.5%");

  const auto workload_dim = run_dimension(dataset, options, /*by_config=*/false);
  report("Figure 9: error distribution, unseen workloads", workload_dim, "5.6%");

  benchutil::compare("workload dimension easier than config dimension",
                     "5.6% < 7.5%",
                     Table::pct(workload_dim.mean_abs) + " vs " +
                         Table::pct(config_dim.mean_abs));
  return 0;
}
