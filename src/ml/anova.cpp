#include "ml/anova.h"

#include <cmath>
#include <limits>

#include "util/stats.h"

namespace rafiki::ml {

OneWayAnovaResult one_way_anova(const std::vector<std::vector<double>>& groups) {
  OneWayAnovaResult result;
  std::size_t n_total = 0;
  double grand_sum = 0.0;
  std::size_t k = 0;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    ++k;
    n_total += group.size();
    for (double v : group) grand_sum += v;
  }
  if (k < 2 || n_total <= k) return result;
  const double grand_mean = grand_sum / static_cast<double>(n_total);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const double group_mean = rafiki::mean(group);
    ss_between += static_cast<double>(group.size()) * (group_mean - grand_mean) *
                  (group_mean - grand_mean);
    for (double v : group) ss_within += (v - group_mean) * (v - group_mean);
  }
  result.df_between = k - 1;
  result.df_within = n_total - k;
  result.between_mean_square = ss_between / static_cast<double>(result.df_between);
  result.within_mean_square = ss_within / static_cast<double>(result.df_within);
  if (result.within_mean_square <= 0.0) {
    result.f_statistic = std::numeric_limits<double>::infinity();
    result.p_value = 0.0;
    return result;
  }
  result.f_statistic = result.between_mean_square / result.within_mean_square;
  result.p_value = f_distribution_sf(result.f_statistic,
                                     static_cast<double>(result.df_between),
                                     static_cast<double>(result.df_within));
  return result;
}

double level_mean_stddev(const std::vector<std::vector<double>>& groups) {
  std::vector<double> means;
  for (const auto& group : groups) {
    if (!group.empty()) means.push_back(rafiki::mean(group));
  }
  return rafiki::stddev(means);
}

namespace {

/// Lentz continued fraction for the incomplete beta (Numerical Recipes betacf).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double f_distribution_sf(double f, double df1, double df2) {
  if (f <= 0.0) return 1.0;
  if (std::isinf(f)) return 0.0;
  // P(F > f) = I_{df2/(df2 + df1 f)}(df2/2, df1/2)
  const double x = df2 / (df2 + df1 * f);
  return regularized_incomplete_beta(df2 / 2.0, df1 / 2.0, x);
}

std::size_t distinct_drop_cutoff(const std::vector<AnovaRanking>& sorted_ranking,
                                 std::size_t min_k, std::size_t max_k) {
  if (sorted_ranking.size() <= min_k) return sorted_ranking.size();
  max_k = std::min(max_k, sorted_ranking.size() - 1);
  std::size_t best_k = min_k;
  double best_ratio = 0.0;
  for (std::size_t k = min_k; k <= max_k; ++k) {
    const double hi = sorted_ranking[k - 1].score;
    const double lo = sorted_ranking[k].score;
    const double ratio = lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace rafiki::ml
