// Figure 4 + Section 4.8: throughput of Cassandra under the default
// configuration vs Rafiki-optimized configurations across the read-ratio
// sweep, with exhaustive-search reference points at three workloads.
//
// Protocol (paper): collect 220 points (20 noisy ones dropped), train the
// surrogate on all remaining samples, GA-optimize per workload, then measure
// the chosen configs against the live (simulated) store. The exhaustive
// reference tests ~80 configurations per workload.
#include <cstdio>

#include "bench/common.h"
#include "collect/runner.h"
#include "opt/baselines.h"
#include "util/stats.h"

using namespace rafiki;

int main() {
  auto options = benchutil::paper_options();
  options.collect.fault_rate = 20.0 / 220.0;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());

  benchutil::note("collecting training data (20 configs x 11 workloads)...");
  const auto dataset = rafiki.collect();
  std::printf("collected %zu usable samples\n", dataset.size());
  rafiki.train(dataset);

  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 424242;  // measurement seeds unseen during training
  auto measure_at = [&](const engine::Config& config, double rr) {
    workload::WorkloadSpec workload = options.base_workload;
    workload.read_ratio = rr;
    return collect::measure_throughput(config, workload, verify);
  };

  // Exhaustive reference at three workloads, ~80 configs each (Section 4.8).
  const auto space = rafiki.key_space();
  const std::vector<std::size_t> grid_levels = {2, 2, 3, 3, 2};  // 72 configs
  auto exhaustive_at = [&](double rr) {
    return opt::grid_search(
        space,
        [&](std::span<const double> point) {
          return measure_at(engine::Config::from_vector(engine::key_params(),
                                                        {point.begin(), point.end()}),
                            rr);
        },
        grid_levels);
  };

  Table fig({"RR%", "default ops/s", "Rafiki ops/s", "gain", "exhaustive ops/s",
             "Rafiki config"});
  std::vector<double> gains, read_heavy_gains, write_heavy_gains, mixed_gains;
  std::vector<double> exhaustive_rrs = {0.1, 0.5, 0.9};
  for (double rr : options.workload_grid) {
    const double fallback = measure_at(engine::Config::defaults(), rr);
    const auto optimized = rafiki.optimize(rr);
    const double tuned = measure_at(optimized.config, rr);
    const double gain = 100.0 * (tuned - fallback) / fallback;
    gains.push_back(gain);
    if (rr >= 0.7) read_heavy_gains.push_back(gain);
    if (rr <= 0.3) write_heavy_gains.push_back(gain);
    if (rr > 0.3 && rr < 0.7) mixed_gains.push_back(gain);

    std::string exhaustive_cell = "-";
    for (double err : exhaustive_rrs) {
      if (std::abs(rr - err) < 1e-9) {
        const auto best = exhaustive_at(rr);
        exhaustive_cell = Table::ops(best.best_fitness);
      }
    }
    fig.add_row({Table::num(rr * 100, 0), Table::ops(fallback), Table::ops(tuned),
                 Table::pct(gain), exhaustive_cell, optimized.config.to_string()});
  }
  benchutil::emit(fig, "Figure 4: default vs Rafiki vs exhaustive (Cassandra)");

  // Cross-application penalty (Section 1's 42.9% claim): run each regime's
  // optimum under the opposite regime.
  const auto read_opt = rafiki.optimize(0.9).config;
  const auto write_opt = rafiki.optimize(0.1).config;
  const double read_at_read = measure_at(read_opt, 0.9);
  const double write_at_read = measure_at(write_opt, 0.9);
  const double write_at_write = measure_at(write_opt, 0.1);
  const double read_at_write = measure_at(read_opt, 0.1);
  Table cross({"config", "@RR=90%", "@RR=10%", "penalty when misapplied"});
  cross.add_row({"read-optimized", Table::ops(read_at_read), Table::ops(read_at_write),
                 Table::pct(100.0 * (write_at_write - read_at_write) / write_at_write)});
  cross.add_row({"write-optimized", Table::ops(write_at_read), Table::ops(write_at_write),
                 Table::pct(100.0 * (read_at_read - write_at_read) / read_at_read)});
  benchutil::emit(cross, "Cross-workload misconfiguration penalty");

  benchutil::compare("read-heavy gain (RR >= 70%)", "41% avg (39-45%)",
                     Table::pct(mean(read_heavy_gains)) + " avg (" +
                         Table::pct(min_of(read_heavy_gains)) + ".." +
                         Table::pct(max_of(read_heavy_gains)) + ")");
  benchutil::compare("write-heavy gain (RR <= 30%)", "14% avg (6-24%)",
                     Table::pct(mean(write_heavy_gains)) + " avg");
  benchutil::compare("mixed gain", "35%", Table::pct(mean(mixed_gains)) + " avg");
  benchutil::compare("overall average gain", "30%", Table::pct(mean(gains)));
  benchutil::compare("misapplied-config degradation", "up to 42.9%",
                     Table::pct(std::max(
                         100.0 * (write_at_write - read_at_write) / write_at_write,
                         100.0 * (read_at_read - write_at_read) / read_at_read)));
  return 0;
}
