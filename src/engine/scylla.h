// ScyllaDB-flavoured engine model (Section 4.10).
//
// ScyllaDB is a C++ reimplementation of Cassandra with a shard-per-core
// architecture and a user-transparent internal auto-tuner. The paper makes
// two observations that matter for Rafiki: (1) many user-set configuration
// parameters are silently ignored in favour of internally derived values, so
// external tuning has far less headroom (~9-12% vs 41%); and (2) even in a
// stationary system its throughput fluctuates strongly (dips of ~60% lasting
// ~40 s, Figure 10), which degrades surrogate-model accuracy.
//
// This model wraps the LSM Server with: (a) an effective-config derivation
// that overrides the ignored parameters with near-recommended internal
// values, (b) a cost model reflecting the faster C++/shard-per-core
// implementation, and (c) a deterministic throughput-fluctuation process
// injected through the server's performance-modulation hook.
#pragma once

#include <cstdint>
#include <span>

#include "engine/server.h"

namespace rafiki::engine {

class ScyllaServer {
 public:
  explicit ScyllaServer(const Config& requested, Hardware hardware = {},
                        std::uint64_t fluctuation_seed = 42);

  void preload(std::span<const std::int64_t> keys, std::uint32_t value_bytes,
               double version_dup = 0.65) {
    server_.preload(keys, value_bytes, version_dup);
  }
  RunStats run(workload::Generator& generator, const RunOptions& opts) {
    return server_.run(generator, opts);
  }

  /// The configuration actually in force after the internal auto-tuner
  /// discards ignored parameters and substitutes its own values.
  static Config effective_config(const Config& requested, const Hardware& hardware);

  /// Parameters whose user-provided values ScyllaDB ignores. Rafiki's
  /// ScyllaDB parameter selection (Section 4.10) strips these from the
  /// Cassandra ANOVA ranking before refilling to five key parameters.
  static const std::vector<ParamId>& ignored_params();

  /// Cost constants for the C++ engine: lower per-op CPU, faster background
  /// merges, negligible thread-pool contention (shard per core).
  static CostModel scylla_cost_model();

  const Server& server() const noexcept { return server_; }
  Server& server() noexcept { return server_; }

 private:
  Server server_;
};

}  // namespace rafiki::engine
