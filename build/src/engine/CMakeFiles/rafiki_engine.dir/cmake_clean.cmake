file(REMOVE_RECURSE
  "CMakeFiles/rafiki_engine.dir/cluster.cpp.o"
  "CMakeFiles/rafiki_engine.dir/cluster.cpp.o.d"
  "CMakeFiles/rafiki_engine.dir/compaction.cpp.o"
  "CMakeFiles/rafiki_engine.dir/compaction.cpp.o.d"
  "CMakeFiles/rafiki_engine.dir/config.cpp.o"
  "CMakeFiles/rafiki_engine.dir/config.cpp.o.d"
  "CMakeFiles/rafiki_engine.dir/params.cpp.o"
  "CMakeFiles/rafiki_engine.dir/params.cpp.o.d"
  "CMakeFiles/rafiki_engine.dir/scylla.cpp.o"
  "CMakeFiles/rafiki_engine.dir/scylla.cpp.o.d"
  "CMakeFiles/rafiki_engine.dir/server.cpp.o"
  "CMakeFiles/rafiki_engine.dir/server.cpp.o.d"
  "CMakeFiles/rafiki_engine.dir/sstable.cpp.o"
  "CMakeFiles/rafiki_engine.dir/sstable.cpp.o.d"
  "librafiki_engine.a"
  "librafiki_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
