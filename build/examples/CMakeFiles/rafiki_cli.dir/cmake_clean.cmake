file(REMOVE_RECURSE
  "CMakeFiles/rafiki_cli.dir/rafiki_cli.cpp.o"
  "CMakeFiles/rafiki_cli.dir/rafiki_cli.cpp.o.d"
  "rafiki_cli"
  "rafiki_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
