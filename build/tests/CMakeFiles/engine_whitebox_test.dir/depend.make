# Empty dependencies file for engine_whitebox_test.
# This may be replaced when dependencies are built.
