// Regression-tree baseline (Section 3.7.2): the paper tried an interpretable
// decision-tree surrogate, found plain axis-aligned trees "woefully
// inadequate", and saw improvement only when leaves were allowed linear
// combinations of the parameters — at the cost of interpretability. Both
// variants are implemented so that comparison can be reproduced.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace rafiki::ml {

struct DTreeOptions {
  std::size_t max_depth = 6;
  std::size_t min_samples_leaf = 5;
  /// When true, each leaf fits a ridge-regularized linear model instead of a
  /// constant (the paper's "linear combination of the parameters" variant).
  bool linear_leaves = false;
  double ridge_lambda = 1e-3;
};

class DecisionTreeRegressor {
 public:
  void fit(const std::vector<std::vector<double>>& X, std::span<const double> y,
           const DTreeOptions& options = {});
  double predict(std::span<const double> x) const;
  bool trained() const noexcept { return root_ != nullptr; }
  std::size_t node_count() const noexcept { return node_count_; }
  std::size_t depth() const noexcept { return depth_; }

 private:
  struct Node {
    // Internal node.
    std::size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    // Leaf payload: constant prediction, or linear coefficients (bias last).
    double value = 0.0;
    std::vector<double> linear;
    bool is_leaf() const noexcept { return !left; }
  };

  std::unique_ptr<Node> build(std::vector<std::size_t>& indices, std::size_t depth);
  const Node* descend(std::span<const double> x) const;

  const std::vector<std::vector<double>>* X_ = nullptr;  // only during fit
  std::span<const double> y_;                            // only during fit
  DTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::size_t node_count_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace rafiki::ml
