# Empty dependencies file for fig10_variance.
# This may be replaced when dependencies are built.
