// Immutable on-disk table representation (Section 2.2.1): a sorted run of
// keys with a real Bloom filter, plus deletion markers (tombstones).
// Flushes create SSTables from memtables; compactions merge SSTables with
// newest-version-wins semantics, deduplicating superseded row versions and —
// when the merge covers every older version — evicting tombstones.
//
// Values are represented by per-table average row size rather than stored
// bytes — the engine charges I/O costs from byte counts while keeping the
// key structure exact, which is what read amplification depends on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/bloom.h"

namespace rafiki::engine {

class SSTable {
 public:
  /// Builds a table from (not necessarily sorted) keys; entries also listed
  /// in `tombstones` are deletion markers.
  SSTable(std::uint32_t id, std::vector<std::int64_t> keys, double avg_row_bytes,
          double bloom_fp_chance, int level = 0,
          std::vector<std::int64_t> tombstones = {});

  std::uint32_t id() const noexcept { return id_; }
  int level() const noexcept { return level_; }
  void set_level(int level) noexcept { level_ = level; }

  std::size_t key_count() const noexcept { return keys_.size(); }
  std::size_t tombstone_count() const noexcept { return tombstones_.size(); }
  /// On-disk footprint: data rows at the average row size, tombstones at
  /// marker size.
  double bytes() const noexcept {
    return avg_row_bytes_ * static_cast<double>(keys_.size() - tombstones_.size()) +
           kTombstoneBytes * static_cast<double>(tombstones_.size());
  }
  double avg_row_bytes() const noexcept { return avg_row_bytes_; }

  std::int64_t min_key() const noexcept { return keys_.empty() ? 0 : keys_.front(); }
  std::int64_t max_key() const noexcept { return keys_.empty() ? -1 : keys_.back(); }

  bool range_covers(std::int64_t key) const noexcept {
    return !keys_.empty() && key >= keys_.front() && key <= keys_.back();
  }
  bool overlaps(const SSTable& other) const noexcept {
    return !keys_.empty() && !other.keys_.empty() && min_key() <= other.max_key() &&
           other.min_key() <= max_key();
  }

  /// Bloom-filter check — may return false positives, never false negatives.
  bool maybe_contains(std::int64_t key) const noexcept {
    return bloom_.maybe_contains(key);
  }
  /// Exact membership via binary search (the "index probe" of the read path).
  bool has_key(std::int64_t key) const noexcept;
  /// True if this table's version of the key is a deletion marker.
  bool is_tombstone(std::int64_t key) const noexcept;
  /// Rank of the key within the table, used to derive the chunk (page) index
  /// a read touches. Meaningful only when has_key/range_covers holds.
  std::size_t key_rank(std::int64_t key) const noexcept;

  std::span<const std::int64_t> keys() const noexcept { return keys_; }
  std::span<const std::int64_t> tombstones() const noexcept { return tombstones_; }

  /// Merges several tables into one deduplicated run (compaction): the
  /// version from the newest input (highest table id) wins per key. With
  /// `drop_tombstones`, keys whose surviving version is a deletion marker
  /// are evicted entirely — legal only when the merge covers every older
  /// version of its keys, which the caller asserts by setting the flag.
  static SSTable merge(std::uint32_t new_id, std::span<const SSTable* const> inputs,
                       double bloom_fp_chance, int level, bool drop_tombstones = false);

  /// Splits a sorted key run into tables of at most `max_bytes` each
  /// (leveled compaction emits fixed-size tables).
  static std::vector<SSTable> split_into_tables(std::uint32_t& next_id,
                                                std::vector<std::int64_t> keys,
                                                double avg_row_bytes, double max_bytes,
                                                double bloom_fp_chance, int level,
                                                std::vector<std::int64_t> tombstones = {});

  /// On-disk size of a deletion marker.
  static constexpr double kTombstoneBytes = 48.0;

 private:
  std::uint32_t id_;
  int level_;
  std::vector<std::int64_t> keys_;        // sorted, unique (markers included)
  std::vector<std::int64_t> tombstones_;  // sorted subset of keys_
  double avg_row_bytes_;
  BloomFilter bloom_;
};

}  // namespace rafiki::engine
