// net::Server — the RPC front-end over a serve::TuningBackend (the single
// TuningService or the ShardedTuningService router): an event-driven,
// multi-threaded TCP server speaking the length-prefixed binary protocol of
// net/wire.h.
//
//   * IO readiness comes from a net::EventPoller — edge-triggered epoll on
//     Linux, a persistent level-triggered poll() set as the portable
//     fallback (ServerOptions::io_backend). Every fd registers once; a loop
//     pass touches only ready connections, never the whole set.
//   * Non-blocking sockets throughout; each connection is owned by exactly
//     one IO loop thread (round-robin assignment at accept), so read-side
//     state needs no locks. Loop 0 doubles as the acceptor.
//   * Pipelining — any number of requests (up to max_pipeline) may be in
//     flight per connection; responses carry the request id they answer and
//     may return out of order. Completion uses TuningService::try_submit's
//     callback path: a worker thread encodes the response into the
//     connection's (mutex-guarded) output buffer and posts the connection to
//     the owning loop's mailbox — the loop never blocks on a future.
//   * Write coalescing: every response completed by the time a pass flushes
//     sits in the connection's output buffer already, so one send() carries
//     them all; an edge-triggered loop additionally runs bounded zero-timeout
//     "absorb" rounds before flushing to merge completions that landed while
//     the pass ran. Flush batch sizes and syscall counts fold into
//     ServiceStats' wire table.
//   * Backpressure maps to the wire, not to TCP stalls: a full service queue
//     or a full per-connection pipeline answers with a typed kOverloaded
//     response immediately; the socket keeps draining. The reverse direction
//     is bounded too: a peer that stops reading pins its responses in the
//     output buffer, and past max_output_buffer the server stops reading
//     from it (resuming below half) so a slow reader costs bounded memory.
//   * Malformed frames: recoverable ones (bad enum/payload under a valid
//     header) are answered with an error frame and the stream continues;
//     fatal ones (bad magic/version/oversized length) get one final error
//     frame and the connection closes.
//   * stop() drains gracefully: in-flight requests finish and their
//     responses flush, requests decoded during the drain are answered with
//     kShuttingDown — no accepted frame is ever dropped. Connections whose
//     handshake completed before the drain (still sitting in the accept
//     backlog) are adopted and answered too, instead of being RST by the
//     listener close. Idle connections are held until the peer closes (its
//     frames may still be on the wire), bounded by ServerOptions::drain_grace
//     — the draining loop sleeps exactly until that deadline (or the next
//     event), not on a fixed re-poll cadence.
//   * Wire telemetry (connections, frames, bytes, decode errors, flush
//     batching, per-endpoint wire latency) folds into the service's
//     ServiceStats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/poller.h"
#include "net/wire.h"
#include "serve/backend.h"
#include "util/sync.h"

namespace rafiki::net {

struct ServerOptions {
  /// Bind address. The default serves loopback only — remote exposure is an
  /// explicit decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the real one.
  std::uint16_t port = 0;
  /// IO loop threads. Loop 0 also accepts; connections are assigned
  /// round-robin.
  std::size_t io_threads = 1;
  int backlog = 64;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// Frames claiming a larger payload are rejected before buffering.
  std::size_t max_payload = kDefaultMaxPayload;
  /// In-flight (submitted, unanswered) requests per connection; excess
  /// requests answer kOverloaded on the wire.
  std::size_t max_pipeline = 64;
  /// recv() chunk size.
  std::size_t read_chunk = 1 << 16;
  /// Drain grace: how long stop() keeps an *idle* connection open waiting
  /// for the peer's FIN. A momentarily-idle connection can have frames
  /// already on the wire (a client mid-burst); closing it on the first idle
  /// observation loses them. The peer closing its end (or going dead) still
  /// releases the connection immediately — the grace only bounds how long a
  /// silent, healthy peer can hold up stop().
  std::chrono::milliseconds drain_grace{250};
  /// Readiness engine for the IO loops (default_io_backend() is epoll on
  /// Linux, poll elsewhere). start() fails if the build cannot serve it.
  IoBackend io_backend = default_io_backend();
  /// Per-connection output high-water mark: once this many bytes of
  /// responses sit unflushed (the peer is not reading), the server stops
  /// reading from that connection until the backlog drains below half.
  /// Backpressure lands on the slow reader's TCP window, not server memory.
  std::size_t max_output_buffer = 1 << 20;
  /// Edge-triggered loops only: after the read stage, up to this many
  /// zero-timeout re-waits (each preceded by a yield while completions are
  /// outstanding) absorb responses that finished while the pass ran, so the
  /// per-connection flush carries them all in one send(). 0 disables.
  /// Level-triggered poll keeps the plain one-flush-per-pass behavior — a
  /// zero-timeout re-wait there re-scans and re-reports every registered
  /// fd, which is exactly the O(connections) cost this backend is the
  /// fallback for.
  std::size_t flush_absorb_rounds = 4;
  /// When > 0, pins SO_SNDBUF on the listener (inherited by every accepted
  /// connection), which also disables kernel send-buffer autotuning. 0 keeps
  /// the kernel default. Mainly a test/diagnostic hook: a small pinned
  /// buffer forces the partial-write (EAGAIN) paths that autotuned loopback
  /// sockets otherwise absorb silently.
  int so_sndbuf = 0;
};

class Server {
 public:
  /// The backend must outlive the server.
  explicit Server(serve::TuningBackend& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the IO loops. False on socket errors or an
  /// unavailable io_backend (see last_error()). Idempotent.
  bool start();
  /// Graceful drain: answer everything already on the wire (including
  /// connections still in the accept backlog), flush, close, join.
  /// Idempotent.
  void stop();

  /// Actual bound port (after start()); 0 before.
  std::uint16_t port() const noexcept { return port_; }
  bool running() const {
    MutexLock lock(lifecycle_mutex_);
    return started_ && !stopped_;
  }
  std::string last_error() const {
    MutexLock lock(lifecycle_mutex_);
    return last_error_;
  }

 private:
  struct Connection;
  using ConnectionPtr = std::shared_ptr<Connection>;

  /// Completion handoff between service workers and an IO loop: `dirty`
  /// names connections with freshly appended output, the waker rouses the
  /// loop, and `outstanding` counts the loop's submitted-but-unanswered
  /// requests (advisory — it steers the absorb stage). Ref-counted because
  /// a worker mid-callback can outlive stop() by a few instructions and
  /// must still find live fds and buffers.
  struct Mailbox {
    Waker waker;
    rafiki::Mutex mutex;
    std::vector<ConnectionPtr> dirty GUARDED_BY(mutex);
    std::atomic<std::size_t> outstanding{0};
    void post(ConnectionPtr conn);
  };

  struct Connection : std::enable_shared_from_this<Connection> {
    int fd = -1;
    /// Owning loop's mailbox; response callbacks post here.
    std::shared_ptr<Mailbox> mailbox;
    // --- owned by the loop thread ---
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;
    bool read_closed = false;  ///< peer sent FIN (or read side gave up)
    bool fatal = false;        ///< protocol-fatal: close once output flushes
    /// Protocol version of the most recent well-formed frame from this peer
    /// (loop-thread only). Responses and error frames are encoded in the
    /// peer's own dialect, so a v1 client never receives a 24-byte header.
    std::uint8_t wire_version = kProtocolVersion;
    /// Edge-trigger memory: readiness reported by the poller persists here
    /// until the matching syscall says EAGAIN (see poller.h contract).
    bool read_ready = true;
    bool write_ready = true;
    /// Output high-water reached — reads throttled until flush() resumes.
    bool read_paused = false;
    bool in_read_set = false;  ///< member of the loop's pending-read list
    /// Level-triggered interest currently registered with the poller
    /// (ignored by the edge-triggered backend, which subscribes once).
    bool want_read = true;
    bool want_write = false;
    std::size_t conn_index = 0;  ///< slot in the owning loop's conns vector
    // --- shared with response callbacks ---
    rafiki::Mutex out_mutex;
    std::vector<std::uint8_t> obuf GUARDED_BY(out_mutex);
    std::size_t opos GUARDED_BY(out_mutex) = 0;
    /// Response/error frames currently buffered in obuf — the flush that
    /// drains the buffer credits them to the batch-size counters.
    std::size_t obuf_frames GUARDED_BY(out_mutex) = 0;
    /// True while the connection sits in the mailbox or a loop flush list;
    /// the first writer to queue output posts, later ones piggyback.
    bool flush_queued GUARDED_BY(out_mutex) = false;
    /// Relaxed mirror of obuf.size() - opos, so the loop's read path can
    /// check the high-water mark without taking out_mutex.
    std::atomic<std::size_t> obuf_bytes{0};
    /// Socket broken: discard output. Written and read on the owning loop
    /// thread only (handle_read / flush); atomic so that invariant is a
    /// tearing-safe implementation detail, not a correctness cliff.
    std::atomic<bool> dead{false};
    /// Incremented on the loop thread at submit; decremented by the service
    /// worker's completion callback (release) — idle()/should_close() load
    /// with acquire to order against the callback's buffer writes.
    std::atomic<std::size_t> in_flight{0};
  };

  struct Loop {
    std::shared_ptr<Mailbox> mailbox;
    std::unique_ptr<EventPoller> poller;  ///< loop-thread after start()
    rafiki::Mutex incoming_mutex;
    /// Handoff from the acceptor.
    std::vector<ConnectionPtr> incoming GUARDED_BY(incoming_mutex);
    // --- loop-thread only ---
    std::vector<ConnectionPtr> conns;
    /// Connections with believed-unread socket data (edge-trigger memory
    /// plus leftovers bounded away by the rbuf cap); persists across passes.
    std::vector<ConnectionPtr> read_set;
    /// Connections with output to flush this pass (mailbox grabs, inline
    /// responses, EPOLLOUT resumptions); drained every pass.
    std::vector<ConnectionPtr> flush_set;
    std::vector<ConnectionPtr> grabbed;  ///< mailbox swap scratch
    std::vector<PollerEvent> events;     ///< wait() scratch
    std::thread thread;
  };

  void loop_main(std::size_t index);
  void adopt_incoming(Loop& loop);
  /// Registers a freshly accepted/adopted connection with the loop's poller
  /// and queues its first read. Closes it on registration failure.
  void register_conn(Loop& loop, ConnectionPtr conn);
  void do_accept(Loop& loop);
  /// Turns loop.events into connection state (edge-trigger flags, read/flush
  /// queue membership) and drains the waker. True if the listener fired.
  bool dispatch_events(Loop& loop);
  /// Moves mailbox.dirty into loop.flush_set.
  void grab_mailbox(Loop& loop);
  /// Reads + decodes + submits for every connection in read_set; retains
  /// entries that still have believed-unread data.
  void read_pass(Loop& loop);
  /// Edge-triggered only: bounded zero-timeout re-waits that merge
  /// completions landing mid-pass into this pass's flushes.
  void absorb_completions(Loop& loop, bool acceptor);
  /// Flushes and clears flush_set, closing connections that finished.
  void flush_pass(Loop& loop);
  /// The draining pass's full sweep: answer racing bytes, flush, and close
  /// idle connections once the grace deadline passes (old behavior, now
  /// event-driven between sweeps).
  void drain_sweep(Loop& loop, std::chrono::steady_clock::time_point deadline);
  void handle_read(Loop& loop, Connection& conn);
  void process_frames(Loop& loop, const ConnectionPtr& conn);
  void handle_request(Loop& loop, const ConnectionPtr& conn, const Frame& frame);
  /// Encodes in the connection's wire_version, echoing the request's tenant.
  void queue_response(Loop& loop, Connection& conn, std::uint64_t request_id,
                      serve::Endpoint endpoint, const serve::Response& response,
                      serve::TenantId tenant);
  void queue_error(Loop& loop, Connection& conn, std::uint64_t request_id,
                   WireError error, serve::TenantId tenant = 0);
  void flush(Loop& loop, Connection& conn);
  /// Updates the level-triggered interest mask if it changed (no-op syscall-
  /// wise under epoll).
  void set_interest(Loop& loop, Connection& conn, bool want_read, bool want_write);
  /// No pending work in either direction and the peer is still healthy —
  /// the draining loop's criterion for letting a connection go.
  bool idle(Connection& conn) const;
  bool should_close(Connection& conn) const;
  void close_connection(Loop& loop, Connection& conn);
  /// Swap-erases a closed connection from loop.conns (conn_index bookkeeping).
  void remove_conn(Loop& loop, Connection& conn);

  serve::TuningBackend& service_;
  ServerOptions options_;
  serve::ServiceStats& stats_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::size_t next_loop_ = 0;  ///< acceptor-thread only (round robin)
  std::atomic<std::size_t> open_connections_{0};
  std::atomic<bool> draining_{false};
  mutable rafiki::Mutex lifecycle_mutex_;
  bool started_ GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ GUARDED_BY(lifecycle_mutex_) = false;
  std::string last_error_ GUARDED_BY(lifecycle_mutex_);
};

}  // namespace rafiki::net
