# Empty compiler generated dependencies file for multi_server.
# This may be replaced when dependencies are built.
