#include "serve/shard.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/online.h"

namespace rafiki::serve {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

std::size_t ShardedTuningService::band_of(double read_ratio) noexcept {
  const long scaled = std::lround(read_ratio * 100.0);
  return static_cast<std::size_t>(
      std::clamp<long>(scaled, 0, static_cast<long>(kBands - 1)));
}

std::uint64_t ShardedTuningService::band_fingerprint(std::size_t band) noexcept {
  // splitmix64 finalizer: pure function of the band index, so the
  // band->shard map is reproducible across restarts for a fixed shard count.
  std::uint64_t z = static_cast<std::uint64_t>(band) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

ShardedTuningService::ShardedTuningService(ShardOptions options)
    : options_(std::move(options)), router_stats_(options_.service.stats) {
  options_.shards = std::clamp<std::size_t>(options_.shards, 1, 128);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i)
    shards_.push_back(std::make_unique<TuningService>(options_.service));
  for (std::size_t band = 0; band < kBands; ++band) {
    route_[band].store(static_cast<std::uint8_t>(band_fingerprint(band) % options_.shards),
                       kRelaxed);
  }
}

ShardedTuningService::~ShardedTuningService() { stop(); }

std::uint64_t ShardedTuningService::publish(ModelSnapshot snapshot) {
  MutexLock lock(publish_mutex_);
  std::uint64_t version = 0;
  for (auto& shard : shards_) version = shard->publish(snapshot);
  return version;
}

std::shared_ptr<const ModelSnapshot> ShardedTuningService::snapshot() const {
  return shards_.front()->snapshot();
}

std::uint64_t ShardedTuningService::model_version() const {
  return shards_.front()->model_version();
}

void ShardedTuningService::attach_tuner(core::OnlineTuner& tuner) {
  // The tuner's hooks are single-slot, so the router — not any one shard —
  // must own them and fan out.
  tuner.set_publish_hook([this](int bucket, const core::Rafiki::OptimizeResult& result) {
    MutexLock lock(publish_mutex_);
    for (auto& shard : shards_)
      shard->publish_tuned(bucket, result.config, result.predicted_throughput);
  });
  tuner.set_async_optimize_hook([this](int bucket, double read_ratio) {
    // Route the background optimization to the shard that owns the band, so
    // its retrain coalescing map sees every request for its workloads. The
    // tuner's bucket stays the coalescing key, exactly as unsharded.
    shards_[shard_of(read_ratio)]->enqueue_retrain(bucket, read_ratio);
  });
  for (auto& shard : shards_) shard->bind_tuner(tuner);
}

std::size_t ShardedTuningService::shard_of_band(std::size_t band) const noexcept {
  return route_[std::min(band, kBands - 1)].load(kRelaxed) % shards_.size();
}

std::size_t ShardedTuningService::shard_of(double read_ratio) const noexcept {
  return shard_of_band(band_of(read_ratio));
}

void ShardedTuningService::route_band(std::size_t band, std::size_t shard_index) noexcept {
  if (band >= kBands || shard_index >= shards_.size()) return;
  route_[band].store(static_cast<std::uint8_t>(shard_index), kRelaxed);
}

Status ShardedTuningService::try_submit(Request request, ResponseCallback done) {
  const std::size_t band = band_of(request.read_ratio);
  band_hits_[band].fetch_add(1, kRelaxed);
  const std::size_t home = shard_of_band(band);

  // `done` is passed by copy per attempt: a failed admission consumes the
  // callback it was handed, and the next shard needs a live one.
  Status verdict = shards_[home]->try_submit(request, done);
  if (verdict != Status::kOverloaded) return verdict;

  const std::size_t tries = std::min(options_.spill_limit, shards_.size() - 1);
  for (std::size_t i = 1; i <= tries; ++i) {
    const std::size_t sibling = (home + i) % shards_.size();
    verdict = shards_[sibling]->try_submit(request, done);
    if (verdict == Status::kOk) {
      spills_.fetch_add(1, kRelaxed);
      return verdict;
    }
    if (verdict == Status::kShuttingDown) return verdict;
  }
  return verdict;
}

std::future<Response> ShardedTuningService::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  const Status admitted =
      try_submit(request, [promise](Response response) { promise->set_value(std::move(response)); });
  if (admitted != Status::kOk) {
    Response response;
    response.status = admitted;
    promise->set_value(response);
  }
  return future;
}

void ShardedTuningService::start() {
  for (auto& shard : shards_) shard->start();
}

void ShardedTuningService::stop() {
  for (auto& shard : shards_) shard->stop();
}

void ShardedTuningService::wait_retrain_idle() {
  for (auto& shard : shards_) shard->wait_retrain_idle();
}

bool ShardedTuningService::rebalance_hottest() {
  MutexLock lock(rebalance_mutex_);
  const std::size_t n = shards_.size();
  if (n < 2) return false;

  // Shard load = routed hits of the bands it currently owns; also track each
  // shard's hottest band so the migration victim falls out of the same scan.
  std::vector<std::uint64_t> load(n, 0);
  std::vector<std::size_t> hottest_band(n, kBands);
  std::vector<std::uint64_t> hottest_hits(n, 0);
  for (std::size_t band = 0; band < kBands; ++band) {
    const std::size_t owner = shard_of_band(band);
    const std::uint64_t hits = band_hits_[band].load(kRelaxed);
    load[owner] += hits;
    if (hits > hottest_hits[owner]) {
      hottest_hits[owner] = hits;
      hottest_band[owner] = band;
    }
  }

  std::size_t most = 0;
  std::size_t least = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (load[i] > load[most]) most = i;
    if (load[i] < load[least]) least = i;
  }
  if (most == least || hottest_band[most] == kBands) return false;
  // Greedy improvement check: migrate only if the receiver stays below the
  // donor's current load, otherwise the move just swaps the hot spot.
  const std::uint64_t moved = hottest_hits[most];
  if (moved == 0 || load[least] + moved >= load[most]) return false;

  route_[hottest_band[most]].store(static_cast<std::uint8_t>(least), kRelaxed);
  rebalances_.fetch_add(1, kRelaxed);
  return true;
}

ServiceStats::Counters ShardedTuningService::endpoint_counters(Endpoint endpoint) const {
  ServiceStats::Counters sum;
  for (const auto& shard : shards_) sum.merge(shard->stats().counters(endpoint));
  return sum;
}

ServiceStats::Counters ShardedTuningService::merged_totals() const {
  ServiceStats::Counters sum;
  for (const auto& shard : shards_) sum.merge(shard->stats().totals());
  return sum;
}

ServiceStats::RetrainCounters ShardedTuningService::retrain_counters() const {
  ServiceStats::RetrainCounters sum;
  for (const auto& shard : shards_) {
    const auto per = shard->stats().retrain_counters();
    sum.runs += per.runs;
    sum.coalesced += per.coalesced;
    sum.rejected += per.rejected;
    sum.cancelled += per.cancelled;
  }
  return sum;
}

double ShardedTuningService::endpoint_latency_quantile(Endpoint endpoint, double q) const {
  auto agg = router_stats_.endpoint_aggregate(endpoint);
  for (const auto& shard : shards_) agg.merge(shard->stats().endpoint_aggregate(endpoint));
  return agg.latency.quantile(q);
}

double ShardedTuningService::mean_batch_size() const {
  // Weight each shard's mean by its batch count: total predicted rows over
  // total batches, same definition as the single-service counter.
  double rows = 0.0;
  double batches = 0.0;
  for (const auto& shard : shards_) {
    const auto n = static_cast<double>(shard->stats().batches());
    rows += shard->stats().mean_batch_size() * n;
    batches += n;
  }
  return batches > 0.0 ? rows / batches : 0.0;
}

double ShardedTuningService::mean_retrain_latency_us() const {
  double total = 0.0;
  double runs = 0.0;
  for (const auto& shard : shards_) {
    const auto n = static_cast<double>(shard->stats().retrain_counters().runs);
    total += shard->stats().mean_retrain_latency_us() * n;
    runs += n;
  }
  return runs > 0.0 ? total / runs : 0.0;
}

Table ShardedTuningService::stats_table() const {
  std::vector<ServiceStats::EndpointAggregate> aggs;
  aggs.reserve(kEndpointCount);
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const auto endpoint = static_cast<Endpoint>(i);
    // The router stats object contributes the wire-side view (and zeros for
    // the request-path counters it never records).
    auto agg = router_stats_.endpoint_aggregate(endpoint);
    for (const auto& shard : shards_) agg.merge(shard->stats().endpoint_aggregate(endpoint));
    aggs.push_back(std::move(agg));
  }
  return ServiceStats::table_of(aggs);
}

}  // namespace rafiki::serve
