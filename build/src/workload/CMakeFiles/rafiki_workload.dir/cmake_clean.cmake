file(REMOVE_RECURSE
  "CMakeFiles/rafiki_workload.dir/characterize.cpp.o"
  "CMakeFiles/rafiki_workload.dir/characterize.cpp.o.d"
  "CMakeFiles/rafiki_workload.dir/forecast.cpp.o"
  "CMakeFiles/rafiki_workload.dir/forecast.cpp.o.d"
  "CMakeFiles/rafiki_workload.dir/generator.cpp.o"
  "CMakeFiles/rafiki_workload.dir/generator.cpp.o.d"
  "CMakeFiles/rafiki_workload.dir/mgrast.cpp.o"
  "CMakeFiles/rafiki_workload.dir/mgrast.cpp.o.d"
  "librafiki_workload.a"
  "librafiki_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
