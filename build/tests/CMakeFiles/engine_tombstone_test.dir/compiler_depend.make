# Empty compiler generated dependencies file for engine_tombstone_test.
# This may be replaced when dependencies are built.
