file(REMOVE_RECURSE
  "CMakeFiles/ablation_surrogates.dir/ablation_surrogates.cpp.o"
  "CMakeFiles/ablation_surrogates.dir/ablation_surrogates.cpp.o.d"
  "ablation_surrogates"
  "ablation_surrogates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
