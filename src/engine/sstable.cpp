#include "engine/sstable.h"

#include <algorithm>
#include <unordered_map>

namespace rafiki::engine {

SSTable::SSTable(std::uint32_t id, std::vector<std::int64_t> keys, double avg_row_bytes,
                 double bloom_fp_chance, int level, std::vector<std::int64_t> tombstones)
    : id_(id), level_(level), keys_(std::move(keys)), tombstones_(std::move(tombstones)),
      avg_row_bytes_(avg_row_bytes) {
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  std::sort(tombstones_.begin(), tombstones_.end());
  tombstones_.erase(std::unique(tombstones_.begin(), tombstones_.end()),
                    tombstones_.end());
  // Tombstones are rows of this table too: ensure they are in the key run.
  for (auto t : tombstones_) {
    if (!std::binary_search(keys_.begin(), keys_.end(), t)) {
      keys_.insert(std::lower_bound(keys_.begin(), keys_.end(), t), t);
    }
  }
  bloom_ = BloomFilter::build(keys_, bloom_fp_chance);
}

bool SSTable::has_key(std::int64_t key) const noexcept {
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

bool SSTable::is_tombstone(std::int64_t key) const noexcept {
  return std::binary_search(tombstones_.begin(), tombstones_.end(), key);
}

std::size_t SSTable::key_rank(std::int64_t key) const noexcept {
  return static_cast<std::size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
}

SSTable SSTable::merge(std::uint32_t new_id, std::span<const SSTable* const> inputs,
                       double bloom_fp_chance, int level, bool drop_tombstones) {
  // Newest-version-wins: visit inputs from the highest (newest) table id
  // down; the first version seen per key is the surviving one.
  std::vector<const SSTable*> ordered(inputs.begin(), inputs.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const SSTable* a, const SSTable* b) { return a->id() > b->id(); });

  std::size_t total = 0;
  double data_bytes = 0.0;
  std::size_t data_rows = 0;
  for (const SSTable* table : ordered) {
    total += table->key_count();
    data_bytes += table->avg_row_bytes() *
                  static_cast<double>(table->key_count() - table->tombstone_count());
    data_rows += table->key_count() - table->tombstone_count();
  }

  std::unordered_map<std::int64_t, bool> newest;  // key -> surviving is tombstone
  newest.reserve(total);
  for (const SSTable* table : ordered) {
    for (auto key : table->keys()) {
      newest.try_emplace(key, table->is_tombstone(key));
    }
  }

  std::vector<std::int64_t> merged;
  std::vector<std::int64_t> tombstones;
  merged.reserve(newest.size());
  // det:ok(unordered-iter): order-insensitive — SSTable ctor sorts merged/tombstones
  for (const auto& [key, tombstone] : newest) {
    if (tombstone) {
      if (drop_tombstones) continue;  // evicted: no older version survives
      tombstones.push_back(key);
    }
    merged.push_back(key);
  }
  const double avg_row =
      data_rows ? data_bytes / static_cast<double>(data_rows) : kTombstoneBytes;
  return SSTable(new_id, std::move(merged), avg_row, bloom_fp_chance, level,
                 std::move(tombstones));
}

std::vector<SSTable> SSTable::split_into_tables(std::uint32_t& next_id,
                                                std::vector<std::int64_t> keys,
                                                double avg_row_bytes, double max_bytes,
                                                double bloom_fp_chance, int level,
                                                std::vector<std::int64_t> tombstones) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::sort(tombstones.begin(), tombstones.end());
  std::vector<SSTable> tables;
  if (keys.empty()) return tables;
  const auto keys_per_table = std::max<std::size_t>(
      1, static_cast<std::size_t>(max_bytes / std::max(1.0, avg_row_bytes)));
  for (std::size_t start = 0; start < keys.size(); start += keys_per_table) {
    const std::size_t end = std::min(start + keys_per_table, keys.size());
    std::vector<std::int64_t> chunk(keys.begin() + static_cast<std::ptrdiff_t>(start),
                                    keys.begin() + static_cast<std::ptrdiff_t>(end));
    // Tombstones falling into this chunk's range.
    std::vector<std::int64_t> chunk_tombs;
    const auto lo = std::lower_bound(tombstones.begin(), tombstones.end(), chunk.front());
    const auto hi = std::upper_bound(tombstones.begin(), tombstones.end(), chunk.back());
    chunk_tombs.assign(lo, hi);
    tables.emplace_back(next_id++, std::move(chunk), avg_row_bytes, bloom_fp_chance,
                        level, std::move(chunk_tombs));
  }
  return tables;
}

}  // namespace rafiki::engine
