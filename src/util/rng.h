// Deterministic pseudo-random number generation for simulation and training.
//
// All stochastic components in the library (workload generators, the storage
// engine's noise processes, neural-network initialization, the genetic
// algorithm) draw from an explicitly seeded Rng so that every experiment in
// bench/ is reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace rafiki {

/// xoshiro256** with SplitMix64 seeding. Small, fast, and good enough
/// statistical quality for Monte-Carlo style simulation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 to spread an arbitrary 64-bit seed over the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (nearly unbiased, one divide
    // only on the rare rejection path).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// True with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller with caching of the second deviate.
  double gaussian() noexcept {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = uniform();
    while (u1 <= std::numeric_limits<double>::min()) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double stddev) noexcept { return mean + stddev * gaussian(); }

  /// Exponential with the given mean (= 1/rate). Used for key-reuse-distance
  /// sampling per the paper's workload characterization (Section 3.3).
  double exponential(double mean) noexcept {
    double u = uniform();
    while (u <= std::numeric_limits<double>::min()) u = uniform();
    return -mean * std::log(u);
  }

  /// Split off an independently-seeded child stream. Convenient for giving
  /// each subsystem (engine, generator, trainer, ...) its own stream derived
  /// from one experiment seed.
  Rng split() noexcept { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gauss_ = 0.0;
  bool has_gauss_ = false;
};

}  // namespace rafiki
