#include "ml/matrix.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace rafiki::ml {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const auto c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);

  const auto at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, GramEqualsTransposeTimesSelf) {
  Matrix a(3, 2);
  double v = 1.0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) a(r, c) = v++;
  }
  const auto gram = a.gram();
  const auto expected = a.transpose().multiply(a);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(gram(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(Matrix, VectorProducts) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 0; a(0, 2) = 2;
  a(1, 0) = 0; a(1, 1) = 3; a(1, 2) = 1;
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto ax = a.times(x);
  EXPECT_DOUBLE_EQ(ax[0], 7.0);
  EXPECT_DOUBLE_EQ(ax[1], 9.0);
  const std::vector<double> y = {1.0, 1.0};
  const auto aty = a.transpose_times(y);
  EXPECT_DOUBLE_EQ(aty[0], 1.0);
  EXPECT_DOUBLE_EQ(aty[1], 3.0);
  EXPECT_DOUBLE_EQ(aty[2], 3.0);
}

TEST(Matrix, SolveSpdRecoversSolution) {
  // A = M^T M + I is SPD for any M.
  Matrix m(4, 3);
  double v = 0.3;
  for (auto& x : m.data()) {
    x = std::sin(v);
    v += 0.7;
  }
  Matrix a = m.gram();
  a.add_diagonal(1.0);
  const std::vector<double> truth = {1.5, -2.0, 0.25};
  const auto b = a.times(truth);
  const auto solved = a.solve_spd(b);
  ASSERT_EQ(solved.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(solved[i], truth[i], 1e-9);
}

TEST(Matrix, SolveSpdFailsGracefullyOnIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;  // not positive definite
  EXPECT_TRUE(a.solve_spd(std::vector<double>{1.0, 1.0}).empty());
}

TEST(Matrix, TraceInverseMatchesDirectInverse) {
  // Diagonal SPD: trace(A^-1) is the sum of reciprocal diagonal entries.
  Matrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  a(2, 2) = 5.0;
  EXPECT_NEAR(a.trace_inverse_spd(), 0.5 + 0.25 + 0.2, 1e-12);

  // Non-diagonal check against a hand-inverted 2x2.
  Matrix b(2, 2);
  b(0, 0) = 4.0; b(0, 1) = 1.0;
  b(1, 0) = 1.0; b(1, 1) = 3.0;
  // inverse = 1/11 * [3 -1; -1 4]; trace = 7/11
  EXPECT_NEAR(b.trace_inverse_spd(), 7.0 / 11.0, 1e-12);
}

TEST(Matrix, IdentityBehaves) {
  const auto eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
  EXPECT_NEAR(eye.trace_inverse_spd(), 3.0, 1e-12);
}

// --- Cholesky/solve edge cases (the Levenberg-Marquardt failure paths) ----

TEST(Matrix, SolveSpdOneByOne) {
  Matrix a(1, 1);
  a(0, 0) = 4.0;
  const auto x = a.solve_spd(std::vector<double>{2.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_NEAR(a.trace_inverse_spd(), 0.25, 1e-15);

  a(0, 0) = -4.0;
  EXPECT_TRUE(a.solve_spd(std::vector<double>{2.0}).empty());
  EXPECT_DOUBLE_EQ(a.trace_inverse_spd(), -1.0);
}

TEST(Matrix, SolveSpdRejectsSingularMatrix) {
  // Rank-1: row 2 = 2 * row 1. Cholesky must fail, not divide by zero.
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_TRUE(a.solve_spd(std::vector<double>{1.0, 2.0}).empty());
  EXPECT_DOUBLE_EQ(a.trace_inverse_spd(), -1.0);

  // All-zero matrix (LM's J^T J before any damping when J is zero).
  Matrix z(3, 3);
  EXPECT_TRUE(z.solve_spd(std::vector<double>{1.0, 1.0, 1.0}).empty());
}

TEST(Matrix, SolveSpdRejectsNonPsdWithPositiveDiagonal) {
  // Positive diagonal but indefinite: the failure only shows up once the
  // off-diagonal elimination drives a pivot negative (s <= 0 mid-sweep).
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 5.0;
  a(1, 0) = 5.0; a(1, 1) = 1.0;  // eigenvalues 6 and -4
  EXPECT_TRUE(a.solve_spd(std::vector<double>{1.0, 1.0}).empty());
}

TEST(Matrix, SolveSpdRejectsNonFiniteInput) {
  Matrix a(2, 2);
  a(0, 0) = std::numeric_limits<double>::quiet_NaN();
  a(1, 1) = 1.0;
  EXPECT_TRUE(a.solve_spd(std::vector<double>{1.0, 1.0}).empty());

  a(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(a.solve_spd(std::vector<double>{1.0, 1.0}).empty());
}

TEST(Matrix, SolveSpdRejectsShapeMismatch) {
  Matrix rect(2, 3, 1.0);
  EXPECT_TRUE(rect.solve_spd(std::vector<double>{1.0, 1.0}).empty());

  Matrix a = Matrix::identity(3);
  EXPECT_TRUE(a.solve_spd(std::vector<double>{1.0, 1.0}).empty());  // b too short
  EXPECT_TRUE(a.solve_spd(std::vector<double>(4, 1.0)).empty());    // b too long
}

TEST(Matrix, SolveSpdNearSingularStaysFinite) {
  // Tiny but strictly positive pivot: must solve, and stay finite (UBSan
  // watches the divides here under the asan preset).
  Matrix a(2, 2);
  a(0, 0) = 1e-12; a(1, 1) = 1.0;
  const auto x = a.solve_spd(std::vector<double>{1e-12, 2.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, EmptyMatrixEdges) {
  Matrix empty;
  EXPECT_EQ(empty.rows(), 0u);
  const auto x = empty.solve_spd(std::vector<double>{});
  EXPECT_TRUE(x.empty());
  EXPECT_DOUBLE_EQ(empty.trace_inverse_spd(), 0.0);  // vacuous sum
}

}  // namespace
}  // namespace rafiki::ml
