// Versioned model snapshot: the immutable {ensemble, search space,
// normalization} bundle every request executes against. Normalization lives
// inside the ensemble (fit at train time, reused at predict time), so
// swapping the snapshot swaps all three consistently — a half-updated model
// is unrepresentable. Published through a VersionedRegistry; the service
// assigns monotonically increasing versions at publish time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/config.h"
#include "engine/params.h"
#include "ml/ensemble.h"
#include "opt/space.h"
#include "serve/registry.h"

namespace rafiki::core {
class Rafiki;
}

namespace rafiki::serve {

/// One optimized configuration republished by the online-tuning path for a
/// read-ratio bucket (OnlineTuner's memo granularity).
struct TunedEntry {
  engine::Config config = engine::Config::defaults();
  double predicted_throughput = 0.0;
};

struct ModelSnapshot {
  /// Assigned by TuningService::publish; 0 until published.
  std::uint64_t version = 0;
  ml::SurrogateEnsemble ensemble;
  /// Parameter subset the ensemble was trained on, in feature order
  /// (after the leading read-ratio feature).
  std::vector<engine::ParamId> key_params;
  /// GA search space spanned by key_params, for the Optimize endpoint.
  /// Shared (immutable) across snapshot versions; null until set, since a
  /// SearchSpace cannot be empty.
  std::shared_ptr<const opt::SearchSpace> space;
  /// Read-ratio bucket width of the `tuned` keys.
  double rr_bucket = 0.1;
  /// Most recent optimized config per bucket, published by OnlineTuner.
  std::map<int, TunedEntry> tuned;

  /// Surrogate feature row for (workload, configuration) in this snapshot's
  /// feature order.
  std::vector<double> feature_row(double read_ratio, const engine::Config& config) const;
};

/// Copies the trained artifacts of a pipeline into a publishable snapshot
/// (version 0 — the service stamps the real version). Requires key
/// parameters to be selected and the ensemble trained.
ModelSnapshot make_snapshot(const core::Rafiki& rafiki);

using SnapshotRegistry = VersionedRegistry<ModelSnapshot>;

}  // namespace rafiki::serve
