# Empty dependencies file for rafiki_workload.
# This may be replaced when dependencies are built.
