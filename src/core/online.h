// Online reconfiguration controller for dynamic workloads (Sections 1, 2.4.1).
//
// MG-RAST's read ratio shifts abruptly at the 15-minute scale; a static
// configuration is suboptimal most of the time. The controller watches the
// characterized read ratio per window, re-runs the GA against the trained
// surrogate when the workload moves materially (seconds of work, Section
// 4.8), memoizes optimized configurations per read-ratio bucket, and charges
// a reconfiguration downtime when the configuration actually changes.
//
// The decision logic (bucketing, movement thresholds, reconfiguration
// accounting) is separable from optimize-on-miss: decide() only consults the
// memo cache and never runs the GA, while run_optimize() does the expensive
// search with no tuner lock held. on_window() composes the two — inline when
// standalone (the replay-harness shape), or stale-while-revalidate when an
// async-optimize hook routes misses to a background worker (the serve
// layer's RetrainWorker). All shared state is internally synchronized, so
// concurrent on_window / prefetch / run_optimize callers are safe.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>

#include "core/rafiki.h"
#include "util/sync.h"

namespace rafiki::core {

struct OnlineTunerOptions {
  /// Re-optimize when the window's RR moved at least this far from the RR
  /// the current configuration was chosen for.
  double rr_change_threshold = 0.15;
  /// Memoization granularity for optimized configs.
  double rr_bucket = 0.1;
  /// Virtual seconds of degraded service when a new config is applied
  /// (rolling restart); charged by the replay harness.
  double reconfigure_downtime_s = 15.0;
};

class OnlineTuner {
 public:
  /// `rafiki` must already be trained; the tuner holds a reference.
  OnlineTuner(const Rafiki& rafiki, OnlineTunerOptions options = {});

  struct Decision {
    engine::Config config;
    bool reconfigured = false;
    /// The returned config predates this window's regime: the memo cache had
    /// no entry for the (materially moved) read ratio, so the current config
    /// keeps serving while an optimization is pending in the background.
    bool stale = false;
    double predicted_throughput = 0.0;
  };

  /// Feeds the next observed window; returns the configuration to run with.
  /// With an async-optimize hook set, a cache miss returns immediately with
  /// a stale-marked decision and hands the bucket to the hook; without one,
  /// the miss optimizes inline (the original blocking behaviour).
  Decision on_window(double read_ratio);

  /// Decision logic only: cache hits may reconfigure, misses come back
  /// stale-marked. Never runs the optimizer.
  Decision decide(double read_ratio);

  /// Runs the GA for this read ratio's bucket and installs the result in the
  /// memo cache (firing the publish hook). The search itself holds no tuner
  /// lock, so decisions keep flowing while it runs. Returns false when the
  /// call coalesced away — the bucket was already cached, or another thread
  /// was mid-optimization for it (in which case this waits for that result).
  bool run_optimize(double read_ratio);

  /// Pre-computes (and caches) the optimized configuration for a forecast
  /// read ratio (see workload::WorkloadForecaster), so an anticipated regime
  /// switch pays no optimizer latency inside the critical window. Routes
  /// through the async-optimize hook when one is set.
  void prefetch(double read_ratio);

  /// Streams one measured (workload, configuration, throughput) sample into
  /// the Rafiki's knob screen (no-op on a static-mode Rafiki). Cheap: no
  /// model evaluation, no tuner lock — replay harnesses call it per window.
  void observe_sample(double read_ratio, const engine::Config& config,
                      double throughput);

  /// Called whenever a freshly optimized configuration enters the memo cache
  /// (run_optimize, on_window miss, or prefetch). The serve layer hooks this
  /// to republish the result through its versioned snapshot registry, so
  /// every tuned config the background path produces becomes visible to
  /// in-flight readers without locking them.
  using PublishHook = std::function<void(int bucket, const Rafiki::OptimizeResult& result)>;
  void set_publish_hook(PublishHook hook);

  /// When set, cache misses (on_window / prefetch) are delegated here
  /// instead of optimizing inline — the serve layer points this at its
  /// RetrainWorker so no GA ever runs on a request-path thread.
  using AsyncOptimizeHook = std::function<void(int bucket, double read_ratio)>;
  void set_async_optimize_hook(AsyncOptimizeHook hook);

  /// Memoization key shared by on_window and prefetch.
  int bucket_for(double read_ratio) const noexcept;
  /// Whether this read ratio's bucket already has an optimized config.
  bool cached(double read_ratio) const;

  std::size_t reconfigurations() const;
  std::size_t optimizer_runs() const;
  const OnlineTunerOptions& options() const noexcept { return options_; }

 private:
  Decision decide_locked(double read_ratio) REQUIRES(mutex_);

  const Rafiki* rafiki_;
  OnlineTunerOptions options_;

  mutable Mutex mutex_;
  CondVar optimize_done_;
  PublishHook publish_ GUARDED_BY(mutex_);
  AsyncOptimizeHook async_optimize_ GUARDED_BY(mutex_);
  /// bucket -> optimized result
  std::map<int, Rafiki::OptimizeResult> cache_ GUARDED_BY(mutex_);
  /// buckets currently being optimized (lock dropped for the GA itself)
  std::set<int> in_flight_ GUARDED_BY(mutex_);
  engine::Config current_ GUARDED_BY(mutex_) = engine::Config::defaults();
  /// RR the current config was chosen for.
  double current_rr_ GUARDED_BY(mutex_) = -1.0;
  bool have_config_ GUARDED_BY(mutex_) = false;
  std::size_t reconfigurations_ GUARDED_BY(mutex_) = 0;
  std::size_t optimizer_runs_ GUARDED_BY(mutex_) = 0;
};

}  // namespace rafiki::core
