// Ablation: the online-tuning extensions (the paper's future work, Section 6)
// — workload forecasting with configuration prefetching, and minimal-
// downtime reconfiguration planning.
//
// (a) Forecasting: over synthesized MG-RAST traces, report the forecaster's
//     point accuracy vs naive persistence and its switch-probability
//     calibration, then count how often prefetching the top-2 likely regimes
//     has the needed configuration ready *before* the regime switch lands.
// (b) Reconfiguration: ops lost applying a config change with a full restart
//     vs a rolling restart across cluster sizes, and the payoff horizon at
//     which reconfiguring becomes worthwhile.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "core/reconfigure.h"
#include "workload/forecast.h"
#include "workload/mgrast.h"

using namespace rafiki;

int main() {
  // ---- (a) forecasting ----
  double f_mae = 0.0, p_mae = 0.0;
  double prefetch_hits = 0.0, switches = 0.0;
  constexpr int kSeeds = 8;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto windows = workload::synthesize_mgrast_windows({}, 1000 + seed);
    std::vector<double> series;
    for (const auto& w : windows) series.push_back(w.read_ratio);
    const auto eval = workload::evaluate_forecaster(series);
    f_mae += eval.forecaster_mae;
    p_mae += eval.persistence_mae;

    // Prefetch coverage: before each window, prefetch the top-2 likely
    // regimes' configurations (buckets of 0.1 RR); on a regime switch, was
    // the new window's bucket among them?
    workload::WorkloadForecaster forecaster;
    auto regime_prev = forecaster.regime_of(series.front());
    forecaster.observe(series.front());
    for (std::size_t i = 1; i < series.size(); ++i) {
      const auto ranked = forecaster.likely_next();
      const auto regime_now = forecaster.regime_of(series[i]);
      if (regime_now != regime_prev) {
        ++switches;
        for (std::size_t k = 0; k < 2 && k < ranked.size(); ++k) {
          if (forecaster.regime_of(ranked[k].second) == regime_now) {
            ++prefetch_hits;
            break;
          }
        }
      }
      forecaster.observe(series[i]);
      regime_prev = regime_now;
    }
  }
  Table forecast({"metric", "value"});
  forecast.add_row({"forecaster MAE (next-window RR)", Table::num(f_mae / kSeeds, 3)});
  forecast.add_row({"naive persistence MAE", Table::num(p_mae / kSeeds, 3)});
  forecast.add_row({"regime switches observed", Table::num(switches, 0)});
  forecast.add_row({"top-2 prefetch had the config ready",
                    Table::pct(100.0 * prefetch_hits / switches)});
  benchutil::emit(forecast, "Forecasting ablation (8 synthesized 4-day traces)");

  // ---- (b) reconfiguration ----
  const double steady = 60000.0;
  Table reconfig({"cluster size", "full restart ops lost", "rolling ops lost",
                  "rolling saves", "worst capacity (full)", "worst capacity (rolling)"});
  for (int nodes : {1, 2, 3, 4, 6}) {
    const auto full = core::plan_full_restart(nodes, steady);
    const auto rolling = core::plan_rolling_restart(nodes, steady);
    reconfig.add_row({std::to_string(nodes), Table::ops(full.ops_lost),
                      Table::ops(rolling.ops_lost),
                      Table::pct(100.0 * (full.ops_lost - rolling.ops_lost) /
                                 std::max(1.0, full.ops_lost)),
                      Table::pct(100.0 * full.min_relative_capacity),
                      Table::pct(100.0 * rolling.min_relative_capacity)});
  }
  benchutil::emit(reconfig, "Reconfiguration ablation (60 kops/s steady state)");

  // Payoff horizon: with a 30% tuned gain, how long must the regime last for
  // the reconfiguration to pay for itself?
  const auto rolling2 = core::plan_rolling_restart(2, steady);
  double horizon = 0.0;
  for (double h = 0.0; h <= 3600.0; h += 5.0) {
    if (core::reconfiguration_pays_off(steady, steady * 1.3, h, rolling2)) {
      horizon = h;
      break;
    }
  }
  benchutil::note("payoff horizon for a +30% gain via rolling restart (2 nodes): " +
                  Table::num(horizon / 60.0, 1) + " minutes — well inside MG-RAST's "
                  "15-minute regime windows.");

  benchutil::compare("forecaster point accuracy", "~persistence (memoryless regimes)",
                     Table::num(f_mae / kSeeds, 3) + " vs " + Table::num(p_mae / kSeeds, 3));
  benchutil::compare("prefetch readiness at switches", "high (top-2 regimes)",
                     Table::pct(100.0 * prefetch_hits / switches));
  benchutil::compare("rolling restarts cut reconfiguration cost", "yes (future work §6)",
                     "see table");
  return 0;
}
