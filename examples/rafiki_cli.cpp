// rafiki_cli — file-based driver for the tuning pipeline, the way an
// operations team would run it stage by stage:
//
//   rafiki_cli characterize <trace.csv>
//       Parse an operational query log (t_s,kind,key,bytes) and print the
//       stationary window, RR series and KRD fit (Section 3.3).
//
//   rafiki_cli collect <out.csv> [configs] [read-ratios]
//       Benchmark the simulated store over the config x workload lattice and
//       write the training corpus (Section 4.2). Defaults: 20 configs, the
//       11-point RR grid.
//
//   rafiki_cli tune <corpus.csv> <read-ratio>
//       Train the surrogate ensemble on a previously collected corpus and
//       GA-search the best configuration for the given read ratio
//       (Sections 3.6-3.7), verifying it against the simulator.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "collect/dataset.h"
#include "core/rafiki.h"
#include "workload/characterize.h"

using namespace rafiki;

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  rafiki_cli characterize <trace.csv>\n"
      "  rafiki_cli collect <out.csv> [n_configs] [rr0,rr1,...]\n"
      "  rafiki_cli tune <corpus.csv> <read-ratio>\n",
      stderr);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_characterize(const std::string& path) {
  const auto trace = workload::parse_trace_csv(read_file(path));
  if (trace.empty()) {
    std::fputs("trace is empty\n", stderr);
    return 1;
  }
  const std::vector<double> candidates = {112.5, 225.0, 450.0, 900.0, 1800.0};
  const auto ch = workload::characterize(trace, candidates);
  std::printf("records:            %zu (%.1f h)\n", trace.size(),
              (trace.back().t_s - trace.front().t_s) / 3600.0);
  std::printf("stationary window:  %.1f s\n", ch.window_s);
  std::printf("KRD (exp. mean):    %.0f queries\n", ch.krd_mean);
  std::printf("insert fraction:    %.2f\n", ch.insert_fraction);
  std::printf("mean payload:       %.0f bytes\n", ch.mean_value_bytes);
  std::printf("windows:            %zu\n", ch.read_ratios.size());
  for (std::size_t i = 0; i < ch.read_ratios.size(); ++i) {
    std::printf("  window %3zu  RR=%.2f\n", i, ch.read_ratios[i]);
  }
  return 0;
}

int cmd_collect(const std::string& out_path, int n_configs,
                const std::vector<double>& read_ratios) {
  const auto configs = collect::sample_configs(engine::key_params(),
                                               static_cast<std::size_t>(n_configs), 1);
  collect::CollectOptions options;
  std::printf("benchmarking %zu configs x %zu workloads (%zu measurements)...\n",
              configs.size(), read_ratios.size(), configs.size() * read_ratios.size());
  const auto dataset =
      collect::collect_dataset(configs, read_ratios, workload::WorkloadSpec{}, options);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << dataset.to_csv(engine::key_params());
  std::printf("wrote %zu samples to %s\n", dataset.size(), out_path.c_str());
  return 0;
}

int cmd_tune(const std::string& corpus_path, double read_ratio) {
  const auto dataset = collect::Dataset::from_csv(read_file(corpus_path));
  std::printf("loaded %zu samples; training the surrogate ensemble...\n", dataset.size());
  core::Rafiki rafiki;
  rafiki.set_key_params(engine::key_params());
  rafiki.train(dataset);

  const auto result = rafiki.optimize(read_ratio);
  std::printf("best config for RR=%.0f%%: %s\n", read_ratio * 100,
              result.config.to_string().c_str());
  std::printf("surrogate estimate: %.0f ops/s (%zu evaluations, %.2f s)\n",
              result.predicted_throughput, result.surrogate_evaluations,
              result.wall_seconds);

  workload::WorkloadSpec workload;
  workload.read_ratio = read_ratio;
  collect::MeasureOptions verify;
  verify.seed = 4242;
  const double tuned = collect::measure_throughput(result.config, workload, verify);
  const double fallback =
      collect::measure_throughput(engine::Config::defaults(), workload, verify);
  std::printf("verified on the simulator: default %.0f -> tuned %.0f ops/s (%+.1f%%)\n",
              fallback, tuned, 100.0 * (tuned - fallback) / fallback);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "characterize" && argc == 3) {
    return cmd_characterize(argv[2]);
  }
  if (command == "collect" && argc >= 3) {
    const int n_configs = argc >= 4 ? std::atoi(argv[3]) : 20;
    std::vector<double> read_ratios;
    if (argc >= 5) {
      std::stringstream list(argv[4]);
      std::string token;
      while (std::getline(list, token, ',')) read_ratios.push_back(std::stod(token));
    } else {
      for (int i = 0; i <= 10; ++i) read_ratios.push_back(i / 10.0);
    }
    if (n_configs < 1 || read_ratios.empty()) return usage();
    return cmd_collect(argv[2], n_configs, read_ratios);
  }
  if (command == "tune" && argc == 4) {
    const double rr = std::atof(argv[3]);
    if (rr < 0.0 || rr > 1.0) return usage();
    return cmd_tune(argv[2], rr);
  }
  return usage();
}
