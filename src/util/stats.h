// Descriptive statistics used throughout data collection, ANOVA and model
// evaluation. Header declares small value types; implementations that are
// more than a line or two live in stats.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rafiki {

/// Welford online accumulator: numerically stable mean/variance without
/// retaining samples. Suitable for streaming throughput measurements.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
/// Sample variance (n-1 denominator).
double variance(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient of two equal-length series.
double correlation(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Maximum-likelihood fit of an exponential distribution (returns the mean,
/// which is the MLE for i.i.d. exponential samples). Used for KRD fitting.
double fit_exponential_mean(std::span<const double> xs) noexcept;

/// Ordinary least squares y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) noexcept;

}  // namespace rafiki
