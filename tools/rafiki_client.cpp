// rafiki_client — command-line client for the tuning service's RPC
// front-end (net/wire.h protocol).
//
//   rafiki_client predict  [--host H] [--port P] [--tenant T] [--rr R]
//                          [--set name=value ...]
//   rafiki_client optimize [--host H] [--port P] [--tenant T] [--rr R]
//   rafiki_client observe  [--host H] [--port P] [--tenant T] [--rr R]
//
// `predict` scores a configuration (defaults, overridden per --set) for the
// given read ratio; `optimize` asks the server's GA for the best config;
// `observe` feeds one workload window to the online tuner. Exit status is 0
// only for a transport-OK, service-OK response.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/config.h"
#include "engine/params.h"
#include "net/client.h"
#include "serve/types.h"

using namespace rafiki;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s predict|optimize|observe [--host H] [--port P] "
               "[--tenant T] [--rr R] [--set name=value ...]\n",
               argv0);
}

void print_config(const engine::Config& config) {
  std::printf("  config: %s\n", config.to_string().c_str());
}

int run(const net::CallResult& result, serve::Endpoint endpoint) {
  if (result.net != net::NetStatus::kOk) {
    std::fprintf(stderr, "transport error: %s", net_status_name(result.net));
    if (result.net == net::NetStatus::kRemoteError) {
      std::fprintf(stderr, " (%s)", wire_error_name(result.remote_error));
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const auto& response = result.response;
  std::printf("status: %s (model version %llu)\n", serve::status_name(response.status),
              static_cast<unsigned long long>(response.model_version));
  if (!response.ok()) return 1;
  switch (endpoint) {
    case serve::Endpoint::kPredict:
      std::printf("  predicted throughput: %.1f +/- %.1f ops/s (batch %zu)\n",
                  response.mean, response.stddev, response.batch_size);
      break;
    case serve::Endpoint::kOptimize:
      std::printf("  predicted throughput: %.1f ops/s (%zu surrogate evaluations)\n",
                  response.predicted_throughput, response.surrogate_evaluations);
      print_config(response.config);
      break;
    case serve::Endpoint::kObserveWindow:
      std::printf("  %s%s, predicted throughput %.1f ops/s\n",
                  response.reconfigured ? "reconfigured" : "kept current config",
                  response.stale ? " (stale: re-optimization enqueued)" : "",
                  response.predicted_throughput);
      print_config(response.config);
      break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }

  serve::Endpoint endpoint;
  const std::string command = argv[1];
  if (command == "predict") {
    endpoint = serve::Endpoint::kPredict;
  } else if (command == "optimize") {
    endpoint = serve::Endpoint::kOptimize;
  } else if (command == "observe") {
    endpoint = serve::Endpoint::kObserveWindow;
  } else {
    usage(argv[0]);
    return 2;
  }

  std::string host = "127.0.0.1";
  int port = 7117;
  long tenant = 0;
  double read_ratio = 0.5;
  auto config = engine::Config::defaults();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--tenant" && i + 1 < argc) {
      tenant = std::atol(argv[++i]);
    } else if (arg == "--rr" && i + 1 < argc) {
      read_ratio = std::atof(argv[++i]);
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string assignment = argv[++i];
      const auto eq = assignment.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set expects name=value, got '%s'\n", assignment.c_str());
        return 2;
      }
      const auto id = engine::find_param(assignment.substr(0, eq));
      if (id == engine::ParamId::kCount) {
        std::fprintf(stderr, "unknown parameter '%s'\n",
                     assignment.substr(0, eq).c_str());
        return 2;
      }
      config.set(id, std::atof(assignment.c_str() + eq + 1));
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "invalid port %d\n", port);
    return 2;
  }
  if (tenant < 0 || tenant > 0xFFFFFFFFL) {
    std::fprintf(stderr, "invalid tenant %ld\n", tenant);
    return 2;
  }

  net::Client client;
  const auto connected = client.connect(host, static_cast<std::uint16_t>(port));
  if (connected != net::NetStatus::kOk) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 net_status_name(connected));
    return 2;
  }

  serve::Request request;
  request.tenant = static_cast<serve::TenantId>(tenant);
  request.endpoint = endpoint;
  request.read_ratio = read_ratio;
  request.config = config;
  return run(client.call(request), endpoint);
}
