// Multi-server deployment (Section 4.9): apply a configuration tuned on a
// single server to a two-node peer cluster with replication factor 2 and one
// shooter per node, and compare the improvement over the default config in
// both deployments.
#include <cstdio>

#include "core/rafiki.h"
#include "engine/cluster.h"

using namespace rafiki;

namespace {

double run_cluster(const engine::Config& config, double rr, int servers) {
  workload::WorkloadSpec spec;
  spec.read_ratio = rr;
  engine::Cluster cluster(config, servers, /*replication_factor=*/servers);
  {
    workload::Generator preload_gen(spec, 1);
    cluster.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> shooters;
  for (int s = 0; s < servers; ++s) shooters.emplace_back(spec, 4000 + s);
  engine::RunOptions opts;
  opts.ops = 30000;
  return cluster.run(shooters, opts).throughput_ops;
}

}  // namespace

int main() {
  core::RafikiOptions options;
  options.workload_grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  options.n_configs = 16;
  options.collect.measure.ops = 30000;
  options.ensemble.n_nets = 10;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  std::puts("training on single-server measurements...");
  rafiki.train(rafiki.collect());

  std::printf("\n%8s %28s %28s\n", "", "single server", "two servers (RF=2, 2 shooters)");
  std::printf("%8s %13s %14s %13s %14s\n", "RR", "default", "tuned", "default", "tuned");
  for (double rr : {0.1, 0.5, 1.0}) {
    const auto tuned = rafiki.optimize(rr).config;
    const double s1d = run_cluster(engine::Config::defaults(), rr, 1);
    const double s1t = run_cluster(tuned, rr, 1);
    const double s2d = run_cluster(engine::Config::defaults(), rr, 2);
    const double s2t = run_cluster(tuned, rr, 2);
    std::printf("%7.0f%% %13.0f %7.0f(%+.0f%%) %13.0f %7.0f(%+.0f%%)\n", rr * 100, s1d,
                s1t, 100 * (s1t - s1d) / s1d, s2d, s2t, 100 * (s2t - s2d) / s2d);
  }
  std::puts("\nwrites are replicated to both nodes (RF=2) while reads balance across\n"
            "them, so read-heavy workloads scale best — and the tuning carries over.");
  return 0;
}
