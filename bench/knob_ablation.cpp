// Knob-selection ablation: does online significance-aware pruning of the
// full 22-parameter space beat both the paper's frozen 5-knob subspace and a
// naive GA over all 22 knobs?
//
// Three arms, identical sample/search budgets:
//
//   fixed5   — the paper's pipeline: surrogate and GA over the five key
//              parameters frozen by the offline ANOVA (Section 3.4).
//   naive22  — surrogate and GA over the full registry, no pruning: the
//              high-dimensional strawman the ANOVA stage exists to avoid.
//   pruned   — src/tune/: surrogate over the full registry, GA over the
//              active subspace the streaming KnobScreen + ActiveSubspace
//              maintain (ANOVA-seeded, updated from observed samples,
//              re-cut on the background optimize path).
//
// Phase A tunes each regime of a regime-switching workload and measures the
// TRUE (simulated-engine) throughput of the tuned configs, plus how many
// surrogate evaluations the GA needed to reach 99% of its own final quality
// (evals-to-quality: the samples-to-quality axis of the ablation).
// Phase B replays an MG-RAST-style window series through each arm's
// OnlineTuner, streaming measured samples into the knob screen — the pruned
// arm re-screens and may re-cut its subspace mid-replay.
// Phase C rebuilds the pruned arm from scratch with the same seeds and
// checks bit-identical active sets, rankings and tuned configs.
//
// Results go to stdout (ASCII tables) and BENCH_knobs.json. `--smoke` keeps
// everything tiny for CI; `--out <path>` redirects the JSON. Everything is
// deterministic simulation — no sanitizer- or hardware-conditional gates, so
// `gates_skipped` is always empty here.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "collect/runner.h"
#include "core/online.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include "workload/mgrast.h"

using namespace rafiki;

namespace {

struct RegimeResult {
  double rr = 0.0;
  double measured = 0.0;   ///< true throughput of the tuned config (ops/s)
  double predicted = 0.0;  ///< surrogate's claim for the same config
  std::size_t evaluations = 0;
  std::size_t evals_to_quality = 0;  ///< evals until the shared quality target
  std::vector<double> history;              ///< best predicted per GA generation
  std::vector<engine::Config> config_history;  ///< best config per generation
};

struct ArmResult {
  std::string name;
  std::size_t genome_dims = 0;
  std::vector<RegimeResult> regimes;
  double mean_measured = 0.0;
  double mean_evals_to_quality = 0.0;
  double replay_mean_tput = 0.0;
  std::size_t replay_windows = 0;
  std::size_t reconfigurations = 0;
  std::size_t optimizer_runs = 0;
  core::Rafiki::TuneStats tune;
  std::vector<std::string> active_names;
  std::vector<engine::ParamId> active_ids;
  std::vector<tune::KnobScore> ranking;
  std::vector<engine::Config> tuned_configs;  ///< per regime, for Phase C
};

core::RafikiOptions arm_options(bool smoke) {
  core::RafikiOptions options;
  // A surrogate over the FULL registry needs real data: the paper's 11-point
  // read-ratio grid in full mode, a 5-point grid in smoke. All arms get the
  // same budget — fixed5 simply spends it on a 5-D model. Full mode must
  // clear the coverage rule's 1 + 2x22 = 45 axis-aligned configs with room
  // to spare: everything past 45 is the jointly-varied random fill, and
  // without it a 22-D surrogate is additive-only exactly where the full-size
  // GA (48x70 vs smoke's 20x16) pushes hardest — the LCB alone cannot keep
  // the 22-D arms honest against that much unsupported extrapolation.
  options.workload_grid = smoke ? std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9}
                                : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                                      0.6, 0.7, 0.8, 0.9, 1.0};
  options.n_configs = smoke ? 20 : 64;
  // Short measurement windows underestimate flush/compaction effects and
  // misrank the knobs the screen is seeded from; 16k ops is the smallest
  // window where the sweep's ordering is stable.
  options.collect.measure.ops = smoke ? 16000 : 40000;
  options.collect.measure.warmup_ops = smoke ? 1600 : 4000;
  options.collect.seed = 20171211;
  options.anova_repeats = 3;
  // The 23-input surrogate (rr + full registry) is the bottleneck for the
  // 22-D arms: at 100 training points a 4-net/40-epoch ensemble underfits
  // enough that the GA exploits model error. Training cost is trivial next
  // to collection, so smoke still trains a real ensemble.
  options.ensemble.n_nets = smoke ? 8 : 10;
  options.ensemble.train.max_epochs = smoke ? 80 : 100;
  options.ga.population = smoke ? 20 : 48;
  options.ga.generations = smoke ? 16 : 70;
  // All arms search the lower confidence bound: a raw-mean argmax harvests
  // whatever upward model error the ensemble has, which punishes the 22-D
  // arms (wider spread at 100 points) far more than it ever helps them.
  options.ga_risk_aversion = 1.0;
  return options;
}

/// Surrogate evaluations spent up to (and including) generation `gen` of the
/// GA's best_history: the initial population plus per-generation offspring.
std::size_t evals_at(const opt::GaOptions& ga, std::size_t gen) {
  const std::size_t elites = std::min(ga.elites, ga.population);
  return ga.population + gen * (ga.population - elites);
}

/// Memoized true-throughput evaluator: the convergence race re-measures the
/// same best-so-far config across many generations, so cache by rendering.
class TrueThroughput {
 public:
  double at(const engine::Config& config, double rr, std::uint64_t salt) {
    const std::string key = std::to_string(rr) + "|" + std::to_string(salt) + "|" +
                            config.to_string();
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    collect::MeasureOptions measure;
    measure.ops = 20000;
    measure.warmup_ops = 2000;
    measure.noise_sd = 0.0;  // gates compare arms; measurement noise only blurs them
    measure.seed = 777 + salt;
    const double tput = collect::measure_throughput(
        config, workload::WorkloadSpec::with_read_ratio(rr), measure);
    memo_.emplace(key, tput);
    return tput;
  }

 private:
  std::map<std::string, double> memo_;
};

/// Surrogate evaluations until the search's best-so-far config FIRST reached
/// `target` true throughput; charges the full budget when it never did. This
/// races arms on ground truth (the simulated engine), not on their own
/// surrogates' opinions, so arms with different feature spaces compare
/// fairly.
std::size_t evals_to_reach(const opt::GaOptions& ga, const RegimeResult& regime,
                           double target, TrueThroughput& truth, std::uint64_t salt) {
  for (std::size_t g = 0; g < regime.config_history.size(); ++g) {
    if (g < regime.history.size() && std::isinf(regime.history[g])) continue;
    if (truth.at(regime.config_history[g], regime.rr, salt) >= target) {
      return evals_at(ga, g);
    }
  }
  return regime.config_history.empty()
             ? 0
             : evals_at(ga, regime.config_history.size() - 1);
}

/// The regime read-ratios Phase A tunes: one per MG-RAST regime band.
std::vector<double> regime_rrs() { return {0.9, 0.5, 0.1}; }

enum class Arm { kFixed5, kNaive22, kPruned };

std::vector<engine::ParamId> all_params() {
  std::vector<engine::ParamId> ids;
  ids.reserve(engine::kParamCount);
  for (const auto& spec : engine::param_registry()) ids.push_back(spec.id);
  return ids;
}

ArmResult run_arm(Arm arm, bool smoke, TrueThroughput& truth) {
  ArmResult result;
  core::RafikiOptions options = arm_options(smoke);
  switch (arm) {
    case Arm::kFixed5:
      result.name = "fixed5";
      break;
    case Arm::kNaive22:
      result.name = "naive22";
      break;
    case Arm::kPruned:
      result.name = "pruned";
      options.dynamic_knobs = true;
      options.subspace.min_k = 3;
      options.subspace.max_k = 8;
      break;
  }

  core::Rafiki rafiki(options);
  if (arm == Arm::kFixed5) rafiki.set_key_params(engine::key_params());
  if (arm == Arm::kNaive22) rafiki.set_key_params(all_params());
  rafiki.select_key_params();  // pruned: ANOVA-seeds the screen, cuts the subspace
  rafiki.train(rafiki.collect());

  result.active_ids = rafiki.active_params();
  result.genome_dims = result.active_ids.size();
  for (auto id : result.active_ids) {
    result.active_names.emplace_back(engine::param_name(id));
  }

  // Phase A: tune each regime, score the tuned config on the true engine.
  // evals_to_quality is filled in later (the target is cross-arm).
  for (double rr : regime_rrs()) {
    const auto tuned = rafiki.optimize(rr);
    RegimeResult regime;
    regime.rr = rr;
    regime.predicted = tuned.predicted_throughput;
    regime.measured = truth.at(tuned.config, rr, static_cast<std::uint64_t>(rr * 10));
    regime.evaluations = tuned.surrogate_evaluations;
    regime.history = tuned.best_history;
    regime.config_history = tuned.config_history;
    result.mean_measured += regime.measured;
    result.regimes.push_back(regime);
    result.tuned_configs.push_back(tuned.config);
  }
  result.mean_measured /= static_cast<double>(result.regimes.size());

  // Phase B: replay a regime-switching window series through the online
  // tuner, streaming every measured sample into the knob screen. The pruned
  // arm's re-screens ride run_optimize (the background path in the serve
  // layer; inline here in the standalone replay shape).
  workload::MgRastTraceOptions trace;
  trace.duration_s = (smoke ? 3.0 : 12.0) * 3600.0;
  const auto windows = workload::synthesize_mgrast_windows(trace, 41);
  core::OnlineTuner tuner(rafiki);
  std::uint64_t salt = 1000;
  for (const auto& window : windows) {
    const auto decision = tuner.on_window(window.read_ratio);
    const double measured = truth.at(decision.config, window.read_ratio, ++salt);
    tuner.observe_sample(window.read_ratio, decision.config, measured);
    result.replay_mean_tput += measured;
  }
  result.replay_windows = windows.size();
  result.replay_mean_tput /= static_cast<double>(windows.size());
  result.reconfigurations = tuner.reconfigurations();
  result.optimizer_runs = tuner.optimizer_runs();
  result.tune = rafiki.tune_stats();
  result.ranking = rafiki.knob_ranking();
  // The replay may have re-cut the pruned arm's subspace; report the final set.
  result.active_ids = rafiki.active_params();
  result.active_names.clear();
  for (auto id : result.active_ids) {
    result.active_names.emplace_back(engine::param_name(id));
  }
  return result;
}

bool bitwise_equal_rankings(const std::vector<tune::KnobScore>& a,
                            const std::vector<tune::KnobScore>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].samples != b[i].samples) return false;
    // Bit comparison, not epsilon: determinism is the claim under test.
    if (std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0) return false;
    if (std::memcmp(&a[i].stream_score, &b[i].stream_score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void write_json(const std::string& path, const std::vector<ArmResult>& arms,
                bool deterministic, bool smoke,
                const std::vector<std::pair<std::string, bool>>& gates) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "knob_ablation: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"knob_ablation\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(out, "  \"hw_threads\": %u,\n", benchutil::hw_threads());
  std::fprintf(out, "  \"gates_skipped\": %s,\n",
               benchutil::json_string_array({}).c_str());
  std::fprintf(out, "  \"arms\": [\n");
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const auto& arm = arms[a];
    std::fprintf(out, "    {\"arm\": \"%s\", \"genome_dims\": %zu,\n",
                 arm.name.c_str(), arm.genome_dims);
    std::fprintf(out, "     \"active\": %s,\n",
                 benchutil::json_string_array(arm.active_names).c_str());
    std::fprintf(out, "     \"regimes\": [\n");
    for (std::size_t r = 0; r < arm.regimes.size(); ++r) {
      const auto& regime = arm.regimes[r];
      std::fprintf(out,
                   "       {\"rr\": %.2f, \"tuned_tput\": %.1f, \"predicted\": %.1f, "
                   "\"ga_evaluations\": %zu, \"evals_to_quality\": %zu}%s\n",
                   regime.rr, regime.measured, regime.predicted, regime.evaluations,
                   regime.evals_to_quality, r + 1 < arm.regimes.size() ? "," : "");
    }
    std::fprintf(out, "     ],\n");
    std::fprintf(out,
                 "     \"mean_tuned_tput\": %.1f, \"mean_evals_to_quality\": %.1f,\n",
                 arm.mean_measured, arm.mean_evals_to_quality);
    std::fprintf(out,
                 "     \"replay\": {\"windows\": %zu, \"mean_tput\": %.1f, "
                 "\"reconfigurations\": %zu, \"optimizer_runs\": %zu, "
                 "\"screen_observations\": %zu, \"recuts\": %zu, "
                 "\"recut_changes\": %zu}}%s\n",
                 arm.replay_windows, arm.replay_mean_tput, arm.reconfigurations,
                 arm.optimizer_runs, arm.tune.observations, arm.tune.recuts,
                 arm.tune.changes, a + 1 < arms.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  // Final blended ranking of the pruned arm (top 10), the Figure-5 analogue.
  const auto& pruned = arms.back();
  std::fprintf(out, "  \"ranking\": [\n");
  const std::size_t top = std::min<std::size_t>(10, pruned.ranking.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& entry = pruned.ranking[i];
    std::fprintf(out,
                 "    {\"param\": \"%s\", \"score\": %.6f, \"seed_score\": %.6f, "
                 "\"stream_score\": %.6f, \"samples\": %zu}%s\n",
                 std::string(engine::param_name(entry.id)).c_str(), entry.score,
                 entry.seed_score, entry.stream_score, entry.samples,
                 i + 1 < top ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"determinism\": {\"runs_identical\": %s},\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "  \"gates\": {");
  for (std::size_t g = 0; g < gates.size(); ++g) {
    std::fprintf(out, "\"%s\": %s%s", gates[g].first.c_str(),
                 gates[g].second ? "true" : "false", g + 1 < gates.size() ? ", " : "");
  }
  std::fprintf(out, "}\n}\n");
  std::fclose(out);
  benchutil::note("wrote " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_knobs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  TrueThroughput truth;
  benchutil::note("running the fixed5 arm (paper baseline)...");
  auto fixed5 = run_arm(Arm::kFixed5, smoke, truth);
  benchutil::note("running the naive22 arm (unpruned full space)...");
  auto naive22 = run_arm(Arm::kNaive22, smoke, truth);
  benchutil::note("running the pruned arm (online significance-aware)...");
  auto pruned = run_arm(Arm::kPruned, smoke, truth);

  // Samples-to-quality, raced on GROUND TRUTH: per regime the quality target
  // is 99% of the fixed5 baseline's tuned (measured) throughput, and each
  // arm's convergence trace is re-measured on the simulated engine to find
  // when its best-so-far config first reached that bar. An arm that never
  // reaches it is charged its full evaluation budget.
  const opt::GaOptions ga = arm_options(smoke).ga;
  auto finalize = [&ga, &truth](ArmResult& arm, const ArmResult& baseline) {
    arm.mean_evals_to_quality = 0.0;
    for (std::size_t r = 0; r < arm.regimes.size(); ++r) {
      const double target = 0.99 * baseline.regimes[r].measured;
      const auto salt = static_cast<std::uint64_t>(arm.regimes[r].rr * 10);
      arm.regimes[r].evals_to_quality =
          evals_to_reach(ga, arm.regimes[r], target, truth, salt);
      arm.mean_evals_to_quality += static_cast<double>(arm.regimes[r].evals_to_quality);
    }
    arm.mean_evals_to_quality /= static_cast<double>(arm.regimes.size());
  };
  finalize(fixed5, fixed5);
  finalize(naive22, fixed5);
  finalize(pruned, fixed5);

  // Phase C: determinism — same seeds, fresh pipeline, bitwise-equal outputs.
  benchutil::note("re-running the pruned arm for the determinism gate...");
  const auto pruned2 = run_arm(Arm::kPruned, smoke, truth);
  const bool deterministic = pruned.active_ids == pruned2.active_ids &&
                             pruned.tuned_configs == pruned2.tuned_configs &&
                             bitwise_equal_rankings(pruned.ranking, pruned2.ranking);

  const std::vector<ArmResult> arms = {fixed5, naive22, pruned};
  Table table({"arm", "genome dims", "tuned tput (true)", "evals to 99%",
               "replay tput", "recut changes"});
  for (const auto& arm : arms) {
    table.add_row({arm.name, std::to_string(arm.genome_dims),
                   Table::ops(arm.mean_measured),
                   Table::num(arm.mean_evals_to_quality, 0),
                   Table::ops(arm.replay_mean_tput), std::to_string(arm.tune.changes)});
  }
  benchutil::emit(table, "Knob-selection ablation (regime-switching workload)");

  Table ranking_table({"rank", "param", "blended", "seed", "stream", "samples"});
  const std::size_t top = std::min<std::size_t>(8, pruned.ranking.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& entry = pruned.ranking[i];
    ranking_table.add_row({std::to_string(i + 1),
                           std::string(engine::param_name(entry.id)),
                           Table::num(entry.score, 1), Table::num(entry.seed_score, 1),
                           Table::num(entry.stream_score, 1),
                           std::to_string(entry.samples)});
  }
  benchutil::emit(ranking_table, "Pruned arm: final blended knob ranking (top 8)");

  benchutil::compare("pruned tuned throughput vs fixed-5",
                     ">= 0.99x", Table::num(pruned.mean_measured /
                                            std::max(fixed5.mean_measured, 1e-9), 3) + "x");
  benchutil::compare("pruned evals-to-quality vs naive-22", "fewer",
                     Table::num(pruned.mean_evals_to_quality, 0) + " vs " +
                         Table::num(naive22.mean_evals_to_quality, 0));

  // Gates (all deterministic simulation — none skipped in any build mode).
  const bool g_quality = pruned.mean_measured >= 0.99 * fixed5.mean_measured;
  const bool g_samples = pruned.mean_evals_to_quality < naive22.mean_evals_to_quality;
  const bool g_active = pruned.genome_dims >= 3 && pruned.genome_dims <= 8;
  bool g_canonical = true;  // no redundant knob may ever be active
  for (auto id : pruned.active_ids) {
    if (engine::param_spec(id).redundant_with != engine::ParamId::kCount) {
      g_canonical = false;
    }
  }
  const bool g_observed = pruned.tune.observations >= pruned.replay_windows;
  const std::vector<std::pair<std::string, bool>> gates = {
      {"tuned_tput_ge_fixed5", g_quality},
      {"fewer_evals_than_naive22", g_samples},
      {"active_set_within_bounds", g_active},
      {"no_redundant_knob_active", g_canonical},
      {"screen_fed_by_replay", g_observed},
      {"deterministic", deterministic},
  };

  write_json(out_path, arms, deterministic, smoke, gates);

  bool pass = true;
  for (const auto& [name, ok] : gates) {
    if (!ok) std::printf("GATE FAIL: %s\n", name.c_str());
    pass = pass && ok;
  }
  std::printf("\nknob_ablation: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
