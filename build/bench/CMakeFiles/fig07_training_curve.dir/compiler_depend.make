# Empty compiler generated dependencies file for fig07_training_curve.
# This may be replaced when dependencies are built.
