#include "tenant/registry.h"

#include "core/online.h"

namespace rafiki::tenant {

TenantRegistry::TenantRegistry(
    std::size_t tenants,
    const std::function<QuotaOptions(serve::TenantId)>& quota_for) {
  if (tenants == 0) tenants = 1;
  for (std::size_t t = 0; t < tenants; ++t) {
    const auto id = static_cast<serve::TenantId>(t);
    states_.emplace_back(id, quota_for ? quota_for(id) : QuotaOptions{});
  }
}

}  // namespace rafiki::tenant
