file(REMOVE_RECURSE
  "librafiki_core.a"
)
