file(REMOVE_RECURSE
  "librafiki_collect.a"
)
