// Compaction planning (Section 2.2.2).
//
// SizeTiered: merge whenever >= min_compaction_threshold similarly-sized
// SSTables exist (Cassandra default 4). Write-friendly; read amplification
// grows because row versions stay spread over overlapping tables.
//
// Leveled: non-overlapping fixed-size tables per level, each level holding
// 10x the previous level's data; flushes land in L0 and are promoted by
// merging with the overlapping slice of the next level. Reads probe at most
// L0 plus one table per level; writes pay higher amplification.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "engine/sstable.h"

namespace rafiki::engine {

/// One planned merge: the input tables (by id) and the level the merged
/// output belongs to (always 0 for size-tiered).
struct CompactionPlan {
  std::vector<std::uint32_t> input_ids;
  int output_level = 0;
};

using BusySet = std::unordered_set<std::uint32_t>;

class SizeTieredPlanner {
 public:
  SizeTieredPlanner(int min_threshold, int max_threshold)
      : min_threshold_(min_threshold), max_threshold_(max_threshold) {}

  /// Returns the next merge to run, or nullopt if no bucket is ripe.
  /// Tables in `busy` are already being compacted and are skipped.
  std::optional<CompactionPlan> plan(const std::vector<SSTable>& tables,
                                     const BusySet& busy) const;

  /// Bucket tolerance: tables within [low*avg, high*avg] share a bucket.
  static constexpr double kBucketLow = 0.5;
  static constexpr double kBucketHigh = 1.5;

 private:
  int min_threshold_;
  int max_threshold_;
};

class LeveledPlanner {
 public:
  LeveledPlanner(double sstable_target_bytes, int l0_trigger = 4)
      : sstable_target_bytes_(sstable_target_bytes), l0_trigger_(l0_trigger) {}

  std::optional<CompactionPlan> plan(const std::vector<SSTable>& tables,
                                     const BusySet& busy) const;

  /// Byte budget of a level: sstable_target * 10^level for level >= 1.
  double level_target_bytes(int level) const;

 private:
  double sstable_target_bytes_;
  int l0_trigger_;
};

/// Invariant check used by tests: within each level >= 1, tables must be
/// pairwise non-overlapping. Returns true if the invariant holds.
bool leveled_invariant_holds(const std::vector<SSTable>& tables);

}  // namespace rafiki::engine
