#include "engine/scylla.h"

#include <cmath>

namespace rafiki::engine {
namespace {

double hash_unit(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// A simulated measurement compresses the paper's minutes-long benchmark
/// window into a few virtual seconds (see Hardware::mem_scale), so the
/// fluctuation process runs in equivalently compressed time: one virtual
/// second corresponds to ~100 wall seconds of tuner behaviour.
constexpr double kWallPerVirtualSecond = 100.0;

/// Deterministic throughput-fluctuation process: a smooth wander plus
/// occasional deep dips (~60% slower for ~40 wall seconds), per the paper's
/// root-cause observation of the internal tuner (Section 4.10 / Figure 10).
/// Returns a CPU-cost multiplier.
double fluctuation(double t_s, std::uint64_t seed) noexcept {
  const double wall = t_s * kWallPerVirtualSecond;
  // Slow wander (periods ~70 s and ~180 s) that survives 10-second
  // sampling, as in Figure 10's ScyllaDB trace.
  double mult = 1.0 + 0.12 * std::sin(0.09 * wall) + 0.10 * std::sin(0.035 * wall + 1.3);
  const auto window = static_cast<std::uint64_t>(wall / 40.0);
  const double u = hash_unit(window * 0x9e3779b97f4a7c15ull + seed);
  if (u < 0.15) {
    // Cost multiplier up to ~4.6x == ~60%+ throughput drop when CPU-bound.
    mult *= 1.8 + 2.8 * (u / 0.15);
  }
  return mult;
}

}  // namespace

CostModel ScyllaServer::scylla_cost_model() {
  CostModel costs;
  costs.write_base_us *= 0.72;
  costs.read_base_us *= 0.72;
  costs.memtable_insert_us *= 0.6;
  costs.index_probe_us *= 0.7;
  costs.data_read_us *= 0.7;
  costs.commitlog_wait_us *= 0.8;
  costs.compaction_cpu_us_per_kb *= 0.6;
  costs.compactor_kbps *= 1.5;
  costs.flush_writer_kbps *= 1.5;
  // Shard-per-core: no oversubscribed shared thread pools.
  costs.contention_us_per_thread = 0.08;
  return costs;
}

Config ScyllaServer::effective_config(const Config& requested, const Hardware& hardware) {
  Config effective = requested;
  const double cores = static_cast<double>(hardware.cores);
  effective.set(ParamId::kConcurrentWrites, 8.0 * cores);
  effective.set(ParamId::kConcurrentReads, 8.0 * cores);
  effective.set(ParamId::kConcurrentCompactors, cores);
  effective.set(ParamId::kMemtableFlushWriters, 4.0);
  effective.set(ParamId::kMemtableCleanupThreshold, 0.25);
  effective.set(ParamId::kMemtableSpaceMb, hardware.heap_mb / 4.0);
  // ScyllaDB triggers compaction with respect to each flush (Section 2.2.2):
  // the most eager trigger the engine supports.
  effective.set(ParamId::kMinCompactionThreshold,
                param_spec(ParamId::kMinCompactionThreshold).lo);
  effective.set(ParamId::kCommitlogSyncPeriodMs, 10000.0);
  return effective;
}

const std::vector<ParamId>& ScyllaServer::ignored_params() {
  static const std::vector<ParamId> kIgnored = {
      ParamId::kConcurrentWrites,       ParamId::kConcurrentReads,
      ParamId::kConcurrentCompactors,   ParamId::kMemtableFlushWriters,
      ParamId::kMemtableCleanupThreshold, ParamId::kMemtableSpaceMb,
      ParamId::kMinCompactionThreshold, ParamId::kCommitlogSyncPeriodMs,
  };
  return kIgnored;
}

ScyllaServer::ScyllaServer(const Config& requested, Hardware hardware,
                           std::uint64_t fluctuation_seed)
    : server_(effective_config(requested, hardware), hardware, scylla_cost_model()) {
  server_.set_perf_modulation(
      [fluctuation_seed](double t_s) { return fluctuation(t_s, fluctuation_seed); });
}

}  // namespace rafiki::engine
