// A real Bloom filter, built per SSTable at flush/compaction time exactly as
// Cassandra does. The configured false-positive chance sets the bits-per-key
// budget; false positives cause genuinely wasted index probes in the read
// path, which is the mechanism behind the bloom_filter_fp_chance parameter's
// performance effect.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <utility>
#include <vector>

namespace rafiki::engine {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at the target false-positive rate
  /// using the standard optimum: bits/key = -ln(p)/ln(2)^2, k = bits/key*ln2.
  BloomFilter(std::size_t expected_keys, double fp_chance) {
    expected_keys = expected_keys ? expected_keys : 1;
    fp_chance = std::clamp(fp_chance, 1e-6, 0.5);
    const double bits_per_key = -std::log(fp_chance) / (std::numbers::ln2 * std::numbers::ln2);
    n_bits_ = static_cast<std::size_t>(
        std::ceil(bits_per_key * static_cast<double>(expected_keys)));
    n_bits_ = std::max<std::size_t>(n_bits_, 64);
    n_hashes_ = std::max(1, static_cast<int>(std::round(bits_per_key * std::numbers::ln2)));
    bits_.assign((n_bits_ + 63) / 64, 0);
  }

  void add(std::int64_t key) noexcept {
    auto [h1, h2] = hash_pair(key);
    for (int i = 0; i < n_hashes_; ++i) {
      set_bit((h1 + static_cast<std::uint64_t>(i) * h2) % n_bits_);
    }
  }

  bool maybe_contains(std::int64_t key) const noexcept {
    if (bits_.empty()) return true;
    auto [h1, h2] = hash_pair(key);
    for (int i = 0; i < n_hashes_; ++i) {
      if (!test_bit((h1 + static_cast<std::uint64_t>(i) * h2) % n_bits_)) return false;
    }
    return true;
  }

  std::size_t bit_count() const noexcept { return n_bits_; }
  int hash_count() const noexcept { return n_hashes_; }

  static BloomFilter build(std::span<const std::int64_t> keys, double fp_chance) {
    BloomFilter filter(keys.size(), fp_chance);
    for (auto key : keys) filter.add(key);
    return filter;
  }

 private:
  static std::pair<std::uint64_t, std::uint64_t> hash_pair(std::int64_t key) noexcept {
    // SplitMix64 finalizer twice with distinct constants: cheap double hashing.
    auto mix = [](std::uint64_t z) {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    const auto k = static_cast<std::uint64_t>(key);
    const std::uint64_t h1 = mix(k + 0x9e3779b97f4a7c15ull);
    std::uint64_t h2 = mix(k ^ 0xd1b54a32d192ed03ull);
    h2 |= 1;  // ensure the stride is odd so probes cover the table
    return {h1, h2};
  }

  void set_bit(std::size_t i) noexcept { bits_[i >> 6] |= 1ull << (i & 63); }
  bool test_bit(std::size_t i) const noexcept {
    return (bits_[i >> 6] >> (i & 63)) & 1ull;
  }

  std::vector<std::uint64_t> bits_;
  std::size_t n_bits_ = 0;
  int n_hashes_ = 0;
};

}  // namespace rafiki::engine
