// Bounded multi-producer/multi-consumer queue with admission control: the
// serve layer's backpressure primitive. A full queue rejects immediately
// (try_push returns kFull -> the service answers Overloaded) instead of
// queuing unboundedly or blocking the producer. Consumers block on a
// condition variable; after close() they drain whatever is still queued and
// then observe std::nullopt. The timed pop exists only for the
// micro-batcher's real-time flush window — nothing a request *returns*
// depends on these waits, so the determinism contract is untouched.
//
// The locking discipline is a compile-time contract (util/sync.h): every
// mutable field is GUARDED_BY(mutex_) and take_locked() REQUIRES it, so an
// unlocked access is a build error under the `tsa` preset.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "util/sync.h"

namespace rafiki::serve {

/// Why a try_push was (not) admitted, decided atomically under the queue
/// lock. A separate closed() probe after a failed push would race with a
/// concurrent close() and misreport a full queue as shutting down.
enum class PushResult : std::uint8_t {
  kOk = 0,
  /// At capacity (and not closed) at the instant of the push.
  kFull,
  /// close() had already happened; no new work is admitted.
  kClosed,
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admission control: enqueues and returns kOk, or reports — without
  /// blocking — why the item was turned away. The reason is decided under
  /// the same lock that rejected the push, so it cannot be contradicted by
  /// a concurrent close().
  PushResult try_push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) ready_.wait(mutex_);
    return take_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    return take_locked();
  }

  /// Blocks until an item arrives, the queue closes, or `deadline` (real
  /// time) passes — the micro-batcher's flush-window wait.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      if (ready_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
    }
    return take_locked();
  }

  /// Stops admitting; waiting consumers wake, drain the backlog, then see
  /// std::nullopt.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> take_locked() REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar ready_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace rafiki::serve
