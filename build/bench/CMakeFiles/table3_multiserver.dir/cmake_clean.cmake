file(REMOVE_RECURSE
  "CMakeFiles/table3_multiserver.dir/table3_multiserver.cpp.o"
  "CMakeFiles/table3_multiserver.dir/table3_multiserver.cpp.o.d"
  "table3_multiserver"
  "table3_multiserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_multiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
