// Plain-text table rendering for the bench harnesses: every bench binary
// prints rows in the same layout as the paper's tables, plus CSV export so
// results can be post-processed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rafiki {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats with thousands separators, e.g. 78,556 — matches paper tables.
  static std::string ops(double v);
  /// Formats as a percentage, e.g. "41.4%".
  static std::string pct(double v, int precision = 1);

  /// ASCII rendering with aligned columns and a header rule.
  std::string render() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rafiki
