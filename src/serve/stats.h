// Thread-safe service telemetry: per-endpoint latency histograms (reusing
// util/histogram for the p50/p99 quantiles), admission/rejection/QPS
// counters, queue-depth samples, and the micro-batcher's batch-size
// distribution. Dumpable through the repo's standard ASCII-table/CSV
// renderer. Latencies are wall-clock measurements and reporting-only: no
// request result depends on them.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/types.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/table.h"

namespace rafiki::serve {

struct StatsOptions {
  /// Latency histogram range [0, latency_hi_us) in microseconds; samples
  /// beyond are clamped into the last bin.
  double latency_hi_us = 20000.0;
  std::size_t latency_bins = 400;
  /// Batch-size histogram range [1, max_batch + 1).
  std::size_t max_batch = 64;
};

class ServiceStats {
 public:
  explicit ServiceStats(StatsOptions options = {});

  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t not_ready = 0;
    std::uint64_t rejected_shutdown = 0;
  };

  /// A request passed admission control; `queue_depth` is sampled just after.
  void record_accept(Endpoint endpoint, std::size_t queue_depth);
  /// A request was turned away at admission (Overloaded / ShuttingDown).
  void record_reject(Endpoint endpoint, Status reason);
  /// A request ran (or was triaged) by a worker; latency is queue + service
  /// time in microseconds.
  void record_done(Endpoint endpoint, Status status, double latency_us);
  /// One Predict micro-batch was executed with this many coalesced requests.
  void record_batch(std::size_t batch_size);

  Counters counters(Endpoint endpoint) const;
  Counters totals() const;
  double latency_quantile(Endpoint endpoint, double q) const;
  double mean_latency_us(Endpoint endpoint) const;
  double mean_batch_size() const;
  double max_batch_size() const;
  double batch_quantile(double q) const;
  double mean_queue_depth() const;
  double max_queue_depth() const;
  std::uint64_t batches() const;

  /// Per-endpoint summary table ("endpoint | accepted | ok | overloaded |
  /// deadline | p50 | p99 | mean"); render() / to_csv() for output.
  Table table() const;

 private:
  struct PerEndpoint {
    Counters counters;
    Histogram latency;
    OnlineStats latency_stats;
    explicit PerEndpoint(const StatsOptions& options)
        : latency(0.0, options.latency_hi_us, options.latency_bins) {}
  };

  mutable std::mutex mutex_;
  StatsOptions options_;
  std::vector<PerEndpoint> per_endpoint_;
  Histogram batch_hist_;
  OnlineStats batch_stats_;
  OnlineStats depth_stats_;
  std::uint64_t batches_ = 0;
};

}  // namespace rafiki::serve
