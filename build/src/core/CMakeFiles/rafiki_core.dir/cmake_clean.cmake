file(REMOVE_RECURSE
  "CMakeFiles/rafiki_core.dir/online.cpp.o"
  "CMakeFiles/rafiki_core.dir/online.cpp.o.d"
  "CMakeFiles/rafiki_core.dir/rafiki.cpp.o"
  "CMakeFiles/rafiki_core.dir/rafiki.cpp.o.d"
  "CMakeFiles/rafiki_core.dir/reconfigure.cpp.o"
  "CMakeFiles/rafiki_core.dir/reconfigure.cpp.o.d"
  "librafiki_core.a"
  "librafiki_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
