// Google-benchmark microbenchmarks for the pieces Section 4.8 times:
// surrogate evaluation (paper: ~45 us/sample in MATLAB), a full GA search
// (paper: ~1.8 s for ~3,350 evaluations) and one live-store measurement
// (paper: ~7 minutes of wall time per sample).
#include <benchmark/benchmark.h>

#include "collect/runner.h"
#include "core/rafiki.h"
#include "ml/ensemble.h"
#include "util/rng.h"

using namespace rafiki;

namespace {

/// Shared trained surrogate; training once keeps the microbenches honest
/// (they time inference/search, not setup).
const core::Rafiki& trained_rafiki() {
  static core::Rafiki* instance = [] {
    core::RafikiOptions options;
    options.workload_grid = {0.0, 0.25, 0.5, 0.75, 1.0};
    options.n_configs = 12;
    options.collect.measure.ops = 20000;
    options.collect.measure.warmup_ops = 4000;
    options.ensemble.n_nets = 20;
    options.ga.population = 48;
    options.ga.generations = 70;
    auto* rafiki = new core::Rafiki(options);
    rafiki->set_key_params(engine::key_params());
    rafiki->train(rafiki->collect());
    return rafiki;
  }();
  return *instance;
}

void BM_SurrogatePredict(benchmark::State& state) {
  const auto& rafiki = trained_rafiki();
  const auto config = engine::Config::defaults();
  double rr = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rafiki.predict(rr, config));
    rr += 0.01;
    if (rr > 1.0) rr = 0.0;
  }
}
BENCHMARK(BM_SurrogatePredict);

void BM_GaFullSearch(benchmark::State& state) {
  const auto& rafiki = trained_rafiki();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rafiki.optimize(0.9));
  }
}
BENCHMARK(BM_GaFullSearch)->Unit(benchmark::kMillisecond);

void BM_LiveStoreMeasurement(benchmark::State& state) {
  const auto workload = workload::WorkloadSpec::with_read_ratio(0.5);
  collect::MeasureOptions options;
  options.ops = static_cast<std::size_t>(state.range(0));
  options.warmup_ops = options.ops / 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = ++seed;
    benchmark::DoNotOptimize(
        collect::measure_throughput(engine::Config::defaults(), workload, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LiveStoreMeasurement)->Arg(20000)->Arg(80000)->Unit(benchmark::kMillisecond);

void BM_EngineOpsThroughput(benchmark::State& state) {
  // Raw simulator speed: how many simulated operations per real second.
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.5);
  workload::Generator generator(spec, 3);
  engine::Server server(engine::Config::defaults());
  server.preload(generator.preload_keys(), spec.value_bytes);
  std::vector<workload::Op> batch;
  for (auto _ : state) {
    state.PauseTiming();
    batch = generator.batch(256);
    state.ResumeTiming();
    benchmark::DoNotOptimize(server.step(batch));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EngineOpsThroughput);

}  // namespace

BENCHMARK_MAIN();
