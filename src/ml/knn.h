// Nearest-neighbour interpolation baseline, standing in for the
// iTuned/OtterTune-style approach the paper compares against (Section 5):
// those systems map a target workload to the nearest previously-seen
// workloads in a knowledge base and interpolate, instead of learning a
// parametric surrogate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/mlp.h"

namespace rafiki::ml {

struct KnnOptions {
  std::size_t k = 5;
  /// Inverse-distance weighting exponent; 0 gives a plain average.
  double weight_power = 2.0;
};

class KnnRegressor {
 public:
  void fit(const std::vector<std::vector<double>>& X, std::span<const double> y,
           const KnnOptions& options = {});
  double predict(std::span<const double> x) const;
  bool trained() const noexcept { return !X_.empty(); }

 private:
  Normalizer norm_;
  std::vector<std::vector<double>> X_;  // normalized
  std::vector<double> y_;
  KnnOptions options_;
};

}  // namespace rafiki::ml
