#include "ml/trainbr.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ml/ensemble.h"

namespace rafiki::ml {
namespace {

/// Builds a normalized sample grid for y = f(x1, x2).
template <typename F>
void make_2d(F f, std::vector<std::vector<double>>& X, std::vector<double>& y) {
  for (double a = -1.0; a <= 1.0001; a += 0.2) {
    for (double b = -1.0; b <= 1.0001; b += 0.2) {
      X.push_back({a, b});
      y.push_back(f(a, b));
    }
  }
}

TEST(TrainBr, FitsLinearFunctionExactly) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  make_2d([](double a, double b) { return 0.4 * a - 0.3 * b + 0.1; }, X, y);

  Mlp net({2, 6, 1});
  Rng rng(3);
  net.randomize(rng);
  const auto result = train_lm_bayes(net, X, y);
  EXPECT_LT(result.mse, 1e-5);
}

TEST(TrainBr, FitsNonlinearInterdependentSurface) {
  // Multiplicative interaction — the kind of interdependence the paper's
  // Figure 6 shows between CM and CW.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  make_2d([](double a, double b) { return 0.5 * a * b + 0.2 * std::sin(2 * a); }, X, y);

  Mlp net({2, 10, 4, 1});
  Rng rng(5);
  net.randomize(rng);
  const auto result = train_lm_bayes(net, X, y);
  EXPECT_LT(result.mse, 1e-3);

  // Spot-check generalization at an off-grid point.
  const double pred = net.forward(std::vector<double>{0.35, -0.55});
  const double truth = 0.5 * 0.35 * -0.55 + 0.2 * std::sin(0.7);
  EXPECT_NEAR(pred, truth, 0.08);
}

TEST(TrainBr, BayesianRegularizationShrinksEffectiveParams) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  make_2d([](double a, double b) { return 0.8 * a + 0.1 * b; }, X, y);

  Mlp net({2, 12, 6, 1});  // heavily overparameterized for a linear target
  Rng rng(11);
  net.randomize(rng);
  const auto result = train_lm_bayes(net, X, y);
  // gamma must come out far below the raw parameter count.
  EXPECT_GT(result.gamma, 0.0);
  EXPECT_LT(result.gamma, 0.5 * static_cast<double>(net.param_count()));
  EXPECT_LT(result.mse, 1e-4);
}

TEST(TrainBr, NoisyTargetsDoNotBlowUp) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(17);
  for (int i = 0; i < 80; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    X.push_back({a, b});
    y.push_back(a * a - b + rng.gaussian(0, 0.05));
  }
  Mlp net({2, 8, 1});
  net.randomize(rng);
  const auto result = train_lm_bayes(net, X, y);
  // Should fit signal without interpolating the noise to zero error.
  EXPECT_LT(result.mse, 0.02);
  EXPECT_GT(result.mse, 1e-5);
}

TEST(TrainBr, RespectsEpochBudget) {
  std::vector<std::vector<double>> X{{0.0}, {0.5}, {1.0}};
  std::vector<double> y{0.0, 0.25, 1.0};
  Mlp net({1, 4, 1});
  Rng rng(2);
  net.randomize(rng);
  TrainOptions options;
  options.max_epochs = 3;
  const auto result = train_lm_bayes(net, X, y, options);
  EXPECT_LE(result.epochs, 3u);
}

TEST(SurrogateEnsemble, PrunesWorstThirtyPercent) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  make_2d([](double a, double b) { return a - b; }, X, y);
  SurrogateEnsemble ensemble;
  EnsembleOptions options;
  options.n_nets = 20;
  options.hidden = {6};
  options.train.max_epochs = 30;
  ensemble.fit(X, y, options);
  EXPECT_EQ(ensemble.total_nets(), 20u);
  EXPECT_EQ(ensemble.active_nets(), 14u);  // 20 - 30%
}

TEST(SurrogateEnsemble, PredictsUnnormalizedUnits) {
  // Throughput-scale targets: ensure normalization round-trips.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (double rr = 0.0; rr <= 1.0001; rr += 0.1) {
    for (double cw = 8; cw <= 96; cw += 22) {
      X.push_back({rr, cw});
      y.push_back(90000.0 - 40000.0 * rr + 50.0 * cw);
    }
  }
  SurrogateEnsemble ensemble;
  EnsembleOptions options;
  options.n_nets = 6;
  options.hidden = {8};
  options.train.max_epochs = 60;
  ensemble.fit(X, y, options);
  const double pred = ensemble.predict(std::vector<double>{0.5, 50.0});
  EXPECT_NEAR(pred, 90000.0 - 20000.0 + 2500.0, 2500.0);
}

TEST(SurrogateEnsemble, ThrowsWhenUntrainedOrBadInput) {
  SurrogateEnsemble ensemble;
  EXPECT_THROW(ensemble.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(ensemble.fit({}, std::vector<double>{}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rafiki::ml
