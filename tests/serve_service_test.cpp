// TuningService end-to-end: admission control (Overloaded on a full queue),
// virtual-clock deadline expiry, micro-batcher size and time triggers,
// lock-free snapshot swaps under concurrent load, and the ObserveWindow ->
// publish-hook -> new-snapshot-version loop. The concurrency tests double as
// tsan probes (see CMakePresets).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace rafiki::serve {
namespace {

// One tiny trained pipeline shared by every test in the suite; training is
// the expensive part and all tests only read from it.
class ServeService : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RafikiOptions options;
    options.workload_grid = {0.2, 0.8};
    options.n_configs = 5;
    options.collect.measure.ops = 3000;
    options.collect.measure.warmup_ops = 300;
    options.ensemble.n_nets = 3;
    options.ensemble.train.max_epochs = 30;
    options.ga.generations = 6;
    options.ga.population = 10;
    rafiki_ = new core::Rafiki(options);
    rafiki_->set_key_params(engine::key_params());
    rafiki_->train(rafiki_->collect());
    ASSERT_TRUE(rafiki_->trained());
  }

  static void TearDownTestSuite() {
    delete rafiki_;
    rafiki_ = nullptr;
  }

  static Request predict_request(double read_ratio = 0.3,
                                 engine::Config config = engine::Config::defaults()) {
    Request request;
    request.endpoint = Endpoint::kPredict;
    request.read_ratio = read_ratio;
    request.config = config;
    return request;
  }

  static core::Rafiki* rafiki_;
};

core::Rafiki* ServeService::rafiki_ = nullptr;

TEST_F(ServeService, NotReadyBeforeFirstPublish) {
  ServiceOptions options;
  options.workers = 1;
  TuningService service(options);
  service.start();
  const auto response = service.call(predict_request());
  EXPECT_EQ(response.status, Status::kNotReady);
  EXPECT_EQ(service.model_version(), 0u);
  service.stop();
}

TEST_F(ServeService, PredictMatchesDirectEnsembleBitForBit) {
  ServiceOptions options;
  options.workers = 1;
  TuningService service(options);
  EXPECT_EQ(service.publish(make_snapshot(*rafiki_)), 1u);
  service.start();

  const auto config = engine::Config::defaults().with(engine::key_params()[0], 1.0);
  const auto response = service.call(predict_request(0.35, config));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.model_version, 1u);
  EXPECT_GE(response.batch_size, 1u);
  // The service route is the same batched kernel predict() reduces to:
  // exact bits, not approximately equal.
  EXPECT_EQ(response.mean, rafiki_->predict(0.35, config));
  EXPECT_GE(response.stddev, 0.0);
  service.stop();
}

TEST_F(ServeService, FullQueueRejectsOverloadedImmediately) {
  ServiceOptions options;
  options.workers = 0;  // nobody drains: the queue stays as we fill it
  options.queue_capacity = 2;
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  auto first = service.submit(predict_request());
  auto second = service.submit(predict_request());
  auto third = service.submit(predict_request());

  // The overflow future resolves instantly — admission control never blocks.
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(third.get().status, Status::kOverloaded);
  EXPECT_EQ(service.stats().counters(Endpoint::kPredict).rejected_overload, 1u);
  EXPECT_EQ(service.stats().counters(Endpoint::kPredict).accepted, 2u);

  // stop() with no workers fails the backlog rather than dropping it.
  service.stop();
  EXPECT_EQ(first.get().status, Status::kShuttingDown);
  EXPECT_EQ(second.get().status, Status::kShuttingDown);

  // After stop, admission answers ShuttingDown immediately.
  EXPECT_EQ(service.submit(predict_request()).get().status, Status::kShuttingDown);

  // Accounting regression: the two drained jobs were *accepted* and then
  // failed — they count as failed_shutdown, never as admission rejects. The
  // admission columns hold exactly the overflow push and the post-stop push,
  // and accepted == completed after the drain.
  const auto counters = service.stats().counters(Endpoint::kPredict);
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.completed, 2u);
  EXPECT_EQ(counters.failed_shutdown, 2u);
  EXPECT_EQ(counters.failed_overload, 0u);
  EXPECT_EQ(counters.rejected_overload, 1u);
  EXPECT_EQ(counters.rejected_shutdown, 1u);
}

TEST_F(ServeService, DeadlineExpiryUsesInjectedVirtualClock) {
  auto clock = std::make_shared<std::atomic<Tick>>(0);
  ServiceOptions options;
  options.workers = 1;
  options.clock_fn = [clock] { return clock->load(); };
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  // Deadline in the future: served.
  auto request = predict_request();
  request.deadline = 10;
  EXPECT_EQ(service.call(request).status, Status::kOk);

  // Advance virtual time past the deadline: expired before execution.
  clock->store(11);
  EXPECT_EQ(service.call(request).status, Status::kDeadlineExceeded);
  EXPECT_EQ(service.stats().counters(Endpoint::kPredict).rejected_deadline, 1u);

  // kNoDeadline never expires, whatever the clock says.
  EXPECT_EQ(service.call(predict_request()).status, Status::kOk);
  service.stop();
}

TEST_F(ServeService, BatcherFlushesOnSizeTrigger) {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 4;
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));

  // Queue 8 predicts before any worker exists, then start: the worker must
  // coalesce them into exactly two full batches of max_batch.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.submit(predict_request(0.1 * i)));
  service.start();
  for (auto& future : futures) {
    const auto response = future.get();
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.batch_size, 4u);
  }
  service.stop();
  EXPECT_EQ(service.stats().batches(), 2u);
  EXPECT_DOUBLE_EQ(service.stats().mean_batch_size(), 4.0);
}

TEST_F(ServeService, BatcherFlushesOnTimeTriggerBelowMaxBatch) {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 32;
  options.batch_window = std::chrono::microseconds(500);
  // Strict fill-or-time-out mode: this test exercises the window trigger
  // itself, so the adaptive empty-queue flush must stay out of the way.
  options.adaptive_batch = false;
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));

  // Only 3 requests are ever submitted — far below max_batch — so the only
  // way they complete is the flush window elapsing.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(service.submit(predict_request(0.2 * i)));
  service.start();
  for (auto& future : futures) {
    const auto response = future.get();
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.batch_size, 3u);
  }
  service.stop();
  EXPECT_EQ(service.stats().batches(), 1u);
}

TEST_F(ServeService, AdaptiveBatcherFlushesWhenQueueEmpties) {
  // Regression for the lone-client stall: with a strict batcher a single
  // request under a large max_batch sleeps out the whole flush window
  // (throughput degraded to ~1/batch_window). The adaptive batcher runs the
  // batch the moment the queue momentarily empties, so an absurdly long
  // window must not delay a lone request.
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 32;
  options.batch_window = std::chrono::seconds(30);
  ASSERT_TRUE(options.adaptive_batch);  // the default: documents the contract
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  auto future = service.submit(predict_request());
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)), std::future_status::ready)
      << "single request stalled behind the batch window";
  const auto response = future.get();
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.batch_size, 1u);
  service.stop();
}

TEST_F(ServeService, SnapshotSwapUnderConcurrentLoadLosesNothing) {
  constexpr int kReaders = 4;
  constexpr int kCallsPerReader = 40;
  constexpr int kRepublishes = 25;

  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 1024;  // large enough that nothing is rejected
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  std::vector<std::thread> readers;
  std::vector<int> failures(kReaders, 0);
  std::vector<int> version_regressions(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_version = 0;
      for (int i = 0; i < kCallsPerReader; ++i) {
        const auto response = service.call(predict_request(0.25 + 0.01 * (i % 10)));
        if (!response.ok()) ++failures[static_cast<std::size_t>(r)];
        // Versions a single reader observes never go backwards: publishes
        // are monotone and each call happens-after the previous one.
        if (response.model_version < last_version) {
          ++version_regressions[static_cast<std::size_t>(r)];
        }
        last_version = response.model_version;
      }
    });
  }

  // Republish fresh snapshot versions while the readers hammer Predict.
  for (int i = 0; i < kRepublishes; ++i) service.publish(make_snapshot(*rafiki_));

  for (auto& reader : readers) reader.join();
  service.stop();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(failures[static_cast<std::size_t>(r)], 0) << "reader " << r;
    EXPECT_EQ(version_regressions[static_cast<std::size_t>(r)], 0) << "reader " << r;
  }
  EXPECT_EQ(service.model_version(), static_cast<std::uint64_t>(kRepublishes) + 1u);
  const auto totals = service.stats().totals();
  EXPECT_EQ(totals.accepted, static_cast<std::uint64_t>(kReaders * kCallsPerReader));
  EXPECT_EQ(totals.ok, totals.accepted);
}

TEST_F(ServeService, OptimizeEndpointSearchesTheSnapshotSpace) {
  ServiceOptions options;
  options.workers = 1;
  options.ga.population = 10;
  options.ga.generations = 5;
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  Request request;
  request.endpoint = Endpoint::kOptimize;
  request.read_ratio = 0.4;
  const auto response = service.call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response.surrogate_evaluations, 0u);
  EXPECT_GT(response.predicted_throughput, 0.0);
  // The optimized config must score exactly its reported fitness.
  EXPECT_EQ(rafiki_->predict(0.4, response.config), response.predicted_throughput);
  service.stop();
}

TEST_F(ServeService, ObserveWindowIsStaleWhileRevalidate) {
  ServiceOptions options;
  options.workers = 1;
  core::OnlineTuner tuner(*rafiki_);
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.attach_tuner(tuner);
  service.start();

  // A cache-miss window answers immediately with the (default) current
  // config, stale-marked — no GA runs on the request path, no new version
  // is published yet.
  Request request;
  request.endpoint = Endpoint::kObserveWindow;
  request.read_ratio = 0.2;
  const auto first = service.call(request);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.stale);
  EXPECT_FALSE(first.reconfigured);
  // The version is read after the miss was enqueued, so a fast background
  // GA may already have republished (1 = pre-retrain, 2 = raced ahead).
  EXPECT_GE(first.model_version, 1u);
  EXPECT_LE(first.model_version, 2u);
  EXPECT_EQ(service.stats().counters(Endpoint::kObserveWindow).stale, 1u);

  // Once the background worker finishes, the optimized config has been
  // republished as a new snapshot version carrying the tuned entry.
  service.wait_retrain_idle();
  EXPECT_EQ(service.model_version(), 2u);
  const auto snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->tuned.count(tuner.bucket_for(0.2)), 1u);
  EXPECT_EQ(service.stats().retrain_counters().runs, 1u);

  // The next window in the bucket adopts the tuned config (fresh, not
  // stale); a repeat after that is a pure cache hit.
  const auto second = service.call(request);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.stale);
  EXPECT_TRUE(second.reconfigured);
  EXPECT_EQ(second.model_version, 2u);
  EXPECT_EQ(second.config, snapshot->tuned.at(tuner.bucket_for(0.2)).config);

  const auto third = service.call(request);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.stale);
  EXPECT_FALSE(third.reconfigured);
  EXPECT_EQ(third.model_version, 2u);
  EXPECT_EQ(tuner.optimizer_runs(), 1u);
  service.stop();
}

TEST_F(ServeService, ObserveWindowWithoutTunerIsNotReady) {
  ServiceOptions options;
  options.workers = 1;
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();
  Request request;
  request.endpoint = Endpoint::kObserveWindow;
  EXPECT_EQ(service.call(request).status, Status::kNotReady);
  service.stop();
}

TEST_F(ServeService, StatsTableListsEveryEndpoint) {
  ServiceOptions options;
  options.workers = 1;
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();
  service.call(predict_request());
  service.stop();

  const auto text = service.stats().table().render();
  EXPECT_NE(text.find("Predict"), std::string::npos);
  EXPECT_NE(text.find("Optimize"), std::string::npos);
  EXPECT_NE(text.find("ObserveWindow"), std::string::npos);
  const auto csv = service.stats().table().to_csv();
  EXPECT_NE(csv.find("endpoint"), std::string::npos);
}

}  // namespace
}  // namespace rafiki::serve
