#include "opt/baselines.h"

#include <limits>

namespace rafiki::opt {

SearchResult grid_search(const SearchSpace& space, const Objective& objective,
                         std::span<const std::size_t> levels) {
  SearchResult result;
  result.best_fitness = -std::numeric_limits<double>::infinity();
  for (auto& point : space.grid(levels)) {
    const double value = objective(point);
    ++result.evaluations;
    if (value > result.best_fitness) {
      result.best_fitness = value;
      result.best_point = point;
    }
  }
  return result;
}

SearchResult greedy_search(const SearchSpace& space, const Objective& objective,
                           std::vector<double> start, std::size_t levels_per_dim,
                           std::size_t passes) {
  SearchResult result;
  result.best_point = space.snap(std::move(start));
  result.best_fitness = objective(result.best_point);
  ++result.evaluations;

  for (std::size_t pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (std::size_t d = 0; d < space.size(); ++d) {
      auto candidate = result.best_point;
      for (double v : space.level_values(d, levels_per_dim)) {
        candidate[d] = v;
        const double value = objective(candidate);
        ++result.evaluations;
        if (value > result.best_fitness) {
          result.best_fitness = value;
          result.best_point = candidate;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return result;
}

SearchResult random_search(const SearchSpace& space, const Objective& objective,
                           std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  SearchResult result;
  result.best_fitness = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < samples; ++i) {
    const auto point = space.random_point(rng);
    const double value = objective(point);
    ++result.evaluations;
    if (value > result.best_fitness) {
      result.best_fitness = value;
      result.best_point = point;
    }
  }
  return result;
}

}  // namespace rafiki::opt
