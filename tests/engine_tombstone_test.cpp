// Tombstone semantics across the LSM stack (Section 2.2.1: "the compaction
// process merges keys, combines columns, evicts tombstones...").
#include <gtest/gtest.h>

#include "collect/runner.h"
#include "engine/server.h"
#include "workload/generator.h"

namespace rafiki::engine {
namespace {

TEST(MemtableTombstone, MarksAndAccounts) {
  Memtable memtable;
  memtable.put(1, 100);
  EXPECT_FALSE(memtable.is_tombstone(1));
  memtable.put_tombstone(1);
  EXPECT_TRUE(memtable.is_tombstone(1));
  EXPECT_EQ(memtable.row_count(), 1u);
  // Tombstone overwrote the 100-byte value: only overhead remains.
  EXPECT_EQ(memtable.bytes(), static_cast<std::uint64_t>(Memtable::kRowOverheadBytes));
  // Deleting a never-written key still creates a marker row.
  memtable.put_tombstone(7);
  EXPECT_TRUE(memtable.is_tombstone(7));
  EXPECT_EQ(memtable.row_count(), 2u);
}

TEST(SSTableTombstone, ConstructionAndLookup) {
  SSTable table(1, {10, 20, 30}, 100.0, 0.01, 0, {20, 40});
  // Tombstone 40 was not in the key run: it is added as a marker row.
  EXPECT_EQ(table.key_count(), 4u);
  EXPECT_EQ(table.tombstone_count(), 2u);
  EXPECT_TRUE(table.is_tombstone(20));
  EXPECT_TRUE(table.is_tombstone(40));
  EXPECT_FALSE(table.is_tombstone(10));
  // Bytes: 2 data rows at 100 B + 2 markers at marker size.
  EXPECT_DOUBLE_EQ(table.bytes(), 2 * 100.0 + 2 * SSTable::kTombstoneBytes);
}

TEST(SSTableTombstone, MergeNewestVersionWins) {
  SSTable old_table(1, {5, 6, 7}, 100.0, 0.01, 0);
  SSTable new_table(2, {6}, 100.0, 0.01, 0, {6});  // key 6 deleted later
  const SSTable* inputs[] = {&old_table, &new_table};

  // Without eviction the tombstone survives the merge.
  const auto kept = SSTable::merge(3, inputs, 0.01, 0, /*drop_tombstones=*/false);
  EXPECT_EQ(kept.key_count(), 3u);
  EXPECT_TRUE(kept.is_tombstone(6));

  // With eviction both the tombstone and the shadowed data row vanish.
  const auto dropped = SSTable::merge(4, inputs, 0.01, 0, /*drop_tombstones=*/true);
  EXPECT_EQ(dropped.key_count(), 2u);
  EXPECT_FALSE(dropped.has_key(6));
  EXPECT_EQ(dropped.tombstone_count(), 0u);
}

TEST(SSTableTombstone, MergeResurrectionIsImpossible) {
  // A delete followed by a re-insert: the re-insert (newest) must win.
  SSTable oldest(1, {9}, 100.0, 0.01, 0);
  SSTable deleted(2, {9}, 100.0, 0.01, 0, {9});
  SSTable reinserted(3, {9}, 100.0, 0.01, 0);
  const SSTable* inputs[] = {&deleted, &reinserted, &oldest};
  const auto merged = SSTable::merge(4, inputs, 0.01, 0, true);
  EXPECT_TRUE(merged.has_key(9));
  EXPECT_FALSE(merged.is_tombstone(9));
}

TEST(SSTableTombstone, SplitDistributesMarkersByRange) {
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 100; ++k) keys.push_back(k);
  std::uint32_t next_id = 1;
  const auto tables = SSTable::split_into_tables(next_id, std::move(keys), 100.0,
                                                 100.0 * 50, 0.01, 1, {10, 60});
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_TRUE(tables[0].is_tombstone(10));
  EXPECT_FALSE(tables[0].is_tombstone(60));
  EXPECT_TRUE(tables[1].is_tombstone(60));
}

TEST(ServerTombstone, DeleteWorkloadPurgesThroughCompaction) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.1);
  spec.initial_keys = 15000;
  spec.insert_fraction = 0.2;
  spec.delete_fraction = 0.3;
  workload::Generator generator(spec, 7);
  // Eager compaction so eviction merges occur within the run.
  Server server(Config::defaults()
                    .with(ParamId::kMinCompactionThreshold, 3)
                    .with(ParamId::kCompactionThroughputMbs, 256)
                    .with(ParamId::kConcurrentCompactors, 4));
  server.preload(generator.preload_keys(), spec.value_bytes);
  RunOptions opts;
  opts.ops = 60000;
  const auto stats = server.run(generator, opts);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.tombstones_purged, 100u)
      << "compaction should evict tombstones on full-coverage merges";
  EXPECT_GT(stats.throughput_ops, 1000.0);
}

TEST(ServerTombstone, DeletesAreDeterministic) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.4);
  spec.delete_fraction = 0.2;
  spec.initial_keys = 8000;
  auto run_once = [&] {
    workload::Generator generator(spec, 13);
    Server server(Config::defaults());
    server.preload(generator.preload_keys(), spec.value_bytes);
    RunOptions opts;
    opts.ops = 12000;
    return server.run(generator, opts).throughput_ops;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(GeneratorTombstone, DeleteFractionRealized) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.0);
  spec.insert_fraction = 0.5;
  spec.delete_fraction = 0.25;
  workload::Generator generator(spec, 3);
  std::size_t deletes = 0, inserts = 0;
  constexpr std::size_t kN = 20000;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto op = generator.next();
    deletes += op.kind == workload::Op::Kind::kDelete;
    inserts += op.kind == workload::Op::Kind::kInsert;
    if (op.kind == workload::Op::Kind::kDelete) {
      EXPECT_EQ(op.value_bytes, 0u);
    }
  }
  EXPECT_NEAR(static_cast<double>(deletes) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(inserts) / kN, 0.5, 0.02);
}

}  // namespace
}  // namespace rafiki::engine
