// Fuzz harness for the wire codec's decode path (net/wire.h).
//
// The decoder is the one piece of this codebase that parses attacker-
// controlled bytes, so its contract is checked here against arbitrary input,
// not just the round-trip tests' well-formed frames:
//
//   1. decode_frame never reads out of bounds, crashes, or hangs (the
//      sanitizers catch the first two; the harness is loop-free per input).
//   2. consumed <= size always.
//   3. kOk / recoverable  -> consumed >= the decoded version's header size
//      (24 bytes for v2, 20 for a v1-compat frame).
//   4. kNeedMore / fatal  -> consumed == 0 (the stream offset is untouched).
//   5. kOk -> re-encoding the decoded frame and decoding again yields kOk
//      with identical fields (decode/encode is a stable round trip).
//
// Two build modes:
//   * RAFIKI_FUZZ=ON (clang only): libFuzzer entry point, coverage-guided.
//       ./wire_fuzz tests/fuzz/corpus -max_total_time=60
//   * default (any compiler): deterministic standalone driver that replays
//     the committed corpus and then hammers the decoder with seeded
//     rafiki::Rng mutations of valid frames plus pure noise:
//       ./wire_fuzz --iters 20000 --seed 42 --corpus tests/fuzz/corpus
//     The corpus files themselves were produced by `--gen-corpus DIR`.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "serve/types.h"
#include "util/rng.h"

namespace {

using rafiki::net::decode_frame;
using rafiki::net::decode_recoverable;
using rafiki::net::DecodeStatus;
using rafiki::net::Frame;
using rafiki::net::FrameType;
using rafiki::net::kDefaultMaxPayload;
using rafiki::net::kHeaderSize;
using rafiki::net::kHeaderSizeV1;
using rafiki::net::kProtocolVersion;

[[noreturn]] void fail(const char* invariant, std::size_t size) {
  std::fprintf(stderr, "wire_fuzz: invariant violated: %s (input size %zu)\n",
               invariant, size);
  std::abort();
}

bool requests_equal(const rafiki::serve::Request& a, const rafiki::serve::Request& b) {
  return a.endpoint == b.endpoint && a.tenant == b.tenant &&
         a.read_ratio == b.read_ratio && a.config == b.config &&
         a.deadline == b.deadline;
}

bool responses_equal(const rafiki::serve::Response& a, const rafiki::serve::Response& b) {
  return a.status == b.status && a.model_version == b.model_version &&
         a.mean == b.mean && a.stddev == b.stddev && a.batch_size == b.batch_size &&
         a.config == b.config && a.predicted_throughput == b.predicted_throughput &&
         a.reconfigured == b.reconfigured && a.stale == b.stale &&
         a.surrogate_evaluations == b.surrogate_evaluations;
}

bool frames_equal(const Frame& a, const Frame& b) {
  if (a.type != b.type || a.request_id != b.request_id) return false;
  if (a.version != b.version || a.tenant != b.tenant) return false;
  switch (a.type) {
    case FrameType::kRequest:
      return a.endpoint == b.endpoint && requests_equal(a.request, b.request);
    case FrameType::kResponse:
      return a.endpoint == b.endpoint && responses_equal(a.response, b.response);
    case FrameType::kError:
      return a.error == b.error;
  }
  return false;
}

void check_one(const std::uint8_t* data, std::size_t size, std::size_t max_payload) {
  Frame frame;
  std::size_t consumed = 0;
  const DecodeStatus status = decode_frame(data, size, max_payload, frame, consumed);

  if (consumed > size) fail("consumed > size", size);
  if (status == DecodeStatus::kOk || decode_recoverable(status)) {
    // frame.version is set whenever a frame boundary was established.
    const std::size_t header_size = frame.version == 1 ? kHeaderSizeV1 : kHeaderSize;
    if (consumed < header_size) fail("frame consumed without a full header", size);
  } else {
    if (consumed != 0) fail("kNeedMore/fatal must not consume bytes", size);
  }
  if (status != DecodeStatus::kOk) return;

  // Round trip: what we decoded must re-encode into bytes that decode back
  // to the same frame in one piece — in the SAME protocol version it arrived
  // in (the server answers v1 peers in v1), with the tenant preserved.
  std::vector<std::uint8_t> bytes;
  switch (frame.type) {
    case FrameType::kRequest:
      rafiki::net::encode_request(frame.request_id, frame.request, bytes, frame.version);
      break;
    case FrameType::kResponse:
      rafiki::net::encode_response(frame.request_id, frame.endpoint, frame.response,
                                   bytes, frame.tenant, frame.version);
      break;
    case FrameType::kError:
      rafiki::net::encode_error(frame.request_id, frame.error, bytes, frame.tenant,
                                frame.version);
      break;
  }
  Frame again;
  std::size_t consumed_again = 0;
  const DecodeStatus second =
      decode_frame(bytes.data(), bytes.size(), max_payload, again, consumed_again);
  if (second != DecodeStatus::kOk) fail("re-encoded frame failed to decode", size);
  if (consumed_again != bytes.size()) fail("re-decode left trailing bytes", size);
  if (!frames_equal(frame, again)) fail("round trip changed frame fields", size);
}

}  // namespace

// libFuzzer entry point; also the driver's per-input hook. Each input is
// checked under the default payload bound and a tiny one, so the kBadLength
// path gets coverage without needing 64 KiB inputs.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  check_one(data, size, kDefaultMaxPayload);
  check_one(data, size, 64);
  return 0;
}

#if !defined(RAFIKI_FUZZ_LIBFUZZER)

namespace {

using rafiki::Rng;

rafiki::serve::Request random_request(Rng& rng) {
  rafiki::serve::Request request;
  request.tenant = rng.bernoulli(0.5)
                       ? 0
                       : static_cast<rafiki::serve::TenantId>(rng.next_u64());
  request.endpoint = static_cast<rafiki::serve::Endpoint>(
      rng.uniform_int(0, static_cast<std::int64_t>(rafiki::serve::kEndpointCount) - 1));
  request.read_ratio = rng.uniform();
  request.config = rafiki::engine::Config::from_key_vector(
      {rng.uniform(0.0, 4.0), rng.uniform(0.0, 256.0), rng.uniform(0.0, 1024.0),
       rng.uniform(0.0, 64.0), rng.uniform(0.0, 2.0)});
  request.deadline = rng.bernoulli(0.5) ? rafiki::serve::kNoDeadline
                                        : static_cast<rafiki::serve::Tick>(rng.next_u64());
  return request;
}

rafiki::serve::Response random_response(Rng& rng) {
  rafiki::serve::Response response;
  response.status = static_cast<rafiki::serve::Status>(
      rng.uniform_int(0, static_cast<std::int64_t>(rafiki::serve::kStatusCount) - 1));
  response.model_version = rng.next_u64() >> 32;
  response.mean = rng.uniform(-1e6, 1e6);
  response.stddev = rng.uniform(0.0, 1e3);
  response.batch_size = static_cast<std::size_t>(rng.uniform_int(0, 512));
  response.config = rafiki::engine::Config::from_key_vector(
      {rng.uniform(0.0, 4.0), rng.uniform(0.0, 256.0), rng.uniform(0.0, 1024.0),
       rng.uniform(0.0, 64.0), rng.uniform(0.0, 2.0)});
  response.predicted_throughput = rng.uniform(0.0, 1e6);
  response.reconfigured = rng.bernoulli(0.5);
  response.stale = rng.bernoulli(0.25);
  response.surrogate_evaluations = static_cast<std::size_t>(rng.uniform_int(0, 10000));
  return response;
}

std::vector<std::uint8_t> random_valid_frame(Rng& rng) {
  std::vector<std::uint8_t> bytes;
  const std::uint64_t id = rng.next_u64();
  // 1-in-4 frames speak the legacy v1 dialect, so the version-bump decode
  // path (20-byte header, implicit tenant 0) sees constant fuzz pressure.
  const std::uint8_t version = rng.bernoulli(0.25) ? 1 : kProtocolVersion;
  const auto tenant = static_cast<rafiki::serve::TenantId>(rng.next_u64());
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      rafiki::serve::Request request = random_request(rng);
      rafiki::net::encode_request(id, request, bytes, version);
      break;
    }
    case 1:
      rafiki::net::encode_response(
          id,
          static_cast<rafiki::serve::Endpoint>(rng.uniform_int(
              0, static_cast<std::int64_t>(rafiki::serve::kEndpointCount) - 1)),
          random_response(rng), bytes, tenant, version);
      break;
    default:
      rafiki::net::encode_error(
          id,
          static_cast<rafiki::net::WireError>(rng.uniform_int(
              0, static_cast<std::int64_t>(rafiki::net::kWireErrorCount) - 1)),
          bytes, tenant, version);
      break;
  }
  return bytes;
}

std::vector<std::uint8_t> generate_input(Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // valid frame, possibly truncated (exercises kNeedMore)
      std::vector<std::uint8_t> bytes = random_valid_frame(rng);
      if (rng.bernoulli(0.5) && !bytes.empty()) {
        bytes.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()))));
      }
      return bytes;
    }
    case 1: {  // valid frame with byte flips (exercises every reject branch)
      std::vector<std::uint8_t> bytes = random_valid_frame(rng);
      const std::int64_t flips = rng.uniform_int(1, 8);
      for (std::int64_t i = 0; i < flips && !bytes.empty(); ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
        bytes[pos] = static_cast<std::uint8_t>(bytes[pos] ^ rng.uniform_int(1, 255));
      }
      return bytes;
    }
    case 2: {  // two frames back to back (pipelined stream prefix)
      std::vector<std::uint8_t> bytes = random_valid_frame(rng);
      const std::vector<std::uint8_t> second = random_valid_frame(rng);
      bytes.insert(bytes.end(), second.begin(), second.end());
      return bytes;
    }
    default: {  // pure noise
      std::vector<std::uint8_t> bytes(
          static_cast<std::size_t>(rng.uniform_int(0, 128)));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      return bytes;
    }
  }
}

int replay_corpus(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "wire_fuzz: corpus dir %s not found\n", dir.string().c_str());
    return 1;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // directory order is not deterministic
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(raw.data()),
                           raw.size());
  }
  std::printf("wire_fuzz: replayed %zu corpus file(s) from %s\n", files.size(),
              dir.string().c_str());
  return 0;
}

int generate_corpus(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  Rng rng(0xC0FFEE);
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> seeds;
  // One well-formed frame of each type (the round-trip tests' happy path) ...
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_request(1, rafiki::serve::Request{}, bytes);
    seeds.emplace_back("seed_request.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_response(2, rafiki::serve::Endpoint::kOptimize,
                                 rafiki::serve::Response{}, bytes);
    seeds.emplace_back("seed_response.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_error(3, rafiki::net::WireError::kBadPayload, bytes);
    seeds.emplace_back("seed_error.bin", bytes);
  }
  // ... a pipelined pair, a truncated header, and headers that poke each
  // fatal branch (bad magic / bad version / oversize length claim).
  {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    const std::vector<std::uint8_t> second = random_valid_frame(rng);
    bytes.insert(bytes.end(), second.begin(), second.end());
    seeds.emplace_back("seed_pipelined.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    bytes.resize(kHeaderSize / 2);
    seeds.emplace_back("seed_truncated.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    bytes[0] = static_cast<std::uint8_t>(bytes[0] ^ 0xFFu);
    seeds.emplace_back("seed_bad_magic.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    bytes[4] = static_cast<std::uint8_t>(bytes[4] ^ 0xFFu);
    seeds.emplace_back("seed_bad_version.bin", bytes);
  }
  {
    // Oversize length claim under a v2 header: payload_len lives at offset
    // 20 (offset 16 is the tenant field in RKF2).
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_request(10, rafiki::serve::Request{}, bytes);
    bytes[20] = 0xFF;
    bytes[21] = 0xFF;
    bytes[22] = 0xFF;
    bytes[23] = 0x7F;
    seeds.emplace_back("seed_oversize_claim.bin", bytes);
  }
  // Version-bump coverage: well-formed v1 frames of each type, a v1
  // oversize claim (payload_len at offset 16 in the short header), a v2
  // frame with the extreme tenant id, and a mixed-dialect pipelined pair.
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_request(11, rafiki::serve::Request{}, bytes, /*version=*/1);
    seeds.emplace_back("seed_v1_request.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_response(12, rafiki::serve::Endpoint::kPredict,
                                 rafiki::serve::Response{}, bytes, /*tenant=*/0,
                                 /*version=*/1);
    seeds.emplace_back("seed_v1_response.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_error(13, rafiki::net::WireError::kBadFrame, bytes,
                              /*tenant=*/0, /*version=*/1);
    seeds.emplace_back("seed_v1_error.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_request(14, rafiki::serve::Request{}, bytes, /*version=*/1);
    bytes[16] = 0xFF;
    bytes[17] = 0xFF;
    bytes[18] = 0xFF;
    bytes[19] = 0x7F;
    seeds.emplace_back("seed_v1_oversize_claim.bin", bytes);
  }
  {
    rafiki::serve::Request request;
    request.tenant = 0xFFFFFFFFu;
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_request(15, request, bytes);
    seeds.emplace_back("seed_tenant_extreme.bin", bytes);
  }
  {
    std::vector<std::uint8_t> bytes;
    rafiki::net::encode_request(16, rafiki::serve::Request{}, bytes, /*version=*/1);
    rafiki::serve::Request second;
    second.tenant = 42;
    rafiki::net::encode_request(17, second, bytes);
    seeds.emplace_back("seed_mixed_versions.bin", bytes);
  }
  for (const auto& [name, bytes] : seeds) {
    std::ofstream out(dir / name, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  std::printf("wire_fuzz: wrote %zu seed(s) to %s\n", seeds.size(),
              dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 20000;
  std::uint64_t seed = 42;
  std::string corpus;
  std::string gen_corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--iters" && has_value) {
      iters = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && has_value) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--corpus" && has_value) {
      corpus = argv[++i];
    } else if (arg == "--gen-corpus" && has_value) {
      gen_corpus = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: wire_fuzz [--iters N] [--seed S] [--corpus DIR] "
                   "[--gen-corpus DIR]\n");
      return 2;
    }
  }
  if (!gen_corpus.empty()) return generate_corpus(gen_corpus);
  if (!corpus.empty()) {
    const int rc = replay_corpus(corpus);
    if (rc != 0) return rc;
  }
  Rng rng(seed);
  for (std::size_t i = 0; i < iters; ++i) {
    const std::vector<std::uint8_t> input = generate_input(rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("wire_fuzz: %zu seeded iteration(s) clean (seed %llu)\n", iters,
              static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // !RAFIKI_FUZZ_LIBFUZZER
