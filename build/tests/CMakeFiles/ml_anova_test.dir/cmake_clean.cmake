file(REMOVE_RECURSE
  "CMakeFiles/ml_anova_test.dir/ml_anova_test.cpp.o"
  "CMakeFiles/ml_anova_test.dir/ml_anova_test.cpp.o.d"
  "ml_anova_test"
  "ml_anova_test.pdb"
  "ml_anova_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_anova_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
