// One-way analysis of variance, used for important-parameter identification
// (Section 3.4): each parameter is varied alone, the throughput samples per
// level form the groups, and parameters are ranked by how much the mean
// throughput varies across levels.
#pragma once

#include <string>
#include <vector>

namespace rafiki::ml {

struct OneWayAnovaResult {
  double f_statistic = 0.0;
  double p_value = 1.0;
  double between_mean_square = 0.0;
  double within_mean_square = 0.0;
  std::size_t df_between = 0;
  std::size_t df_within = 0;
};

/// Standard one-way ANOVA over >= 2 groups (each a vector of replicated
/// measurements at one parameter level).
OneWayAnovaResult one_way_anova(const std::vector<std::vector<double>>& groups);

/// The paper's ranking score: the standard deviation of the per-level mean
/// throughputs ("standard deviation in throughput", Figure 5).
double level_mean_stddev(const std::vector<std::vector<double>>& groups);

/// Regularized incomplete beta function I_x(a, b) (continued fraction),
/// exposed because the F-distribution tail needs it and tests verify it.
double regularized_incomplete_beta(double a, double b, double x);

/// Upper-tail probability of an F(df1, df2) variate exceeding f.
double f_distribution_sf(double f, double df1, double df2);

/// One ranked entry of the ANOVA screen.
struct AnovaRanking {
  std::string name;
  double score = 0.0;    ///< level-mean standard deviation
  double f_statistic = 0.0;
  double p_value = 1.0;
};

/// Picks k using the paper's "distinct drop" heuristic: the cut point with
/// the largest ratio between consecutive scores in the sorted ranking
/// (bounded to [min_k, max_k]).
std::size_t distinct_drop_cutoff(const std::vector<AnovaRanking>& sorted_ranking,
                                 std::size_t min_k = 2, std::size_t max_k = 8);

}  // namespace rafiki::ml
