file(REMOVE_RECURSE
  "librafiki_ml.a"
)
