#include "core/reconfigure.h"

#include <algorithm>

namespace rafiki::core {
namespace {

ReconfigOutcome finalize(std::vector<CapacitySegment> timeline, double steady_ops_per_s) {
  ReconfigOutcome outcome;
  outcome.timeline = std::move(timeline);
  for (const auto& segment : outcome.timeline) {
    outcome.duration_s = std::max(outcome.duration_s, segment.end_s);
    outcome.min_relative_capacity =
        std::min(outcome.min_relative_capacity, segment.relative_capacity);
    outcome.ops_lost += (segment.end_s - segment.begin_s) *
                        (1.0 - segment.relative_capacity) * steady_ops_per_s;
  }
  return outcome;
}

}  // namespace

namespace {

/// Fraction of offered load served when `available` peak capacity remains
/// and the cluster normally runs at `utilization` of peak.
double served_fraction(double available_capacity, double utilization) {
  if (utilization <= 0.0) return 1.0;
  return std::min(1.0, available_capacity / utilization);
}

}  // namespace

ReconfigOutcome plan_full_restart(int nodes, double steady_ops_per_s,
                                  const ReconfigModel& model) {
  nodes = std::max(1, nodes);
  std::vector<CapacitySegment> timeline;
  // Outage while every node restarts...
  timeline.push_back({0.0, model.restart_s, 0.0});
  // ...then the whole cluster warms simultaneously.
  timeline.push_back({model.restart_s, model.restart_s + model.cache_warm_s,
                      served_fraction(1.0 - model.warm_penalty,
                                      model.offered_utilization)});
  return finalize(std::move(timeline), steady_ops_per_s);
}

ReconfigOutcome plan_rolling_restart(int nodes, double steady_ops_per_s,
                                     const ReconfigModel& model) {
  nodes = std::max(1, nodes);
  if (nodes == 1) return plan_full_restart(1, steady_ops_per_s, model);

  const auto n = static_cast<double>(nodes);
  std::vector<CapacitySegment> timeline;
  double t = 0.0;
  for (int i = 0; i < nodes; ++i) {
    // One node down: survivors absorb its share up to their headroom.
    timeline.push_back({t, t + model.restart_s,
                        served_fraction((n - 1.0) / n, model.offered_utilization)});
    t += model.restart_s;
    // The node rejoins cold: full membership minus the warming node's
    // penalty. Warm-up overlaps the next node's restart in practice;
    // modelled sequentially for a conservative (upper) bound on duration.
    timeline.push_back({t, t + model.cache_warm_s,
                        served_fraction(1.0 - model.warm_penalty / n,
                                        model.offered_utilization)});
    t += model.cache_warm_s;
  }
  return finalize(std::move(timeline), steady_ops_per_s);
}

bool reconfiguration_pays_off(double current_ops_per_s, double tuned_ops_per_s,
                              double horizon_s, const ReconfigOutcome& plan) {
  const double gain_per_s = tuned_ops_per_s - current_ops_per_s;
  if (gain_per_s <= 0.0) return false;
  const double usable_horizon = std::max(0.0, horizon_s - plan.duration_s);
  return gain_per_s * usable_horizon > plan.ops_lost;
}

}  // namespace rafiki::core
