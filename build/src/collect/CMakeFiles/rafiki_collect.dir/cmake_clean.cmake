file(REMOVE_RECURSE
  "CMakeFiles/rafiki_collect.dir/dataset.cpp.o"
  "CMakeFiles/rafiki_collect.dir/dataset.cpp.o.d"
  "CMakeFiles/rafiki_collect.dir/runner.cpp.o"
  "CMakeFiles/rafiki_collect.dir/runner.cpp.o.d"
  "librafiki_collect.a"
  "librafiki_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
