# Empty dependencies file for rafiki_core.
# This may be replaced when dependencies are built.
