// Bounded multi-producer/multi-consumer queue with admission control: the
// serve layer's backpressure primitive. A full queue rejects immediately
// (try_push returns kFull -> the service answers Overloaded) instead of
// queuing unboundedly or blocking the producer. Consumers block on a
// condition variable; after close() they drain whatever is still queued and
// then observe std::nullopt. The timed pop exists only for the
// micro-batcher's real-time flush window — nothing a request *returns*
// depends on these waits, so the determinism contract is untouched.
//
// Hot-path discipline (the shard de-scaling fix, DESIGN.md §5d):
//   * try_push takes an rvalue and moves from it ONLY on kOk — a rejected
//     item is handed back intact, so the sharded spill loop can retry the
//     same callback on a sibling shard without ever copying it.
//   * Producers notify AFTER releasing the mutex, and only when a consumer
//     is actually blocked (waiters_ > 0): a hot queue whose consumers are
//     spinning or mid-drain costs zero futex syscalls per push.
//   * Consumers spin briefly on a relaxed size hint before taking the lock
//     (pop/pop_until), so under sustained load they never sleep-wake per
//     request. The spin is disabled on single-hardware-thread machines,
//     where it could only steal cycles from the producer.
//
// The locking discipline is a compile-time contract (util/sync.h): every
// mutable field is GUARDED_BY(mutex_) and take_locked() REQUIRES it, so an
// unlocked access is a build error under the `tsa` preset. The atomic
// hints (size_hint_, closed_hint_, waiters_) are deliberately outside that
// contract: they are advisory, every decision is re-checked under mutex_,
// and the mutex provides the happens-before edge the relaxed loads ride on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <thread>
#include <utility>

#include "util/sync.h"

namespace rafiki::serve {

/// Why a try_push was (not) admitted, decided atomically under the queue
/// lock. A separate closed() probe after a failed push would race with a
/// concurrent close() and misreport a full queue as shutting down.
enum class PushResult : std::uint8_t {
  kOk = 0,
  /// At capacity (and not closed) at the instant of the push.
  kFull,
  /// close() had already happened; no new work is admitted.
  kClosed,
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admission control: enqueues and returns kOk, or reports — without
  /// blocking — why the item was turned away. The reason is decided under
  /// the same lock that rejected the push, so it cannot be contradicted by
  /// a concurrent close(). `item` is moved from ONLY on kOk; on kFull /
  /// kClosed it is left exactly as passed, so callers can retry elsewhere
  /// (the sharded spill path) without copying.
  PushResult try_push(T&& item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
      size_hint_.store(items_.size(), std::memory_order_relaxed);
    }
    // Wake outside the lock, and only when someone is actually blocked: the
    // woken consumer acquires an uncontended mutex, and a spinning/draining
    // consumer costs the producer nothing at all. A consumer only blocks
    // after re-checking emptiness under the lock and bumping waiters_ while
    // holding it, so a push that lands afterwards is guaranteed to observe
    // the incremented count (mutex release/acquire orders the relaxed load).
    if (waiters_.load(std::memory_order_relaxed) > 0) ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    spin_for_hint();
    MutexLock lock(mutex_);
    if (!closed_ && items_.empty()) {
      waiters_.fetch_add(1, std::memory_order_relaxed);
      while (!closed_ && items_.empty()) ready_.wait(mutex_);
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
    return take_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    return take_locked();
  }

  /// Blocks until an item arrives, the queue closes, or `deadline` (real
  /// time) passes — the micro-batcher's flush-window wait. Whatever ended
  /// the wait (arrival, close, or timeout racing an arrival), anything
  /// already queued is still drained: the final take runs under the lock
  /// after the wait loop, so a timeout-adjacent push is returned, not lost.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    spin_for_hint();
    MutexLock lock(mutex_);
    if (!closed_ && items_.empty()) {
      waiters_.fetch_add(1, std::memory_order_relaxed);
      while (!closed_ && items_.empty()) {
        if (ready_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
      }
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
    return take_locked();
  }

  /// Stops admitting; waiting consumers wake, drain the backlog, then see
  /// std::nullopt.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    closed_hint_.store(true, std::memory_order_relaxed);
    // Unconditional: close is rare and must reach every blocked consumer.
    ready_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// Lock-free approximate depth (relaxed; may lag concurrent pushes/pops
  /// by a few items). Telemetry sampling only — admission decisions always
  /// go through try_push's locked check.
  std::size_t approx_size() const noexcept {
    return size_hint_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> take_locked() REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    size_hint_.store(items_.size(), std::memory_order_relaxed);
    return item;
  }

  /// Hybrid spin-then-wait: burn a few dozen PAUSE iterations on the size
  /// hint before paying a mutex + condvar sleep. Under sustained load the
  /// next item lands within the spin window and the consumer never blocks;
  /// on an idle queue the spin bounds the wasted work to ~a microsecond.
  void spin_for_hint() const noexcept {
    for (std::uint32_t i = spin_iterations(); i > 0; --i) {
      if (size_hint_.load(std::memory_order_relaxed) > 0 ||
          closed_hint_.load(std::memory_order_relaxed)) {
        return;
      }
      cpu_relax();
    }
  }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  static std::uint32_t spin_iterations() noexcept {
    // On a single hardware thread the producer cannot make progress while a
    // consumer spins — go straight to the blocking wait there.
    static const std::uint32_t iterations =
        std::thread::hardware_concurrency() > 1 ? 128 : 0;
    return iterations;
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar ready_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  /// Advisory mirrors of the guarded state for the lock-free fast paths;
  /// updated under mutex_, read relaxed (see header comment).
  std::atomic<std::size_t> size_hint_{0};
  std::atomic<bool> closed_hint_{false};
  /// Consumers currently blocked in a condvar wait. Incremented under
  /// mutex_ before the wait releases it, so producers that push later are
  /// ordered after the increment and cannot skip a needed notify.
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace rafiki::serve
