#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "collect/dataset.h"
#include "collect/runner.h"

namespace rafiki::collect {
namespace {

MeasureOptions quick_measure() {
  MeasureOptions options;
  options.ops = 8000;
  options.warmup_ops = 2000;
  options.noise_sd = 0.0;
  return options;
}

TEST(Runner, MeasurementIsDeterministicGivenSeed) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.5);
  spec.initial_keys = 10000;
  const auto a = measure_throughput(engine::Config::defaults(), spec, quick_measure());
  const auto b = measure_throughput(engine::Config::defaults(), spec, quick_measure());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Runner, ScyllaPathUsesScyllaEngine) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.0);
  spec.initial_keys = 10000;
  auto options = quick_measure();
  const double cassandra = measure_throughput(engine::Config::defaults(), spec, options);
  options.scylla = true;
  const double scylla = measure_throughput(engine::Config::defaults(), spec, options);
  EXPECT_GT(scylla, cassandra);  // faster C++ engine on write-heavy
}

TEST(Runner, WarmupChangesStoreState) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.9);
  spec.initial_keys = 10000;
  auto with_warm = quick_measure();
  with_warm.warmup_ops = 10000;  // enough mixed traffic to flush memtables
  auto no_warm = quick_measure();
  no_warm.warmup_ops = 0;
  const auto warm_stats = measure(engine::Config::defaults(), spec, with_warm);
  const auto cold_stats = measure(engine::Config::defaults(), spec, no_warm);
  // Warmup writes flushed additional SSTables into the store.
  EXPECT_GT(warm_stats.final_sstable_count, cold_stats.final_sstable_count);
}

TEST(SampleConfigs, CoversDefaultsAndExtremes) {
  const auto& params = engine::key_params();
  const auto configs = sample_configs(params, 20, 1);
  EXPECT_EQ(configs.size(), 20u);
  EXPECT_EQ(configs.front(), engine::Config::defaults());

  // Every parameter's min and max appears at least once (Section 3.5).
  for (auto id : params) {
    const auto& spec = engine::param_spec(id);
    bool saw_min = false, saw_max = false;
    for (const auto& config : configs) {
      saw_min |= config.get(id) == spec.lo;
      saw_max |= config.get(id) == spec.hi;
    }
    EXPECT_TRUE(saw_min) << engine::param_name(id);
    EXPECT_TRUE(saw_max) << engine::param_name(id);
  }

  // No duplicates.
  std::set<std::string> rendered;
  for (const auto& config : configs) rendered.insert(config.to_string());
  EXPECT_EQ(rendered.size(), configs.size());
}

TEST(SampleConfigs, RandomFillStaysInDomain) {
  const auto& params = engine::key_params();
  for (const auto& config : sample_configs(params, 30, 9)) {
    for (auto id : params) {
      EXPECT_TRUE(engine::param_spec(id).feasible(config.get(id)))
          << engine::param_name(id);
    }
  }
}

TEST(SampleConfigsFocused, FullActiveSetIsBitIdenticalToSampleConfigs) {
  const auto& params = engine::key_params();
  EXPECT_EQ(sample_configs_focused(params, params, 30, 9),
            sample_configs(params, 30, 9));
}

TEST(SampleConfigsFocused, FillVariesOnlyActiveKnobs) {
  std::vector<engine::ParamId> params;
  for (const auto& spec : engine::param_registry()) params.push_back(spec.id);
  const std::vector<engine::ParamId> active = {
      engine::ParamId::kCompactionMethod, engine::ParamId::kConcurrentWrites,
      engine::ParamId::kFileCacheSizeMb};
  // Past the coverage block (default + 2 per param), every fill config must
  // sit on the pinned slice: inactive knobs at defaults, active knobs varied.
  const std::size_t coverage = 1 + 2 * params.size();
  const std::size_t count = coverage + 12;
  const auto configs = sample_configs_focused(params, active, count, 7);
  ASSERT_EQ(configs.size(), count);
  const auto defaults = engine::Config::defaults();
  bool some_active_moved = false;
  for (std::size_t i = coverage; i < configs.size(); ++i) {
    for (auto id : params) {
      const bool is_active =
          std::find(active.begin(), active.end(), id) != active.end();
      if (!is_active) {
        EXPECT_EQ(configs[i].get(id), defaults.get(id)) << engine::param_name(id);
      } else if (configs[i].get(id) != defaults.get(id)) {
        some_active_moved = true;
      }
    }
  }
  EXPECT_TRUE(some_active_moved);

  // The coverage rule still spans the FULL registry, not just the active set.
  for (auto id : params) {
    const auto& spec = engine::param_spec(id);
    bool saw_min = false, saw_max = false;
    for (const auto& config : configs) {
      saw_min |= config.get(id) == spec.lo;
      saw_max |= config.get(id) == spec.hi;
    }
    EXPECT_TRUE(saw_min) << engine::param_name(id);
    EXPECT_TRUE(saw_max) << engine::param_name(id);
  }
}

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CollectOptions options;
    options.measure = quick_measure();
    const auto configs = sample_configs(engine::key_params(), 6, 3);
    workload::WorkloadSpec base;
    base.initial_keys = 10000;
    dataset_ = new Dataset(
        collect_dataset(configs, {0.0, 0.5, 1.0}, base, options));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* DatasetTest::dataset_ = nullptr;

TEST_F(DatasetTest, LatticeIsComplete) {
  EXPECT_EQ(dataset_->size(), 6u * 3u);
  for (const auto& sample : dataset_->samples()) EXPECT_GT(sample.throughput, 0.0);
}

TEST_F(DatasetTest, FeatureMatrixLayout) {
  const auto& params = engine::key_params();
  const auto X = dataset_->feature_matrix(params);
  ASSERT_EQ(X.size(), dataset_->size());
  ASSERT_EQ(X.front().size(), params.size() + 1);
  EXPECT_DOUBLE_EQ(X.front()[0], (*dataset_)[0].workload.read_ratio);
  const auto y = dataset_->targets();
  EXPECT_DOUBLE_EQ(y[0], (*dataset_)[0].throughput);
}

TEST_F(DatasetTest, ConfigSplitSeparatesConfigsCompletely) {
  const auto split = dataset_->split_by_config(0.33, 5);
  EXPECT_EQ(split.train.size() + split.test.size(), dataset_->size());
  std::set<std::string> train_configs, test_configs;
  for (auto i : split.train) train_configs.insert((*dataset_)[i].config.to_string());
  for (auto i : split.test) test_configs.insert((*dataset_)[i].config.to_string());
  for (const auto& config : test_configs) {
    EXPECT_FALSE(train_configs.contains(config));
  }
}

TEST_F(DatasetTest, WorkloadSplitSeparatesReadRatios) {
  const auto split = dataset_->split_by_workload(0.34, 5);
  std::set<double> train_rr, test_rr;
  for (auto i : split.train) train_rr.insert((*dataset_)[i].workload.read_ratio);
  for (auto i : split.test) test_rr.insert((*dataset_)[i].workload.read_ratio);
  for (double rr : test_rr) EXPECT_FALSE(train_rr.contains(rr));
  EXPECT_EQ(test_rr.size(), 1u);
}

TEST_F(DatasetTest, SubsetPreservesOrder) {
  const auto subset = dataset_->subset({0, 2, 4});
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_DOUBLE_EQ(subset[1].throughput, (*dataset_)[2].throughput);
}

TEST_F(DatasetTest, CsvHasHeaderAndAllRows) {
  const auto csv = dataset_->to_csv(engine::key_params());
  EXPECT_NE(csv.find("read_ratio,compaction_method"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            dataset_->size() + 1);
}

TEST_F(DatasetTest, CsvRoundTrips) {
  const auto csv = dataset_->to_csv(engine::key_params());
  const auto parsed = Dataset::from_csv(csv);
  ASSERT_EQ(parsed.size(), dataset_->size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed[i].workload.read_ratio, (*dataset_)[i].workload.read_ratio, 1e-6);
    EXPECT_NEAR(parsed[i].throughput, (*dataset_)[i].throughput, 0.01);
    for (auto id : engine::key_params()) {
      EXPECT_NEAR(parsed[i].config.get(id), (*dataset_)[i].config.get(id), 1e-4)
          << engine::param_name(id);
    }
  }
}

TEST(DatasetCsv, RejectsMalformedInput) {
  EXPECT_THROW(Dataset::from_csv(""), std::invalid_argument);
  EXPECT_THROW(Dataset::from_csv("bogus,header\n"), std::invalid_argument);
  EXPECT_THROW(Dataset::from_csv("read_ratio,no_such_param,throughput\n0.5,1,100\n"),
               std::invalid_argument);
  EXPECT_THROW(
      Dataset::from_csv("read_ratio,compaction_method,throughput\n0.5,xyz,100\n"),
      std::invalid_argument);
  EXPECT_THROW(Dataset::from_csv("read_ratio,compaction_method,throughput\n0.5,1\n"),
               std::invalid_argument);
}

TEST(CollectDataset, FaultRateDropsSamples) {
  CollectOptions options;
  options.measure = quick_measure();
  options.measure.ops = 3000;
  options.measure.warmup_ops = 0;
  options.fault_rate = 0.5;
  options.seed = 11;
  const auto configs = sample_configs(engine::key_params(), 4, 3);
  workload::WorkloadSpec base;
  base.initial_keys = 5000;
  const auto dataset = collect_dataset(configs, {0.0, 0.5, 1.0}, base, options);
  EXPECT_LT(dataset.size(), 12u);
  EXPECT_GT(dataset.size(), 0u);
}

}  // namespace
}  // namespace rafiki::collect
