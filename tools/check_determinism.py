#!/usr/bin/env python3
"""Custom determinism lint for the Rafiki tree.

Rafiki's headline numbers (throughput gain, prediction error, GA-vs-exhaustive
gap) are only trustworthy if the simulator, surrogate training, and GA search
are bit-for-bit reproducible from a seed. This pass bans the C++ constructs
that silently break that contract. The full rule specification, rationale, and
suppression syntax live in tools/lint_rules.md.

Rules (ids used in findings and det:ok() suppressions):
  c-rand          rand() / srand() / random()  — global-state C PRNG
  random-device   std::random_device           — hardware entropy
  mt19937         std::mt19937 / std::mt19937_64 and <random> engines
                  (seeded or not) — all randomness must flow through
                  rafiki::Rng (src/util/rng.h)
  wall-clock      time() / clock() / clock_gettime() / timespec_get() /
                  gettimeofday / localtime / gmtime /
                  std::chrono::*_clock::now() — wall-clock reads
  thread-id       std::this_thread::get_id() — thread ids differ run to run;
                  never key results, seeds, or ordering on them
  unordered-iter  range-for over a std::unordered_{map,set} in a result path —
                  iteration order is implementation-defined
  wire-memcpy     memcpy in src/net/ — the wire codec serializes byte-wise
                  with explicit little-endian helpers; struct layout is not
                  the wire format (path-scoped rule)

Concurrency-contract rules (same suppression syntax):
  memory-order    atomic load/store/RMW without an explicit std::memory_order
                  argument under src/serve/, src/net/, src/tenant/ or
                  src/tune/ — the bare seq_cst
                  default hides the intended ordering from reviewers and from
                  the registry/stats visibility audits. Named constexpr
                  aliases (kRelaxed, kAcquire, ...) count as explicit.
                  (path-scoped rule)
  tsa-justification  NO_THREAD_SAFETY_ANALYSIS without a `// tsa:ok: <reason>`
                  comment on the same line or the line above — escaping the
                  Clang capability analysis must be justified in place
                  (src/util/sync.h, which defines the macro, is exempt)

Suppress a finding by annotating the offending line (or the line directly
above it) with:  // det:ok(<rule-id>): <reason>

Exit status: 0 when the tree is clean, 1 when findings exist, 2 on usage
errors. `--selftest` checks the scanner itself against known-bad snippets.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".cpp", ".h", ".hpp", ".cc"}
# The one sanctioned randomness implementation.
EXEMPT_FILES = {Path("src/util/rng.h")}

SUPPRESS_RE = re.compile(r"//\s*det:ok\((?P<rules>[a-z0-9_,\- ]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")

# rule id -> (regex, message)
PATTERN_RULES = {
    "c-rand": (
        re.compile(r"(?<![A-Za-z0-9_])s?rand(om)?\s*\("),
        "C PRNG (rand/srand/random) uses hidden global state; draw from rafiki::Rng",
    ),
    "random-device": (
        re.compile(r"std::random_device"),
        "std::random_device is nondeterministic hardware entropy; seed rafiki::Rng explicitly",
    ),
    "mt19937": (
        re.compile(
            r"std::(mt19937(_64)?|minstd_rand0?|ranlux(24|48)(_base)?|"
            r"knuth_b|default_random_engine)"
        ),
        "<random> engines are banned; all stochastic code draws from rafiki::Rng",
    ),
    "wall-clock": (
        re.compile(
            r"(?<![A-Za-z0-9_])(clock_gettime|timespec_get|time|clock|gettimeofday|"
            r"localtime|gmtime)\s*\(|"
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)::now"
        ),
        "wall-clock read; results must not depend on real time "
        "(annotate det:ok(wall-clock) if reporting-only)",
    ),
    "thread-id": (
        re.compile(r"std::this_thread::get_id\s*\("),
        "thread ids differ run to run; never key results, seeds, or ordering on them",
    ),
}

# Path-scoped rules: rule id -> (path prefix, regex, message). These fire only
# in files whose repo-relative path starts with the prefix.
PATH_PATTERN_RULES = {
    "wire-memcpy": (
        "src/net/",
        re.compile(r"(?<![A-Za-z0-9_])(?:std::)?memcpy\s*\("),
        "wire codec must serialize byte-wise via explicit little-endian helpers; "
        "memcpy of in-memory values bakes host layout into the wire format",
    ),
}

# --- memory-order rule ------------------------------------------------------
# Member calls on std::atomic that take an optional std::memory_order. Bare
# calls default to seq_cst, which both over-synchronizes and — worse — hides
# whether the author *thought* about the required ordering. Scoped to the
# concurrent serving stack plus the online tuning layer (whose screen state
# is shared with request threads); the offline math code has no atomics to
# audit.
MEMORY_ORDER_PREFIXES = ("src/serve/", "src/net/", "src/tenant/", "src/tune/")
ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?P<op>load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
# An explicit order is either the std token or one of the codebase's named
# constexpr aliases (e.g. `constexpr auto kRelaxed = std::memory_order_relaxed`).
EXPLICIT_ORDER_RE = re.compile(
    r"memory_order|(?<![A-Za-z0-9_])k(Relaxed|Consume|Acquire|Release|AcqRel|SeqCst)"
    r"(?![A-Za-z0-9_])"
)
# How many continuation lines to gather while balancing the call's parens.
ATOMIC_CALL_MAX_SPAN = 8

# --- tsa-justification rule -------------------------------------------------
# Every escape hatch from the Clang thread-safety analysis must say why, right
# where it is used. The macro's own definition site is exempt.
TSA_ESCAPE_RE = re.compile(r"(?<![A-Za-z0-9_])NO_THREAD_SAFETY_ANALYSIS(?![A-Za-z0-9_])")
TSA_JUSTIFY_RE = re.compile(r"//\s*tsa:ok:\s*\S")
TSA_EXEMPT_FILES = {Path("src/util/sync.h")}

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;({=]"
)
# Anchored form handles call expressions (`: obj.rows()) {`); the fallback
# covers single-line loop bodies (`for (auto k : m) use(k);`).
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*(?P<expr>.+?)\)\s*\{?\s*$")
RANGE_FOR_FALLBACK_RE = re.compile(r"for\s*\(.*?:\s*(?P<expr>[^)]+)\)")
# Accessors known (from this codebase) to expose an unordered container.
UNORDERED_ACCESSORS = (".rows()",)


def strip_strings(line: str) -> str:
    """Blank out string/char literals so patterns inside them don't fire."""
    return re.sub(r'"(\\.|[^"\\])*"|\'(\\.|[^\'\\])*\'', '""', line)


def suppressed_rules(lines: list[str], idx: int) -> set[str]:
    rules: set[str] = set()
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = SUPPRESS_RE.search(lines[i])
            if m:
                rules.update(r.strip() for r in m.group("rules").split(","))
    return rules


def gather_call_args(code_lines: list[str], idx: int, start: int) -> str | None:
    """Collect the argument text of a call whose open paren is at
    code_lines[idx][start - 1], balancing parens across up to
    ATOMIC_CALL_MAX_SPAN lines. Returns None if the call never closes in that
    window (treated as no-finding rather than a guess)."""
    depth = 1
    parts: list[str] = []
    pos = start
    for i in range(idx, min(idx + ATOMIC_CALL_MAX_SPAN, len(code_lines))):
        segment = code_lines[i][pos:] if i == idx else code_lines[i]
        for j, ch in enumerate(segment):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    parts.append(segment[:j])
                    return "".join(parts)
        parts.append(segment)
        pos = 0
    return None


def scan_file(path: Path, rel: Path) -> list[tuple[Path, int, str, str]]:
    findings = []
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError as err:
        print(f"warning: cannot read {path}: {err}", file=sys.stderr)
        return []

    unordered_names: set[str] = set()
    for line in lines:
        code = strip_strings(LINE_COMMENT_RE.sub("", line))
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    # Comment/string-stripped view of every line, for multi-line arg gathering.
    code_lines = [strip_strings(LINE_COMMENT_RE.sub("", line)) for line in lines]
    memory_order_scoped = rel.as_posix().startswith(MEMORY_ORDER_PREFIXES)

    for idx, raw in enumerate(lines):
        code = strip_strings(LINE_COMMENT_RE.sub("", raw))
        if not code.strip():
            continue
        allowed = suppressed_rules(lines, idx)
        for rule, (pattern, message) in PATTERN_RULES.items():
            if rule not in allowed and pattern.search(code):
                findings.append((rel, idx + 1, rule, message))
        for rule, (prefix, pattern, message) in PATH_PATTERN_RULES.items():
            if (
                rule not in allowed
                and rel.as_posix().startswith(prefix)
                and pattern.search(code)
            ):
                findings.append((rel, idx + 1, rule, message))
        if memory_order_scoped and "memory-order" not in allowed:
            for m in ATOMIC_CALL_RE.finditer(code):
                args = gather_call_args(code_lines, idx, m.end())
                if args is not None and not EXPLICIT_ORDER_RE.search(args):
                    findings.append(
                        (
                            rel,
                            idx + 1,
                            "memory-order",
                            f"atomic {m.group('op')}() without an explicit "
                            "std::memory_order; the bare seq_cst default hides "
                            "the intended ordering — state it (or a kRelaxed-"
                            "style alias), or annotate det:ok(memory-order)",
                        )
                    )
        if (
            "tsa-justification" not in allowed
            and rel not in TSA_EXEMPT_FILES
            and TSA_ESCAPE_RE.search(code)
        ):
            justified = any(
                0 <= i < len(lines) and TSA_JUSTIFY_RE.search(lines[i])
                for i in (idx, idx - 1)
            )
            if not justified:
                findings.append(
                    (
                        rel,
                        idx + 1,
                        "tsa-justification",
                        "NO_THREAD_SAFETY_ANALYSIS requires a `// tsa:ok: "
                        "<reason>` comment on this line or the line above",
                    )
                )
        if "unordered-iter" not in allowed:
            m = RANGE_FOR_RE.search(code) or RANGE_FOR_FALLBACK_RE.search(code)
            if m:
                expr = m.group("expr").strip()
                hit = any(a in expr for a in UNORDERED_ACCESSORS) or any(
                    re.search(rf"(?<![A-Za-z0-9_]){re.escape(n)}(?![A-Za-z0-9_])", expr)
                    for n in unordered_names
                )
                if hit:
                    findings.append(
                        (
                            rel,
                            idx + 1,
                            "unordered-iter",
                            "iteration order of unordered containers is "
                            "implementation-defined; sort first, or annotate "
                            "det:ok(unordered-iter) when the sink is order-insensitive",
                        )
                    )
    return findings


def scan_tree(root: Path) -> list[tuple[Path, int, str, str]]:
    findings = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS:
                continue
            rel = path.relative_to(root)
            if rel in EXEMPT_FILES:
                continue
            findings.extend(scan_file(path, rel))
    return findings


SELFTEST_BAD = """\
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>
#include <unordered_map>
void bad() {
  int a = rand();
  srand(42);
  std::random_device rd;
  std::mt19937 gen(rd());
  std::mt19937 unseeded;
  long t = time(nullptr);
  timespec ts;
  timespec_get(&ts, TIME_UTC);
  clock_gettime(CLOCK_MONOTONIC, &ts);
  auto now = std::chrono::steady_clock::now();
  auto tid = std::this_thread::get_id();
  std::unordered_map<int, double> acc;
  double sum = 0.0;
  for (const auto& [k, v] : acc) sum += v;  // order-dependent accumulation
}
"""

SELFTEST_CLEAN = """\
#include "util/rng.h"
#include <cstring>
#include <unordered_map>
double good(rafiki::Rng& rng) {
  // det:ok(wall-clock): reporting-only example
  auto t0 = std::chrono::steady_clock::now();
  double runtime = advance_time(acc);  // suffix match must not fire wall-clock
  std::memcpy(dst, srcbuf, n);  // memcpy outside src/net/ is allowed
  std::unordered_map<int, double> acc2;
  // det:ok(unordered-iter): sink is order-insensitive (sorted downstream)
  for (const auto& [k, v] : acc2) keys.push_back(k);
  return rng.uniform() + runtime;
}
"""

SELFTEST_WIRE_BAD = """\
#include <cstring>
void encode(std::uint8_t* out, double v) {
  std::memcpy(out, &v, sizeof v);  // host layout leaks onto the wire
}
"""

SELFTEST_WIRE_CLEAN = """\
#include <cstdint>
void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v & 0xff);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}
"""

SELFTEST_SERVE_BAD = """\
#include <atomic>
void hot(std::atomic<int>& a, std::atomic<bool>& flag) {
  int v = a.load();                       // bare seq_cst default
  flag.store(true);                       // bare seq_cst default
  a.fetch_add(
      1);                                 // multi-line call, still bare
  int expected = v;
  a.compare_exchange_weak(expected, v + 1);
  NO_THREAD_SAFETY_ANALYSIS               // no justification comment
}
"""

SELFTEST_SERVE_CLEAN = """\
#include <atomic>
constexpr auto kRelaxed = std::memory_order_relaxed;
void hot(std::atomic<int>& a, std::atomic<bool>& flag) {
  int v = a.load(std::memory_order_acquire);
  flag.store(true, std::memory_order_release);
  a.fetch_add(
      1, kRelaxed);                       // named alias counts as explicit
  // det:ok(memory-order): example of a reviewed seq_cst site
  a.fetch_sub(1);
  overloaded.store(v);                    // det:ok(memory-order): reviewed
  // tsa:ok: example justification on the line above
  NO_THREAD_SAFETY_ANALYSIS
  NO_THREAD_SAFETY_ANALYSIS  // tsa:ok: same-line justification also accepted
}
"""


SELFTEST_NET_WAKER_BAD = """\
#include <atomic>
// Mirrors the src/net/ poller Waker: the pending-flag handshake between
// wake() and drain() is exactly the kind of cross-thread edge the
// memory-order rule exists to audit.
struct Waker {
  std::atomic<bool> pending{false};
  void wake() {
    if (!pending.exchange(true)) ring();  // bare seq_cst RMW on the wake edge
  }
  void drain() {
    pending.store(false);                 // bare seq_cst store after fd drain
  }
  bool armed() { return pending.load(); } // bare seq_cst load
  void ring();
};
"""

SELFTEST_NET_WAKER_CLEAN = """\
#include <atomic>
struct Waker {
  std::atomic<bool> pending{false};
  void wake() {
    // acq_rel: the winning wake must publish pre-wake writes to the drainer,
    // and the drainer's store must be visible to the next winning exchange.
    if (!pending.exchange(true, std::memory_order_acq_rel)) ring();
  }
  void drain() { pending.store(false, std::memory_order_release); }
  bool armed() { return pending.load(std::memory_order_acquire); }
  void ring();
};
"""


def selftest() -> int:
    expected = {"c-rand", "random-device", "mt19937", "wall-clock", "thread-id",
                "unordered-iter", "wire-memcpy", "memory-order", "tsa-justification"}
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src" / "net").mkdir(parents=True)
        (root / "src" / "serve").mkdir(parents=True)
        (root / "src" / "tune").mkdir(parents=True)
        (root / "src" / "bad.cpp").write_text(SELFTEST_BAD)
        (root / "src" / "net" / "codec.cpp").write_text(SELFTEST_WIRE_BAD)
        # src/net/ is memory-order scoped: the waker's bare atomic handshake
        # (exchange/store/load on the pending flag) must fire there.
        (root / "src" / "net" / "waker.cpp").write_text(SELFTEST_NET_WAKER_BAD)
        (root / "src" / "serve" / "hot.cpp").write_text(SELFTEST_SERVE_BAD)
        # src/tune/ is memory-order scoped too: the same bare atomics must
        # fire there (fixture shares the serve snippet).
        (root / "src" / "tune" / "screen.cpp").write_text(SELFTEST_SERVE_BAD)
        # The identical atomic calls outside src/serve+src/net must not fire;
        # NO_THREAD_SAFETY_ANALYSIS is checked everywhere (one more expected).
        (root / "src" / "outside.cpp").write_text(SELFTEST_SERVE_BAD)
        bad_findings = scan_tree(root)
        fired = {rule for (_, _, rule, _) in bad_findings}
        missing = expected - fired
        if missing:
            print(f"selftest FAILED: rules did not fire on bad input: {sorted(missing)}")
            return 1
        # Path scoping: the same construct outside its scoped prefix must not
        # fire (memcpy outside src/net/, bare atomics outside serve/net).
        for rule, prefixes in (("wire-memcpy", ("src/net/",)),
                               ("memory-order", MEMORY_ORDER_PREFIXES)):
            outside = [f for f in bad_findings
                       if f[2] == rule and not f[0].as_posix().startswith(prefixes)]
            if outside:
                print(f"selftest FAILED: {rule} fired outside {prefixes}")
                return 1
        # load, store, multi-line fetch_add, CAS in the serve/tune fixtures;
        # exchange, store, load in the waker fixture.
        for scoped, want in (("src/serve/hot.cpp", 4), ("src/tune/screen.cpp", 4),
                             ("src/net/waker.cpp", 3)):
            bare = [f for f in bad_findings
                    if f[2] == "memory-order" and f[0].as_posix() == scoped]
            if len(bare) != want:
                print(f"selftest FAILED: expected {want} memory-order findings "
                      f"in {scoped}, got {len(bare)}")
                return 1
        (root / "src" / "bad.cpp").write_text(SELFTEST_CLEAN)
        (root / "src" / "net" / "codec.cpp").write_text(SELFTEST_WIRE_CLEAN)
        (root / "src" / "net" / "waker.cpp").write_text(SELFTEST_NET_WAKER_CLEAN)
        (root / "src" / "serve" / "hot.cpp").write_text(SELFTEST_SERVE_CLEAN)
        (root / "src" / "tune" / "screen.cpp").write_text(SELFTEST_SERVE_CLEAN)
        (root / "src" / "outside.cpp").unlink()
        clean_findings = scan_tree(root)
        if clean_findings:
            for rel, lineno, rule, _ in clean_findings:
                print(f"selftest FAILED: false positive {rel}:{lineno} [{rule}]")
            return 1
    print(f"selftest ok: all {len(expected)} rules fire on violations, clean code passes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files or directories (default: repo tree)")
    parser.add_argument("--root", default=None, help="repo root (default: parent of tools/)")
    parser.add_argument("--selftest", action="store_true", help="verify the scanner itself")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    if args.paths:
        findings = []
        for p in args.paths:
            path = Path(p).resolve()
            if path.is_dir():
                for f in sorted(path.rglob("*")):
                    if f.suffix in EXTENSIONS:
                        findings.extend(scan_file(f, f.relative_to(root)))
            elif path.suffix in EXTENSIONS:
                findings.extend(scan_file(path, path.relative_to(root)))
    else:
        findings = scan_tree(root)

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"\n{len(findings)} determinism finding(s). See tools/lint_rules.md.")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
