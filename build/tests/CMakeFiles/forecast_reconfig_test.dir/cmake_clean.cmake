file(REMOVE_RECURSE
  "CMakeFiles/forecast_reconfig_test.dir/forecast_reconfig_test.cpp.o"
  "CMakeFiles/forecast_reconfig_test.dir/forecast_reconfig_test.cpp.o.d"
  "forecast_reconfig_test"
  "forecast_reconfig_test.pdb"
  "forecast_reconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_reconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
