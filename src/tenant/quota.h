// Per-tenant admission quota: a token bucket for sustained request rate plus
// an in-flight cap for concurrency, both mapping to the wire's typed
// kOverloaded verdict. The quota is the fleet's noisy-neighbour firewall —
// one tenant saturating its budget is rejected at fleet admission, before it
// can occupy a shard queue slot a well-behaved tenant needs.
//
// The token bucket runs on an injectable microsecond clock so tests drive
// refill deterministically; the default clock is the steady clock, which is
// the one deliberate wall-clock dependency in this subsystem (admission rate
// limiting is real-time by definition; no request *result* depends on it —
// only whether the request is admitted at all, exactly like queue-full
// Overloaded verdicts in the serve layer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/sync.h"

namespace rafiki::tenant {

struct QuotaOptions {
  /// Sustained admission rate in requests/second. 0 (the default) disables
  /// rate limiting entirely — the bucket always has a token.
  double rate_per_s = 0.0;
  /// Bucket capacity (burst size) in requests. 0 defaults to rate_per_s
  /// (one second of burst); ignored when rate limiting is disabled.
  double burst = 0.0;
  /// Maximum concurrently in-flight requests (admitted but not yet
  /// completed). 0 (the default) disables the cap.
  std::size_t max_in_flight = 0;
  /// Microsecond clock for token refill. Tests inject an atomic counter for
  /// deterministic refill; unset uses the steady clock (see file comment).
  std::function<std::uint64_t()> clock_us;
};

/// Thread-safe admission quota for one tenant. The token bucket is mutex
/// protected (refill arithmetic is a read-modify-write over two fields); the
/// in-flight count is a lock-free atomic because begin/end run on the
/// request hot path of every admitted request.
class TenantQuota {
 public:
  explicit TenantQuota(QuotaOptions options = {});

  TenantQuota(const TenantQuota&) = delete;
  TenantQuota& operator=(const TenantQuota&) = delete;

  /// Takes one token from the bucket. Returns false (caller rejects with
  /// kOverloaded) when the tenant has exhausted its rate budget; always true
  /// when rate limiting is disabled.
  bool try_acquire_token();

  /// Claims an in-flight slot. Returns false (caller rejects with
  /// kOverloaded) when the tenant is already at max_in_flight. A true return
  /// MUST be paired with exactly one end_request() when the request
  /// completes — the fleet wraps the response callback to guarantee this.
  bool begin_request();
  /// Releases the slot claimed by a successful begin_request().
  void end_request();

  /// Currently claimed in-flight slots (telemetry; racy by nature).
  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Current token count, refilled to now (telemetry / tests).
  double tokens();

  const QuotaOptions& options() const noexcept { return options_; }

 private:
  std::uint64_t now_us() const;
  void refill_locked(std::uint64_t now) REQUIRES(mutex_);

  QuotaOptions options_;
  Mutex mutex_;
  double tokens_ GUARDED_BY(mutex_) = 0.0;
  std::uint64_t last_refill_us_ GUARDED_BY(mutex_) = 0;
  bool primed_ GUARDED_BY(mutex_) = false;
  /// In-flight count. Pure admission gate, not a synchronization edge: the
  /// increment-check-undo in begin_request() is exact (fetch_add returns the
  /// previous value, so concurrent claimers never double-admit past the
  /// cap), and relaxed ordering suffices because nothing is published
  /// through this counter — the request handoff that follows admission has
  /// its own happens-before edges (queue mutex).
  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace rafiki::tenant
