file(REMOVE_RECURSE
  "CMakeFiles/table2_prediction.dir/table2_prediction.cpp.o"
  "CMakeFiles/table2_prediction.dir/table2_prediction.cpp.o.d"
  "table2_prediction"
  "table2_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
