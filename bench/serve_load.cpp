// Closed-loop load benchmark for the serving layer (the ROADMAP's
// "production-scale serving" north star):
//
//   A. Microbenchmark — single-row Rafiki::predict vs the batched
//      predict_batch kernel at several batch sizes. The acceptance bar is
//      batch >= 32 reaching >= 4x single-row throughput (same hardware,
//      bit-identical results).
//   B. Service load — concurrent closed-loop clients against the serving
//      backend across a {clients} x {max_batch} grid: QPS, p50/p99 latency
//      and the realized micro-batch size. `--shards N` runs the grid through
//      the ShardedTuningService router instead of a single service.
//   C. Snapshot swap under load — republish fresh model versions while
//      clients hammer Predict; the bar is zero failed or blocked requests.
//   D. Regime changes in the closed loop — clients mix ObserveWindow calls
//      (cycling through read-ratio regimes, so the tuner keeps missing its
//      memo cache) into the Predict stream. With the async RetrainWorker,
//      every miss is answered immediately with a stale-marked config while
//      the GA runs in the background and republishes; the bars are zero
//      failures, stale-marked cache misses, tuned configs appearing in later
//      snapshot versions, and (without sanitizers) ObserveWindow p99 far
//      below the mean background-retrain latency — proof the request path
//      no longer absorbs optimizer spikes.
//   E. Shard scaling — a callback closed loop (1 / 64 / 256 logical clients,
//      zero client threads; max_batch = 1) against shards in {1, 2, 4, 8}
//      after an untimed route warm-up, with per-shard request / worker-CPU /
//      queue-depth accounting, plus a bit-parity sweep proving the sharded
//      router returns exactly the unsharded (and scalar) predictions. The
//      bar (on >= 8 hardware threads): no shard count below 0.9x unsharded
//      64-client QPS, and — full profile — 4 shards >= 3x unsharded.
//   F. Rebalance under fire — hot bands pinned to one shard, clients
//      hammering them while the router migrates the hottest band away; the
//      bar is zero failed or lost requests and at least one migration.
//
// Results go to stdout (ASCII tables) and BENCH_serve.json. `--smoke` keeps
// everything tiny for CI; `--out <path>` redirects the JSON; `--shards N`
// routes phases B-D through an N-shard router.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/online.h"
#include "engine/params.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "util/rng.h"

using namespace rafiki;

namespace {

struct MicroResult {
  std::size_t batch = 0;
  double single_rows_per_s = 0.0;
  double batched_rows_per_s = 0.0;
  double speedup = 0.0;
  bool bitwise_equal = false;
};

struct LoadResult {
  std::size_t clients = 0;
  std::size_t max_batch = 0;
  std::size_t shards = 1;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t spills = 0;
};

struct SwapResult {
  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  std::uint64_t versions_published = 0;
};

struct RegimeResult {
  std::uint64_t predicts = 0;
  std::uint64_t windows = 0;
  std::uint64_t failed = 0;
  std::uint64_t stale_windows = 0;       // cache-miss windows served stale-marked
  std::uint64_t retrain_runs = 0;        // background GA executions
  std::uint64_t retrain_coalesced = 0;   // duplicate-bucket requests absorbed
  std::uint64_t versions_published = 0;  // snapshot versions after the run
  std::uint64_t tuned_buckets = 0;       // tuned entries in the final snapshot
  double predict_p99_us = 0.0;
  double observe_p99_us = 0.0;
  double retrain_mean_us = 0.0;  // what each miss *would* have cost inline
};

/// Post-run accounting for one shard (or the single unsharded service).
struct ShardMetrics {
  std::uint64_t requests = 0;      // Predict completions on this shard
  std::size_t workers = 0;         // budgeted worker threads
  double cpu_s = 0.0;              // worker CPU time (exact: read post-join)
  double mean_queue_depth = 0.0;   // sampled at each admission
  double max_queue_depth = 0.0;
};

struct ScalingResult {
  std::size_t shards = 0;
  std::size_t workers = 0;  // fleet-wide resolved worker budget
  double clients1_qps = 0.0;
  double clients64_qps = 0.0;
  double clients256_qps = 0.0;
  /// 64-client QPS relative to the 1-shard row (filled after the sweep).
  double speedup64 = 0.0;
  std::uint64_t failed = 0;
  std::uint64_t spills = 0;
  std::vector<ShardMetrics> per_shard;
};

struct ParityResult {
  std::uint64_t requests = 0;
  bool sharded_equals_unsharded = false;
  bool unsharded_equals_scalar = false;
};

struct RebalanceResult {
  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t spills = 0;
  bool route_changed = false;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // det:ok(wall-clock): measuring throughput/latency is this benchmark's purpose
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::vector<engine::Config> random_configs(std::size_t n, Rng& rng) {
  const auto& params = engine::key_params();
  std::vector<engine::Config> configs;
  configs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    engine::Config config;
    for (auto id : params) config.set(id, rng.uniform(0.0, 256.0));
    configs.push_back(config);
  }
  return configs;
}

/// One service or an N-shard router behind the same TuningBackend surface.
std::unique_ptr<serve::TuningBackend> make_backend(std::size_t shards,
                                                   const serve::ServiceOptions& options) {
  if (shards > 1) {
    serve::ShardOptions shard_options;
    shard_options.shards = shards;
    shard_options.service = options;
    return std::make_unique<serve::ShardedTuningService>(shard_options);
  }
  return std::make_unique<serve::TuningService>(options);
}

std::uint64_t backend_spills(const serve::TuningBackend& backend) {
  if (const auto* sharded = dynamic_cast<const serve::ShardedTuningService*>(&backend)) {
    return sharded->spills();
  }
  return 0;
}

MicroResult micro_bench(const core::Rafiki& rafiki, std::size_t batch, std::size_t rows,
                        std::size_t repeats) {
  Rng rng(4242);
  const auto configs = random_configs(rows, rng);
  const double rr = 0.45;

  MicroResult result;
  result.batch = batch;

  // Best-of-3 timing passes per path: the scheduler can preempt a pass
  // mid-loop (especially on small machines), and the best pass is the one
  // closest to the kernel's actual cost.
  constexpr std::size_t kPasses = 3;
  const double total_rows = static_cast<double>(rows * repeats);

  // Single-row path.
  std::vector<double> single(rows, 0.0);
  double single_s = 0.0;
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    // det:ok(wall-clock): benchmark timing
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < rows; ++i) single[i] = rafiki.predict(rr, configs[i]);
    }
    const double elapsed = seconds_since(t0);
    if (pass == 0 || elapsed < single_s) single_s = elapsed;
  }

  // Batched path, chunked at the requested batch size.
  std::vector<double> batched(rows, 0.0);
  double batched_s = 0.0;
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    // det:ok(wall-clock): benchmark timing
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      for (std::size_t lo = 0; lo < rows; lo += batch) {
        const std::size_t hi = std::min(rows, lo + batch);
        const std::vector<engine::Config> chunk(configs.begin() + lo, configs.begin() + hi);
        const auto out = rafiki.predict_batch(rr, chunk);
        for (std::size_t i = lo; i < hi; ++i) batched[i] = out[i - lo];
      }
    }
    const double elapsed = seconds_since(t1);
    if (pass == 0 || elapsed < batched_s) batched_s = elapsed;
  }

  result.single_rows_per_s = total_rows / single_s;
  result.batched_rows_per_s = total_rows / batched_s;
  result.speedup = result.batched_rows_per_s / result.single_rows_per_s;
  result.bitwise_equal = (single == batched);
  return result;
}

LoadResult load_bench(const core::Rafiki& rafiki, std::size_t shards, std::size_t clients,
                      std::size_t max_batch, std::size_t calls_per_client) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.max_batch = max_batch;
  options.queue_capacity = 4096;
  auto service = make_backend(shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->start();

  // det:ok(wall-clock): benchmark timing
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  std::vector<std::uint64_t> failed(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t i = 0; i < calls_per_client; ++i) {
        serve::Request request;
        request.endpoint = serve::Endpoint::kPredict;
        request.read_ratio = 0.2 + 0.05 * static_cast<double>(i % 12);
        if (!service->call(request).ok()) ++failed[c];
      }
    });
  }
  for (auto& client : pool) client.join();
  const double elapsed = seconds_since(t0);
  service->stop();

  LoadResult result;
  result.clients = clients;
  result.max_batch = max_batch;
  result.shards = shards;
  const auto counters = service->endpoint_counters(serve::Endpoint::kPredict);
  result.ok = counters.ok;
  for (auto f : failed) result.failed += f;
  result.qps = static_cast<double>(counters.ok) / elapsed;
  result.p50_us = service->endpoint_latency_quantile(serve::Endpoint::kPredict, 0.5);
  result.p99_us = service->endpoint_latency_quantile(serve::Endpoint::kPredict, 0.99);
  result.mean_batch = service->mean_batch_size();
  result.spills = backend_spills(*service);
  return result;
}

SwapResult swap_bench(const core::Rafiki& rafiki, std::size_t shards, std::size_t clients,
                      std::size_t calls_per_client, std::size_t republishes) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4096;
  auto service = make_backend(shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->start();

  std::vector<std::thread> pool;
  std::vector<std::uint64_t> failed(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t i = 0; i < calls_per_client; ++i) {
        serve::Request request;
        request.endpoint = serve::Endpoint::kPredict;
        request.read_ratio = 0.3 + 0.04 * static_cast<double>(i % 10);
        if (!service->call(request).ok()) ++failed[c];
      }
    });
  }
  // Republish fresh versions for the entire time the clients are running.
  for (std::size_t i = 0; i < republishes; ++i) {
    service->publish(serve::make_snapshot(rafiki));
  }
  for (auto& client : pool) client.join();
  service->stop();

  SwapResult result;
  result.requests = clients * calls_per_client;
  for (auto f : failed) result.failed += f;
  result.versions_published = service->model_version();
  return result;
}

RegimeResult regime_bench(const core::Rafiki& rafiki, std::size_t shards,
                          std::size_t clients, std::size_t calls_per_client,
                          std::size_t window_every) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4096;
  core::OnlineTuner tuner(rafiki);
  auto service = make_backend(shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->attach_tuner(tuner);
  service->start();

  // Each client walks the same regime schedule: a new read-ratio regime
  // every `window_every` calls, opened by one ObserveWindow (the paper's
  // 15-minute workload-shift cadence compressed into the closed loop) and
  // filled with Predicts against that regime.
  const std::vector<double> regimes = {0.15, 0.85, 0.45, 0.95, 0.25};
  std::vector<std::thread> pool;
  std::vector<std::uint64_t> failed(clients, 0);
  std::vector<std::uint64_t> stale(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t i = 0; i < calls_per_client; ++i) {
        const double rr = regimes[(i / window_every) % regimes.size()];
        serve::Request request;
        request.read_ratio = rr;
        if (i % window_every == 0) {
          request.endpoint = serve::Endpoint::kObserveWindow;
          const auto response = service->call(request);
          if (!response.ok()) ++failed[c];
          if (response.stale) ++stale[c];
        } else {
          request.endpoint = serve::Endpoint::kPredict;
          if (!service->call(request).ok()) ++failed[c];
        }
      }
    });
  }
  for (auto& client : pool) client.join();
  // Let in-flight background optimizations republish before reading the
  // final snapshot state.
  service->wait_retrain_idle();

  RegimeResult result;
  const auto predict = service->endpoint_counters(serve::Endpoint::kPredict);
  const auto observe = service->endpoint_counters(serve::Endpoint::kObserveWindow);
  result.predicts = predict.completed;
  result.windows = observe.completed;
  for (auto f : failed) result.failed += f;
  for (auto s : stale) result.stale_windows += s;
  const auto retrain = service->retrain_counters();
  result.retrain_runs = retrain.runs;
  result.retrain_coalesced = retrain.coalesced;
  result.versions_published = service->model_version();
  const auto snapshot = service->snapshot();
  result.tuned_buckets = snapshot ? snapshot->tuned.size() : 0;
  result.predict_p99_us = service->endpoint_latency_quantile(serve::Endpoint::kPredict, 0.99);
  result.observe_p99_us =
      service->endpoint_latency_quantile(serve::Endpoint::kObserveWindow, 0.99);
  result.retrain_mean_us = service->mean_retrain_latency_us();
  service->stop();
  return result;
}

ParityResult parity_bench(const core::Rafiki& rafiki, std::size_t shards,
                          std::size_t requests) {
  // Same request stream through the sharded router (batched), an unsharded
  // service (batched), and the scalar predict path — all three must agree to
  // the last bit for sharding to be a pure routing optimization.
  Rng rng(20170711);
  const auto configs = random_configs(requests, rng);
  std::vector<double> rrs(requests);
  for (std::size_t i = 0; i < requests; ++i) rrs[i] = 0.01 * static_cast<double>(i % 101);

  const auto run = [&](std::size_t n_shards) {
    serve::ServiceOptions options;
    options.workers = 2;
    options.max_batch = 32;
    options.queue_capacity = 4096;
    auto service = make_backend(n_shards, options);
    service->publish(serve::make_snapshot(rafiki));
    service->start();
    std::vector<double> means(requests, 0.0);
    for (std::size_t i = 0; i < requests; ++i) {
      serve::Request request;
      request.endpoint = serve::Endpoint::kPredict;
      request.read_ratio = rrs[i];
      request.config = configs[i];
      means[i] = service->call(request).mean;
    }
    service->stop();
    return means;
  };

  const auto sharded = run(shards);
  const auto unsharded = run(1);
  std::vector<double> scalar(requests, 0.0);
  for (std::size_t i = 0; i < requests; ++i) scalar[i] = rafiki.predict(rrs[i], configs[i]);

  ParityResult result;
  result.requests = requests;
  result.sharded_equals_unsharded = (sharded == unsharded);
  result.unsharded_equals_scalar = (unsharded == scalar);
  return result;
}

RebalanceResult rebalance_bench(const core::Rafiki& rafiki, std::size_t clients,
                                std::size_t calls_per_client) {
  serve::ShardOptions options;
  options.shards = 4;
  options.service.workers = 1;
  options.service.max_batch = 8;
  options.service.queue_capacity = 4096;
  serve::ShardedTuningService service(options);
  service.publish(serve::make_snapshot(rafiki));
  service.start();

  // Skew the initial placement: both hot bands (rr 0.20 and 0.80) on shard
  // 0, so the router has something to migrate.
  service.route_band(20, 0);
  service.route_band(80, 0);

  std::vector<std::thread> pool;
  std::vector<std::uint64_t> failed(clients, 0);
  std::atomic<bool> running{true};
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t i = 0; i < calls_per_client; ++i) {
        serve::Request request;
        request.endpoint = serve::Endpoint::kPredict;
        request.read_ratio = (i % 2 == 0) ? 0.2 : 0.8;
        if (!service.call(request).ok()) ++failed[c];
      }
    });
  }
  // Rebalance continuously while the clients are firing.
  std::thread balancer([&] {
    while (running.load(std::memory_order_relaxed)) {
      service.rebalance_hottest();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& client : pool) client.join();
  running.store(false, std::memory_order_relaxed);
  balancer.join();
  service.stop();

  RebalanceResult result;
  result.requests = clients * calls_per_client;
  for (auto f : failed) result.failed += f;
  result.rebalances = service.rebalances();
  result.spills = service.spills();
  result.route_changed =
      service.shard_of_band(20) != 0 || service.shard_of_band(80) != 0;
  // The merged completed count must account for every submitted request —
  // nothing lost across migrations.
  const auto totals = service.merged_totals();
  if (totals.completed != result.requests) result.failed += result.requests;
  return result;
}

/// Shared state of one closed-loop run: `concurrency` logical clients, each a
/// self-perpetuating submit -> completion -> next-submit chain, drawing
/// tickets from one global counter until `total` requests have been issued.
struct ClosedLoop {
  serve::TuningBackend* service = nullptr;
  std::uint64_t total = 0;
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> live{0};  // chains still running
  std::promise<void> done;
};

/// Advances one chain: takes the next ticket and submits it; the completion
/// callback (running on whichever worker served the request) re-enters here
/// for the next ticket. An inline rejection (Overloaded at every shard)
/// continues the loop on this thread instead of recursing, so the stack
/// stays flat no matter how hot the admission path runs.
void run_chain(const std::shared_ptr<ClosedLoop>& loop) {
  for (;;) {
    const std::uint64_t ticket = loop->issued.fetch_add(1, std::memory_order_relaxed);
    if (ticket >= loop->total) {
      if (loop->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        loop->done.set_value();
      }
      return;
    }
    serve::Request request;
    request.endpoint = serve::Endpoint::kPredict;
    // Cycle the full band space so the router actually spreads the stream
    // over every shard (and the unsharded run sees the identical mix).
    request.read_ratio = 0.01 * static_cast<double>(ticket % 101);
    serve::Status admitted = loop->service->try_submit(
        request, [loop](serve::Response response) {
          if (response.ok()) {
            loop->ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            loop->failed.fetch_add(1, std::memory_order_relaxed);
          }
          run_chain(loop);
        });
    if (admitted == serve::Status::kOk) return;  // chain continues on completion
    loop->failed.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Runs `total` requests through `concurrency` chains; returns QPS (completed
/// ok per wall second) and accumulates failures into `failed_out`.
double closed_loop_qps(serve::TuningBackend& service, std::size_t concurrency,
                       std::uint64_t total, std::uint64_t& failed_out) {
  auto loop = std::make_shared<ClosedLoop>();
  loop->service = &service;
  loop->total = total;
  loop->live.store(concurrency, std::memory_order_relaxed);
  auto finished = loop->done.get_future();
  // det:ok(wall-clock): benchmark timing
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < concurrency; ++c) run_chain(loop);
  finished.wait();
  const double elapsed = seconds_since(t0);
  failed_out += loop->failed.load(std::memory_order_relaxed);
  return elapsed > 0.0 ? static_cast<double>(loop->ok.load(std::memory_order_relaxed)) /
                             elapsed
                       : 0.0;
}

/// Per-shard accounting, read after stop() (worker CPU time is exact only
/// post-join). The unsharded service reports itself as one shard.
std::vector<ShardMetrics> collect_shard_metrics(const serve::TuningBackend& backend) {
  const auto of_service = [](const serve::TuningService& service) {
    ShardMetrics m;
    m.requests = service.stats().counters(serve::Endpoint::kPredict).completed;
    m.workers = service.worker_count();
    m.cpu_s = static_cast<double>(service.worker_cpu_us()) / 1e6;
    m.mean_queue_depth = service.stats().mean_queue_depth();
    m.max_queue_depth = service.stats().max_queue_depth();
    return m;
  };
  std::vector<ShardMetrics> out;
  if (const auto* sharded = dynamic_cast<const serve::ShardedTuningService*>(&backend)) {
    for (std::size_t i = 0; i < sharded->shard_count(); ++i) {
      out.push_back(of_service(sharded->shard(i)));
    }
  } else if (const auto* single = dynamic_cast<const serve::TuningService*>(&backend)) {
    out.push_back(of_service(*single));
  }
  return out;
}

ScalingResult scaling_bench(const core::Rafiki& rafiki, std::size_t n_shards,
                            std::uint64_t calls1, std::uint64_t total64,
                            std::uint64_t total256) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.max_batch = 1;
  options.queue_capacity = 4096;
  auto service = make_backend(n_shards, options);
  service->publish(serve::make_snapshot(rafiki));
  service->start();

  ScalingResult result;
  result.shards = n_shards;
  if (const auto* sharded =
          dynamic_cast<const serve::ShardedTuningService*>(service.get())) {
    result.workers = sharded->resolved_worker_budget();
  } else if (const auto* single =
                 dynamic_cast<const serve::TuningService*>(service.get())) {
    result.workers = single->worker_count();
  }

  // Route warm-up: one untimed request per band primes every shard's worker
  // pool, queue, snapshot deref, and stats stripes. The 1-client row used to
  // absorb all of that cold-start cost into its first timed requests (the
  // "1 client beats 8" anomaly in earlier runs of this table).
  for (std::size_t band = 0; band < 101; ++band) {
    serve::Request request;
    request.endpoint = serve::Endpoint::kPredict;
    request.read_ratio = 0.01 * static_cast<double>(band);
    (void)service->call(request);
  }

  result.clients1_qps = closed_loop_qps(*service, 1, calls1, result.failed);
  result.clients64_qps = closed_loop_qps(*service, 64, total64, result.failed);
  result.clients256_qps = closed_loop_qps(*service, 256, total256, result.failed);
  result.spills = backend_spills(*service);
  service->stop();
  result.per_shard = collect_shard_metrics(*service);
  return result;
}

void write_json(const std::string& path, const std::vector<MicroResult>& micro,
                const std::vector<LoadResult>& load, const SwapResult& swap,
                const RegimeResult& regime, const std::vector<ScalingResult>& scaling,
                const ParityResult& parity, const RebalanceResult& rebalance, bool smoke,
                std::size_t shards, const std::vector<std::string>& gates_skipped) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "serve_load: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve_load\",\n  \"smoke\": %s,\n  \"shards\": %zu,\n",
               smoke ? "true" : "false", shards);
  std::fprintf(out, "  \"hw_threads\": %u,\n  \"gates_skipped\": %s,\n",
               benchutil::hw_threads(), benchutil::json_string_array(gates_skipped).c_str());
  std::fprintf(out, "  \"microbench\": [\n");
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const auto& m = micro[i];
    std::fprintf(out,
                 "    {\"batch\": %zu, \"single_rows_per_s\": %.1f, "
                 "\"batched_rows_per_s\": %.1f, \"speedup\": %.2f, "
                 "\"bitwise_equal\": %s}%s\n",
                 m.batch, m.single_rows_per_s, m.batched_rows_per_s, m.speedup,
                 m.bitwise_equal ? "true" : "false", i + 1 < micro.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"service_load\": [\n");
  for (std::size_t i = 0; i < load.size(); ++i) {
    const auto& l = load[i];
    std::fprintf(out,
                 "    {\"clients\": %zu, \"max_batch\": %zu, \"shards\": %zu, "
                 "\"qps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"mean_batch\": %.2f, \"ok\": %llu, \"failed\": %llu, "
                 "\"spills\": %llu}%s\n",
                 l.clients, l.max_batch, l.shards, l.qps, l.p50_us, l.p99_us, l.mean_batch,
                 static_cast<unsigned long long>(l.ok),
                 static_cast<unsigned long long>(l.failed),
                 static_cast<unsigned long long>(l.spills), i + 1 < load.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"swap_under_load\": {\"requests\": %llu, \"failed\": %llu, "
               "\"versions_published\": %llu},\n",
               static_cast<unsigned long long>(swap.requests),
               static_cast<unsigned long long>(swap.failed),
               static_cast<unsigned long long>(swap.versions_published));
  std::fprintf(out,
               "  \"regime_changes\": {\"predicts\": %llu, \"windows\": %llu, "
               "\"failed\": %llu, \"stale_windows\": %llu, \"retrain_runs\": %llu, "
               "\"retrain_coalesced\": %llu, \"versions_published\": %llu, "
               "\"tuned_buckets\": %llu, \"predict_p99_us\": %.1f, "
               "\"observe_p99_us\": %.1f, \"retrain_mean_us\": %.1f},\n",
               static_cast<unsigned long long>(regime.predicts),
               static_cast<unsigned long long>(regime.windows),
               static_cast<unsigned long long>(regime.failed),
               static_cast<unsigned long long>(regime.stale_windows),
               static_cast<unsigned long long>(regime.retrain_runs),
               static_cast<unsigned long long>(regime.retrain_coalesced),
               static_cast<unsigned long long>(regime.versions_published),
               static_cast<unsigned long long>(regime.tuned_buckets),
               regime.predict_p99_us, regime.observe_p99_us, regime.retrain_mean_us);
  std::fprintf(out, "  \"shard_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& s = scaling[i];
    std::fprintf(out,
                 "    {\"shards\": %zu, \"workers\": %zu, \"clients1_qps\": %.1f, "
                 "\"clients64_qps\": %.1f, \"clients256_qps\": %.1f, "
                 "\"speedup64_vs_1shard\": %.2f, \"failed\": %llu, \"spills\": %llu, "
                 "\"per_shard\": [",
                 s.shards, s.workers, s.clients1_qps, s.clients64_qps, s.clients256_qps,
                 s.speedup64, static_cast<unsigned long long>(s.failed),
                 static_cast<unsigned long long>(s.spills));
    for (std::size_t j = 0; j < s.per_shard.size(); ++j) {
      const auto& p = s.per_shard[j];
      std::fprintf(out,
                   "{\"requests\": %llu, \"workers\": %zu, \"cpu_s\": %.3f, "
                   "\"mean_queue_depth\": %.2f, \"max_queue_depth\": %.0f}%s",
                   static_cast<unsigned long long>(p.requests), p.workers, p.cpu_s,
                   p.mean_queue_depth, p.max_queue_depth,
                   j + 1 < s.per_shard.size() ? ", " : "");
    }
    std::fprintf(out, "]}%s\n", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"sharded_parity\": {\"requests\": %llu, "
               "\"sharded_equals_unsharded\": %s, \"unsharded_equals_scalar\": %s},\n",
               static_cast<unsigned long long>(parity.requests),
               parity.sharded_equals_unsharded ? "true" : "false",
               parity.unsharded_equals_scalar ? "true" : "false");
  std::fprintf(out,
               "  \"rebalance_under_load\": {\"requests\": %llu, \"failed\": %llu, "
               "\"rebalances\": %llu, \"spills\": %llu, \"route_changed\": %s}\n}\n",
               static_cast<unsigned long long>(rebalance.requests),
               static_cast<unsigned long long>(rebalance.failed),
               static_cast<unsigned long long>(rebalance.rebalances),
               static_cast<unsigned long long>(rebalance.spills),
               rebalance.route_changed ? "true" : "false");
  std::fclose(out);
  benchutil::note("wrote " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (shards == 0) shards = 1;
    }
  }

  // Train the surrogate the service will serve. The smoke profile matches
  // the sanitizer tests; the full profile uses a mid-sized ensemble so the
  // microbenchmark reflects realistic per-member work.
  core::RafikiOptions options;
  options.workload_grid = smoke ? std::vector<double>{0.2, 0.8}
                                : std::vector<double>{0.1, 0.5, 0.9};
  options.n_configs = smoke ? 5 : 10;
  options.collect.measure.ops = smoke ? 3000 : 20000;
  options.collect.measure.warmup_ops = smoke ? 300 : 2000;
  options.ensemble.n_nets = smoke ? 3 : 10;
  options.ensemble.train.max_epochs = smoke ? 30 : 100;
  benchutil::note("training the surrogate ensemble...");
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());

  // Phase A: batched-kernel microbenchmark.
  // Even the smoke profile needs multi-millisecond timing sections: with
  // ~1 ms per pass the speedup ratio is scheduler noise, not a measurement.
  const std::size_t rows = smoke ? 1024 : 4096;
  const std::size_t repeats = smoke ? 4 : 5;
  std::vector<MicroResult> micro;
  for (std::size_t batch : {8u, 32u, 64u}) {
    micro.push_back(micro_bench(rafiki, batch, rows, repeats));
  }
  Table micro_table({"batch", "single rows/s", "batched rows/s", "speedup", "bitwise =="});
  for (const auto& m : micro) {
    micro_table.add_row({std::to_string(m.batch), Table::ops(m.single_rows_per_s),
                         Table::ops(m.batched_rows_per_s),
                         Table::num(m.speedup, 2) + "x", m.bitwise_equal ? "yes" : "NO"});
  }
  benchutil::emit(micro_table, "Phase A: predict vs predict_batch");
  const auto& accept = micro[1];  // batch == 32, the acceptance row
  benchutil::compare("predict_batch(32) vs predict speedup", ">= 4x",
                     Table::num(accept.speedup, 2) + "x");

  // Phase B: closed-loop service load grid.
  const std::size_t calls = smoke ? 60 : 400;
  std::vector<LoadResult> load;
  for (std::size_t clients : {1u, 4u, 8u}) {
    for (std::size_t max_batch : {1u, 32u}) {
      load.push_back(load_bench(rafiki, shards, clients, max_batch, calls));
    }
  }
  Table load_table({"clients", "max batch", "shards", "QPS", "p50 us", "p99 us",
                    "mean batch", "failed"});
  for (const auto& l : load) {
    load_table.add_row({std::to_string(l.clients), std::to_string(l.max_batch),
                        std::to_string(l.shards), Table::ops(l.qps),
                        Table::num(l.p50_us, 1), Table::num(l.p99_us, 1),
                        Table::num(l.mean_batch, 2), std::to_string(l.failed)});
  }
  benchutil::emit(load_table, "Phase B: closed-loop service load");
  const LoadResult* single_batched = nullptr;
  for (const auto& l : load) {
    if (l.clients == 1 && l.max_batch == 32) single_batched = &l;
  }
  benchutil::compare("single-client batched p99 (adaptive flush)", "< 1000 us",
                     Table::num(single_batched->p99_us, 1) + " us");

  // Phase C: snapshot swaps during active load.
  const auto swap = swap_bench(rafiki, shards, 4, smoke ? 60 : 300, smoke ? 20 : 100);
  benchutil::section("Phase C: snapshot swap under load");
  std::printf("%llu requests across %llu published versions, %llu failed\n",
              static_cast<unsigned long long>(swap.requests),
              static_cast<unsigned long long>(swap.versions_published),
              static_cast<unsigned long long>(swap.failed));
  benchutil::compare("failed/blocked requests during snapshot swaps", "0",
                     std::to_string(swap.failed));

  // Phase D: regime changes mixed into the closed loop — the async-retrain
  // acceptance scenario.
  const auto regime = regime_bench(rafiki, shards, smoke ? 4 : 8, smoke ? 120 : 600,
                                   smoke ? 20 : 40);
  Table regime_table({"metric", "value"});
  regime_table.add_row({"Predict completed", std::to_string(regime.predicts)});
  regime_table.add_row({"ObserveWindow completed", std::to_string(regime.windows)});
  regime_table.add_row({"failed requests", std::to_string(regime.failed)});
  regime_table.add_row({"stale-served windows", std::to_string(regime.stale_windows)});
  regime_table.add_row({"background retrain runs", std::to_string(regime.retrain_runs)});
  regime_table.add_row({"retrains coalesced", std::to_string(regime.retrain_coalesced)});
  regime_table.add_row({"snapshot versions", std::to_string(regime.versions_published)});
  regime_table.add_row({"tuned buckets in final snapshot",
                        std::to_string(regime.tuned_buckets)});
  regime_table.add_row({"Predict p99 us", Table::num(regime.predict_p99_us, 1)});
  regime_table.add_row({"ObserveWindow p99 us", Table::num(regime.observe_p99_us, 1)});
  regime_table.add_row({"retrain mean us (off-path)",
                        Table::num(regime.retrain_mean_us, 1)});
  benchutil::emit(regime_table, "Phase D: regime changes in the closed loop");
  benchutil::compare("failed requests across regime changes", "0",
                     std::to_string(regime.failed));
  benchutil::compare("ObserveWindow p99 vs inline GA cost",
                     "p99 << retrain mean",
                     Table::num(regime.observe_p99_us, 1) + " us vs " +
                         Table::num(regime.retrain_mean_us, 1) + " us");

  // Phase E: shard scaling sweep + bit parity across backends. A callback
  // closed loop (64 / 256 logical clients, zero client threads) drives each
  // shard count after an untimed route warm-up; the speedup column is each
  // row's 64-client QPS over the unsharded row's — the number that used to
  // go BELOW 1.0 at 8 shards before the fleet worker budget (DESIGN.md §5d).
  const std::uint64_t calls1 = smoke ? 200 : 2000;
  const std::uint64_t total64 = smoke ? 64 * 20 : 64 * 300;
  const std::uint64_t total256 = smoke ? 256 * 8 : 256 * 100;
  std::vector<ScalingResult> scaling;
  for (std::size_t n_shards : {1u, 2u, 4u, 8u}) {
    scaling.push_back(scaling_bench(rafiki, n_shards, calls1, total64, total256));
  }
  const double base64 = scaling.front().clients64_qps;
  for (auto& s : scaling) s.speedup64 = base64 > 0.0 ? s.clients64_qps / base64 : 0.0;
  Table scaling_table({"shards", "workers", "QPS (1 client)", "QPS (64 clients)",
                       "QPS (256 clients)", "vs 1 shard", "failed"});
  for (const auto& s : scaling) {
    scaling_table.add_row({std::to_string(s.shards), std::to_string(s.workers),
                           Table::ops(s.clients1_qps), Table::ops(s.clients64_qps),
                           Table::ops(s.clients256_qps),
                           Table::num(s.speedup64, 2) + "x", std::to_string(s.failed)});
  }
  benchutil::emit(scaling_table, "Phase E: shard scaling (closed loop, max_batch = 1)");
  for (const auto& s : scaling) {
    std::string split;
    for (std::size_t j = 0; j < s.per_shard.size(); ++j) {
      split += (j > 0 ? "/" : "") + std::to_string(s.per_shard[j].requests);
    }
    benchutil::note(std::to_string(s.shards) + " shard(s): requests per shard = " +
                    split);
  }
  const auto parity = parity_bench(rafiki, 4, smoke ? 128 : 512);
  benchutil::compare("sharded == unsharded == scalar predictions", "bit-identical",
                     parity.sharded_equals_unsharded && parity.unsharded_equals_scalar
                         ? "yes"
                         : "NO");

  // Phase F: hot-band rebalance while clients hammer the hot shards.
  const auto rebalance = rebalance_bench(rafiki, 4, smoke ? 200 : 1000);
  benchutil::section("Phase F: rebalance under load");
  std::printf("%llu requests, %llu failed, %llu migrations (%llu spills), route %s\n",
              static_cast<unsigned long long>(rebalance.requests),
              static_cast<unsigned long long>(rebalance.failed),
              static_cast<unsigned long long>(rebalance.rebalances),
              static_cast<unsigned long long>(rebalance.spills),
              rebalance.route_changed ? "migrated" : "UNCHANGED");
  benchutil::compare("failed/lost requests across rebalance", "0",
                     std::to_string(rebalance.failed));

  // Sanitizer builds run this as a concurrency smoke: correctness gates
  // (bitwise equality, zero failures) still apply, but the speedup bars are
  // only meaningful without instrumentation overhead.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kPerfGate = false;  // GCC sanitizer macros
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr bool kPerfGate = false;  // clang spelling
#else
  constexpr bool kPerfGate = true;
#endif
#else
  constexpr bool kPerfGate = true;
#endif
  // The shard-scaling bars additionally need 8 hardware threads for the
  // shards to run on; on smaller machines the sweep still runs (and its
  // numbers are recorded) but the ratios are not gated.
  const bool scaling_gate = kPerfGate && std::thread::hardware_concurrency() >= 8;

  // What the recorded numbers were NOT held to, so a BENCH_serve.json from a
  // sanitizer build or a small machine is self-describing.
  std::vector<std::string> gates_skipped;
  if (!kPerfGate) gates_skipped.push_back("perf");
  if (kPerfGate && std::thread::hardware_concurrency() < 2) {
    gates_skipped.push_back("offpath_retrain");
  }
  if (!scaling_gate) gates_skipped.push_back("shard_scaling");
  write_json(out_path, micro, load, swap, regime, scaling, parity, rebalance, smoke,
             shards, gates_skipped);

  bool pass = (!kPerfGate || accept.speedup >= 4.0) && swap.failed == 0;
  for (const auto& m : micro) pass = pass && m.bitwise_equal;
  for (const auto& l : load) pass = pass && l.failed == 0;
  // Phase D structural gates (always on): nothing fails across background
  // republishes, cache-miss windows are answered stale-marked instead of
  // blocking on the GA, and the tuned configs show up in later snapshot
  // versions.
  pass = pass && regime.failed == 0;
  pass = pass && regime.stale_windows >= 1;
  pass = pass && regime.retrain_runs >= 1;
  pass = pass && regime.tuned_buckets >= 1;
  pass = pass && regime.versions_published > 1;
  // Perf gates: serving a window must be far cheaper than the GA it no
  // longer runs inline, and the adaptive batcher must keep a lone batched
  // client at sub-millisecond p99 (both distorted by sanitizers). The
  // off-path-retrain bar additionally needs a core for the background
  // thread to run on — with a single hardware thread the GA preempts the
  // request worker and the tail absorbs it regardless of architecture.
  if (kPerfGate && std::thread::hardware_concurrency() >= 2) {
    pass = pass && regime.observe_p99_us < regime.retrain_mean_us;
  }
  if (kPerfGate) pass = pass && single_batched->p99_us < 1000.0;
  // Sharding gates: structural ones always on (zero failures, parity,
  // a real migration); the >= 4x scaling ratio only where 8 clients can
  // actually run in parallel.
  for (const auto& s : scaling) pass = pass && s.failed == 0;
  pass = pass && parity.sharded_equals_unsharded && parity.unsharded_equals_scalar;
  pass = pass && rebalance.failed == 0 && rebalance.rebalances >= 1 &&
         rebalance.route_changed;
  if (scaling_gate) {
    // No-regression bar (smoke and full, the CI assertion): no shard count
    // may fall below 0.9x the unsharded 64-client throughput — the exact
    // de-scaling the fleet worker budget removed.
    for (const auto& s : scaling) pass = pass && s.speedup64 >= 0.9;
    // Full-profile bar: 4 shards reach >= 3x unsharded at 64 clients.
    if (!smoke) {
      bool scaled = false;
      for (const auto& s : scaling) {
        if (s.shards == 4 && s.speedup64 >= 3.0) scaled = true;
      }
      pass = pass && scaled;
    }
  }
  std::printf("\nserve_load: %s%s%s\n", pass ? "PASS" : "FAIL",
              kPerfGate ? "" : " (perf gates skipped: sanitizer build)",
              scaling_gate ? ""
                           : " (scaling gate skipped: < 8 hardware threads)");
  return pass ? 0 : 1;
}
