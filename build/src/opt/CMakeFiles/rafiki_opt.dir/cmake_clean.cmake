file(REMOVE_RECURSE
  "CMakeFiles/rafiki_opt.dir/baselines.cpp.o"
  "CMakeFiles/rafiki_opt.dir/baselines.cpp.o.d"
  "CMakeFiles/rafiki_opt.dir/ga.cpp.o"
  "CMakeFiles/rafiki_opt.dir/ga.cpp.o.d"
  "CMakeFiles/rafiki_opt.dir/space.cpp.o"
  "CMakeFiles/rafiki_opt.dir/space.cpp.o.d"
  "librafiki_opt.a"
  "librafiki_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
