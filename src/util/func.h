// Move-only function wrapper with small-buffer storage: the serve layer's
// completion-callback type. std::function cost the submit hot path twice —
// it requires copyable targets (so the sharded spill loop had to copy the
// callback per admission attempt), and realistic captures (two shared_ptrs
// plus wire bookkeeping in net::Server) spilled past libstdc++'s 16-byte
// inline buffer into a heap allocation per request. MoveFunc stores any
// nothrow-movable target up to kInlineSize bytes in place, accepts move-only
// captures (a promise, a unique_ptr, another MoveFunc), and never copies:
// ownership moves through the bounded queue with the Job that carries it.
//
// Contract:
//   * Move-only. Moving from a MoveFunc leaves it empty (operator bool
//     false); invoking an empty one is undefined (callers arm exactly one
//     completion channel and check before calling, same as std::function
//     minus the throw).
//   * Targets larger than kInlineSize (or over-aligned, or with throwing
//     moves) fall back to one heap allocation — correctness is unchanged,
//     only the no-alloc guarantee. stores_inline<F>() reports the placement
//     at compile time so tests can pin hot-path captures to the buffer.
//   * The wrapper itself is nothrow-movable regardless of placement, so a
//     deque<Job> reallocation never throws mid-move.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rafiki {

template <typename Signature>
class MoveFunc;

template <typename R, typename... Args>
class MoveFunc<R(Args...)> {
 public:
  /// Inline storage size. Sized for the biggest hot-path capture in the
  /// tree: net::Server's response callback (shared_ptr connection +
  /// shared_ptr waker + stats pointer + frame ids + a time_point = 72
  /// bytes) plus a little headroom. tests/serve_callback_test pins that
  /// shape to the buffer.
  static constexpr std::size_t kInlineSize = 80;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when F is stored in the inline buffer (no allocation on
  /// construction, destruction, or move).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

  MoveFunc() noexcept = default;
  MoveFunc(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveFunc> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveFunc(F&& f) {  // NOLINT(google-explicit-constructor)
    using Target = std::decay_t<F>;
    if constexpr (stores_inline<Target>()) {
      ::new (static_cast<void*>(&storage_)) Target(std::forward<F>(f));
      vtable_ = &inline_vtable<Target>;
    } else {
      ::new (static_cast<void*>(&storage_))
          Target*(new Target(std::forward<F>(f)));
      vtable_ = &heap_vtable<Target>;
    }
  }

  MoveFunc(MoveFunc&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) vtable_->relocate(&other.storage_, &storage_);
    other.vtable_ = nullptr;
  }

  MoveFunc& operator=(MoveFunc&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) vtable_->relocate(&other.storage_, &storage_);
      other.vtable_ = nullptr;
    }
    return *this;
  }

  MoveFunc(const MoveFunc&) = delete;
  MoveFunc& operator=(const MoveFunc&) = delete;

  ~MoveFunc() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(&storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs the target from `from` into `to`, then destroys the
    /// `from` remnant (trivial pointer copy for heap targets).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

  template <typename Target>
  static constexpr VTable inline_vtable = {
      [](void* storage, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Target*>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        Target* source = std::launder(reinterpret_cast<Target*>(from));
        ::new (to) Target(std::move(*source));
        source->~Target();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<Target*>(storage))->~Target();
      },
  };

  template <typename Target>
  static constexpr VTable heap_vtable = {
      [](void* storage, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Target**>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        ::new (to) Target*(*std::launder(reinterpret_cast<Target**>(from)));
      },
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<Target**>(storage));
      },
  };

  const VTable* vtable_ = nullptr;
  alignas(kInlineAlign) std::byte storage_[kInlineSize];
};

}  // namespace rafiki
