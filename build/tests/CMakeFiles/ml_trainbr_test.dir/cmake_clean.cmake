file(REMOVE_RECURSE
  "CMakeFiles/ml_trainbr_test.dir/ml_trainbr_test.cpp.o"
  "CMakeFiles/ml_trainbr_test.dir/ml_trainbr_test.cpp.o.d"
  "ml_trainbr_test"
  "ml_trainbr_test.pdb"
  "ml_trainbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_trainbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
