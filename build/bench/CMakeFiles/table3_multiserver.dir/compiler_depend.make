# Empty compiler generated dependencies file for table3_multiserver.
# This may be replaced when dependencies are built.
