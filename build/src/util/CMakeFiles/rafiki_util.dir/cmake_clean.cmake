file(REMOVE_RECURSE
  "CMakeFiles/rafiki_util.dir/histogram.cpp.o"
  "CMakeFiles/rafiki_util.dir/histogram.cpp.o.d"
  "CMakeFiles/rafiki_util.dir/stats.cpp.o"
  "CMakeFiles/rafiki_util.dir/stats.cpp.o.d"
  "CMakeFiles/rafiki_util.dir/table.cpp.o"
  "CMakeFiles/rafiki_util.dir/table.cpp.o.d"
  "librafiki_util.a"
  "librafiki_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
