# Empty compiler generated dependencies file for rafiki_opt.
# This may be replaced when dependencies are built.
