// The Rafiki middleware (Figure 1): the end-to-end pipeline of
//   1. workload characterization          (workload/characterize.h)
//   2. important-parameter identification (one-at-a-time ANOVA)
//   3. data collection                    (collect/)
//   4. surrogate modelling                (ml/ DNN ensemble)
//   5. online configuration optimization  (opt/ genetic algorithm)
// This class owns stages 2-5; stage 1 is a pure function of the trace and is
// consumed through WorkloadSpec.
#pragma once

#include <cstdint>
#include <vector>

#include "collect/dataset.h"
#include "engine/config.h"
#include "ml/anova.h"
#include "ml/ensemble.h"
#include "opt/ga.h"
#include "opt/space.h"
#include "workload/spec.h"

namespace rafiki::core {

struct RafikiOptions {
  /// The benchmarked workload grid: 11 read ratios in 10% steps (Section 4.2).
  std::vector<double> workload_grid = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  std::size_t n_configs = 20;
  workload::WorkloadSpec base_workload{};
  collect::CollectOptions collect{};

  /// ANOVA screen settings: measurement replicates per parameter level, and
  /// the representative workload it runs against.
  std::size_t anova_repeats = 3;
  double anova_read_ratio = 0.45;

  /// Number of key parameters; 0 selects automatically with the paper's
  /// "distinct drop in variance" heuristic.
  std::size_t key_param_count = 5;

  ml::EnsembleOptions ensemble{};
  opt::GaOptions ga{};

  /// Target the ScyllaDB engine model; parameter selection then applies the
  /// Section 4.10 procedure (strip ignored params, refill by variance).
  bool scylla = false;
};

struct ParamRanking {
  engine::ParamId id{};
  double score = 0.0;  ///< stddev of per-level mean throughput (Figure 5)
  double f_statistic = 0.0;
  double p_value = 1.0;
};

class Rafiki {
 public:
  explicit Rafiki(RafikiOptions options = RafikiOptions{});

  /// Stage 2a: one-at-a-time sweep + ANOVA over every registered parameter,
  /// sorted by descending score. Results are cached.
  const std::vector<ParamRanking>& rank_parameters();

  /// Stage 2b: choose the key parameters from the ranking (ScyllaDB variant
  /// strips internally-ignored parameters first). Cached.
  const std::vector<engine::ParamId>& select_key_params();

  /// Bypass the ANOVA stage with a known-good selection (e.g. the paper's
  /// five), useful for tests and cheaper benches.
  void set_key_params(std::vector<engine::ParamId> params);

  /// The currently selected key parameters (empty until selected or set);
  /// the serve layer snapshots this alongside the trained ensemble.
  const std::vector<engine::ParamId>& key_params() const noexcept { return key_params_; }

  /// Stage 3: benchmark the workload grid against the sampled configs.
  collect::Dataset collect();

  /// Stage 4: fit the surrogate ensemble on a dataset.
  void train(const collect::Dataset& dataset);
  bool trained() const noexcept { return surrogate_.trained(); }
  const ml::SurrogateEnsemble& surrogate() const noexcept { return surrogate_; }

  /// Surrogate prediction for (workload, configuration) — Equation (2).
  double predict(double read_ratio, const engine::Config& config) const;

  /// Batched variant: one ensemble evaluation for many configurations at a
  /// fixed workload. Bit-for-bit identical to predict() per row.
  std::vector<double> predict_batch(double read_ratio,
                                    const std::vector<engine::Config>& configs) const;

  struct OptimizeResult {
    engine::Config config;
    double predicted_throughput = 0.0;
    std::size_t surrogate_evaluations = 0;
    double wall_seconds = 0.0;
  };
  /// Stage 5: GA search over the key-parameter space against the surrogate.
  OptimizeResult optimize(double read_ratio) const;

  /// Search space spanned by the key parameters.
  opt::SearchSpace key_space() const;

  const RafikiOptions& options() const noexcept { return options_; }

 private:
  RafikiOptions options_;
  std::vector<ParamRanking> ranking_;
  std::vector<engine::ParamId> key_params_;
  ml::SurrogateEnsemble surrogate_;
};

}  // namespace rafiki::core
