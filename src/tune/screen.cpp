#include "tune/screen.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace rafiki::tune {

KnobScreen::KnobScreen(ScreenOptions options) : options_(options) {
  knobs_.resize(engine::kParamCount);
  for (const auto& spec : engine::param_registry()) {
    knobs_[static_cast<std::size_t>(spec.id)].levels.resize(level_count(spec));
  }
}

std::size_t KnobScreen::level_count(const engine::ParamSpec& spec) const noexcept {
  std::size_t levels = std::max<std::size_t>(options_.levels, 2);
  if (spec.type != engine::ParamType::kReal) {
    const auto distinct = static_cast<std::size_t>(spec.hi - spec.lo) + 1;
    levels = std::min(levels, distinct);
  }
  return levels;
}

std::size_t KnobScreen::level_of(const engine::ParamSpec& spec, double value) const noexcept {
  const std::size_t levels = knobs_[static_cast<std::size_t>(spec.id)].levels.size();
  if (spec.hi <= spec.lo || levels <= 1) return 0;
  const double frac = (spec.snap(value) - spec.lo) / (spec.hi - spec.lo);
  const auto idx = static_cast<std::size_t>(frac * static_cast<double>(levels));
  return std::min(idx, levels - 1);
}

void KnobScreen::seed(engine::ParamId id, double score) {
  auto& state = knobs_.at(static_cast<std::size_t>(id));
  state.seed_score = score;
  state.seeded = true;
}

void KnobScreen::observe(double read_ratio, const engine::Config& config,
                         double throughput) {
  // Workload effect first: the residual is measured against the running mean
  // of this read-ratio bucket *including* the new sample, so a bucket's first
  // observation contributes a zero residual (no knob evidence) instead of its
  // absolute throughput.
  const int bucket = static_cast<int>(std::round(read_ratio / options_.rr_bucket));
  auto& baseline = rr_baseline_[bucket];
  baseline.add(throughput);
  const double residual = throughput - baseline.mean;

  for (const auto& spec : engine::param_registry()) {
    auto& state = knobs_[static_cast<std::size_t>(spec.id)];
    state.levels[level_of(spec, config.get(spec.id))].add(residual);
    ++state.samples;
  }
  ++observations_;
}

double KnobScreen::stream_score(const KnobState& state) const {
  std::vector<double> means;
  means.reserve(state.levels.size());
  for (const auto& level : state.levels) {
    if (level.n > 0) means.push_back(level.mean);
  }
  if (means.size() < 2) return 0.0;
  return rafiki::stddev(means);
}

double KnobScreen::blended(const KnobState& state) const {
  const double w = state.seeded ? options_.seed_weight : 0.0;
  const auto n = static_cast<double>(state.samples);
  if (w + n <= 0.0) return 0.0;
  return (w * state.seed_score + n * stream_score(state)) / (w + n);
}

double KnobScreen::score(engine::ParamId id) const {
  return blended(knobs_.at(static_cast<std::size_t>(id)));
}

std::vector<KnobScore> KnobScreen::ranking() const {
  std::vector<KnobScore> ranking;
  ranking.reserve(knobs_.size());
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const auto& state = knobs_[i];
    KnobScore entry;
    entry.id = static_cast<engine::ParamId>(i);
    entry.seed_score = state.seed_score;
    entry.stream_score = stream_score(state);
    entry.samples = state.samples;
    entry.score = blended(state);
    ranking.push_back(entry);
  }
  std::sort(ranking.begin(), ranking.end(), [](const KnobScore& a, const KnobScore& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return ranking;
}

}  // namespace rafiki::tune
