#include "core/online.h"

#include <cmath>

namespace rafiki::core {

OnlineTuner::OnlineTuner(const Rafiki& rafiki, OnlineTunerOptions options)
    : rafiki_(&rafiki), options_(options) {}

int OnlineTuner::bucket_for(double read_ratio) const noexcept {
  return static_cast<int>(std::round(read_ratio / options_.rr_bucket));
}

const Rafiki::OptimizeResult& OnlineTuner::optimized_for(double read_ratio) {
  const int bucket = bucket_for(read_ratio);
  auto it = cache_.find(bucket);
  if (it == cache_.end()) {
    ++optimizer_runs_;
    it = cache_.emplace(bucket, rafiki_->optimize(read_ratio)).first;
    if (publish_) publish_(bucket, it->second);
  }
  return it->second;
}

void OnlineTuner::prefetch(double read_ratio) { optimized_for(read_ratio); }

OnlineTuner::Decision OnlineTuner::on_window(double read_ratio) {
  Decision decision;
  const bool moved = !have_config_ ||
                     std::abs(read_ratio - current_rr_) >= options_.rr_change_threshold;
  if (moved) {
    const auto& optimized = optimized_for(read_ratio);
    if (!have_config_ || !(optimized.config == current_)) {
      current_ = optimized.config;
      ++reconfigurations_;
      decision.reconfigured = true;
    }
    current_rr_ = read_ratio;
    have_config_ = true;
    decision.predicted_throughput = optimized.predicted_throughput;
  } else {
    decision.predicted_throughput = rafiki_->predict(read_ratio, current_);
  }
  decision.config = current_;
  return decision;
}

}  // namespace rafiki::core
