// Wire codec: bit-exact round trips for all three frame types, and
// adversarial decoding — truncation at every byte boundary, hostile length
// prefixes, garbage magic, out-of-range enum bytes, non-finite doubles,
// trailing junk, and a deterministic fuzz loop. Run under ASan, the decoder
// must never read past the buffer whatever the input claims.
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "engine/config.h"
#include "engine/params.h"
#include "net/wire.h"
#include "serve/types.h"
#include "util/rng.h"

namespace rafiki::net {
namespace {

// Header byte offsets (see the layout comment in net/wire.h).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffEndpoint = 6;
constexpr std::size_t kOffCode = 7;
constexpr std::size_t kOffTenant = 16;
constexpr std::size_t kOffPayloadLen = 20;
// v1 header: no tenant field; payload_len sits where tenant is in v2.
constexpr std::size_t kOffPayloadLenV1 = 16;

engine::Config test_config() {
  auto config = engine::Config::defaults();
  for (const auto id : engine::key_params()) {
    config.set(id, config.get(id));  // identity: keep values in-domain
  }
  return config.with(engine::key_params()[0], 1.0).with(engine::key_params()[1], 64.0);
}

std::vector<std::uint8_t> request_bytes(std::uint64_t id, const serve::Request& request) {
  std::vector<std::uint8_t> bytes;
  encode_request(id, request, bytes);
  return bytes;
}

DecodeStatus decode(const std::vector<std::uint8_t>& bytes, Frame& frame,
                    std::size_t& consumed) {
  return decode_frame(bytes.data(), bytes.size(), kDefaultMaxPayload, frame, consumed);
}

void patch_u32(std::vector<std::uint8_t>& bytes, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[off + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

TEST(NetWire, PrimitivesRoundTripLittleEndian) {
  std::vector<std::uint8_t> out;
  put_u16(out, 0x1234);
  put_u32(out, 0xDEADBEEFu);
  put_u64(out, 0x0102030405060708ull);
  put_f64(out, -3.75);
  // Explicit little-endian layout, independent of host order.
  EXPECT_EQ(out[0], 0x34);
  EXPECT_EQ(out[1], 0x12);
  EXPECT_EQ(out[2], 0xEF);
  EXPECT_EQ(out[5], 0xDE);

  WireReader reader(out.data(), out.size());
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  ASSERT_TRUE(reader.get_u16(u16));
  ASSERT_TRUE(reader.get_u32(u32));
  ASSERT_TRUE(reader.get_u64(u64));
  ASSERT_TRUE(reader.get_f64(f64));
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0102030405060708ull);
  EXPECT_EQ(f64, -3.75);
  EXPECT_EQ(reader.remaining(), 0u);
  // Exhausted reader refuses further reads without advancing.
  std::uint8_t u8 = 0;
  EXPECT_FALSE(reader.get_u8(u8));
  EXPECT_FALSE(reader.get_u64(u64));
}

TEST(NetWire, RequestRoundTripIsBitExactForEveryEndpoint) {
  for (std::size_t e = 0; e < serve::kEndpointCount; ++e) {
    serve::Request request;
    request.endpoint = static_cast<serve::Endpoint>(e);
    request.read_ratio = 0.37;
    request.deadline = 123456789ull;
    request.config = test_config();

    const auto bytes = request_bytes(0xABCDEF01ull + e, request);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, FrameType::kRequest);
    EXPECT_EQ(frame.request_id, 0xABCDEF01ull + e);
    EXPECT_EQ(frame.endpoint, request.endpoint);
    EXPECT_EQ(frame.request.endpoint, request.endpoint);
    EXPECT_EQ(frame.request.read_ratio, request.read_ratio);
    EXPECT_EQ(frame.request.deadline, request.deadline);
    EXPECT_EQ(frame.request.config, request.config);
  }
}

TEST(NetWire, TenantIdRoundTripsBitExactly) {
  // Tenant 0 (the default namespace), a mid-range id, and the full 32-bit
  // extreme all survive the header round trip bit-exactly, and the decoder
  // mirrors the header tenant into the decoded request.
  for (const serve::TenantId tenant : {0u, 7u, 0xFFFFFFFFu}) {
    serve::Request request;
    request.tenant = tenant;
    request.read_ratio = 0.42;
    const auto bytes = request_bytes(11, request);
    EXPECT_EQ(bytes[kOffVersion], kProtocolVersion);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(frame.version, kProtocolVersion);
    EXPECT_EQ(frame.tenant, tenant);
    EXPECT_EQ(frame.request.tenant, tenant);
  }
}

TEST(NetWire, ResponseAndErrorCarryTheTenant) {
  {
    std::vector<std::uint8_t> bytes;
    encode_response(5, serve::Endpoint::kPredict, serve::Response{}, bytes,
                    /*tenant=*/0xDEADBEEFu);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(frame.type, FrameType::kResponse);
    EXPECT_EQ(frame.tenant, 0xDEADBEEFu);
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_error(6, WireError::kBadPayload, bytes, /*tenant=*/3u);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(frame.type, FrameType::kError);
    EXPECT_EQ(frame.tenant, 3u);
  }
}

TEST(NetWire, V1FramesDecodeIntoTheDefaultTenant) {
  // A v1 peer's frame has a 20-byte header and no tenant field; the decoder
  // must accept it, land it in tenant 0, and report version 1 so the server
  // can answer in kind. Payload bodies are identical across versions.
  serve::Request request;
  request.read_ratio = 0.37;
  request.deadline = 99;
  request.config = test_config();
  std::vector<std::uint8_t> bytes;
  encode_request(21, request, bytes, /*version=*/1);
  EXPECT_EQ(bytes[kOffVersion], 1);
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.version, 1);
  EXPECT_EQ(frame.tenant, 0u);
  EXPECT_EQ(frame.request.tenant, 0u);
  EXPECT_EQ(frame.request.read_ratio, request.read_ratio);
  EXPECT_EQ(frame.request.deadline, request.deadline);
  EXPECT_EQ(frame.request.config, request.config);
  // The same payload under a v2 header is exactly 4 bytes longer.
  std::vector<std::uint8_t> v2;
  encode_request(21, request, v2);
  EXPECT_EQ(v2.size(), bytes.size() + (kHeaderSize - kHeaderSizeV1));
}

TEST(NetWire, V1ResponseAndErrorRoundTrip) {
  {
    serve::Response response;
    response.status = serve::Status::kOk;
    response.mean = 123.5;
    std::vector<std::uint8_t> bytes;
    encode_response(8, serve::Endpoint::kPredict, response, bytes, /*tenant=*/0,
                    /*version=*/1);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(frame.version, 1);
    EXPECT_EQ(frame.response.mean, 123.5);
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_error(9, WireError::kBadFrame, bytes, /*tenant=*/0, /*version=*/1);
    EXPECT_EQ(bytes.size(), kHeaderSizeV1);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(frame.version, 1);
    EXPECT_EQ(frame.error, WireError::kBadFrame);
  }
}

TEST(NetWire, V1TruncationAtEveryLengthNeedsMore) {
  serve::Request request;
  request.read_ratio = 0.5;
  std::vector<std::uint8_t> bytes;
  encode_request(4, request, bytes, /*version=*/1);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    std::size_t consumed = 99;
    EXPECT_EQ(decode_frame(bytes.data(), len, kDefaultMaxPayload, frame, consumed),
              DecodeStatus::kNeedMore)
        << "at length " << len;
    EXPECT_EQ(consumed, 0u) << "at length " << len;
  }
}

TEST(NetWire, V1HostileLengthPrefixIsRejected) {
  std::vector<std::uint8_t> bytes;
  encode_request(4, serve::Request{}, bytes, /*version=*/1);
  patch_u32(bytes, kOffPayloadLenV1, std::numeric_limits<std::uint32_t>::max());
  Frame frame;
  std::size_t consumed = 99;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadLength);
  EXPECT_EQ(consumed, 0u);
}

TEST(NetWire, ResponseRoundTripIsBitExactForEveryStatus) {
  for (std::size_t s = 0; s < serve::kStatusCount; ++s) {
    serve::Response response;
    response.status = static_cast<serve::Status>(s);
    response.model_version = 42;
    response.mean = 8123.25;
    response.stddev = 17.5;
    response.batch_size = 7;
    response.config = test_config();
    response.predicted_throughput = 9001.125;
    response.reconfigured = (s % 2) == 0;
    response.stale = (s % 2) == 1;
    response.surrogate_evaluations = 360;

    std::vector<std::uint8_t> bytes;
    encode_response(77, serve::Endpoint::kOptimize, response, bytes);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, FrameType::kResponse);
    EXPECT_EQ(frame.request_id, 77u);
    EXPECT_EQ(frame.endpoint, serve::Endpoint::kOptimize);
    EXPECT_EQ(frame.response.status, response.status);
    EXPECT_EQ(frame.response.model_version, response.model_version);
    EXPECT_EQ(frame.response.mean, response.mean);
    EXPECT_EQ(frame.response.stddev, response.stddev);
    EXPECT_EQ(frame.response.batch_size, response.batch_size);
    EXPECT_EQ(frame.response.config, response.config);
    EXPECT_EQ(frame.response.predicted_throughput, response.predicted_throughput);
    EXPECT_EQ(frame.response.reconfigured, response.reconfigured);
    EXPECT_EQ(frame.response.stale, response.stale);
    EXPECT_EQ(frame.response.surrogate_evaluations, response.surrogate_evaluations);
  }
}

TEST(NetWire, ErrorRoundTripForEveryErrorCode) {
  for (std::size_t e = 0; e < kWireErrorCount; ++e) {
    std::vector<std::uint8_t> bytes;
    encode_error(e + 1, static_cast<WireError>(e), bytes);
    EXPECT_EQ(bytes.size(), kHeaderSize);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(bytes, frame, consumed), DecodeStatus::kOk);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, FrameType::kError);
    EXPECT_EQ(frame.request_id, e + 1);
    EXPECT_EQ(frame.error, static_cast<WireError>(e));
  }
}

TEST(NetWire, TruncationAtEveryLengthNeedsMore) {
  const auto bytes = request_bytes(5, serve::Request{});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    std::size_t consumed = 99;
    EXPECT_EQ(decode_frame(bytes.data(), len, kDefaultMaxPayload, frame, consumed),
              DecodeStatus::kNeedMore)
        << "at length " << len;
    EXPECT_EQ(consumed, 0u) << "at length " << len;
  }
}

TEST(NetWire, PipelinedFramesDecodeBackToBack) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    serve::Request request;
    request.read_ratio = 0.1 * static_cast<double>(id);
    encode_request(id, request, stream);
  }
  std::size_t pos = 0;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(stream.data() + pos, stream.size() - pos, kDefaultMaxPayload,
                           frame, consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(frame.request_id, id);
    pos += consumed;
  }
  EXPECT_EQ(pos, stream.size());
}

TEST(NetWire, GarbageMagicIsFatal) {
  auto bytes = request_bytes(1, serve::Request{});
  patch_u32(bytes, kOffMagic, 0x13371337u);
  Frame frame;
  std::size_t consumed = 99;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadMagic);
  EXPECT_EQ(consumed, 0u);
  EXPECT_FALSE(decode_recoverable(DecodeStatus::kBadMagic));
}

TEST(NetWire, UnknownVersionIsFatal) {
  // Above the current version and below the minimum (0) are both fatal:
  // only the [kMinProtocolVersion, kProtocolVersion] window decodes.
  for (const std::uint8_t hostile :
       {static_cast<std::uint8_t>(kProtocolVersion + 1), static_cast<std::uint8_t>(0)}) {
    auto bytes = request_bytes(1, serve::Request{});
    bytes[kOffVersion] = hostile;
    Frame frame;
    std::size_t consumed = 99;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadVersion);
    EXPECT_EQ(consumed, 0u);
  }
  EXPECT_FALSE(decode_recoverable(DecodeStatus::kBadVersion));
}

TEST(NetWire, HostileLengthPrefixIsRejectedBeforeBuffering) {
  auto bytes = request_bytes(1, serve::Request{});
  // A claim past max_payload must fail *now* — not park the decoder in
  // kNeedMore waiting for 4 GiB that will never come.
  patch_u32(bytes, kOffPayloadLen, std::numeric_limits<std::uint32_t>::max());
  Frame frame;
  std::size_t consumed = 99;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadLength);
  EXPECT_EQ(consumed, 0u);
  EXPECT_FALSE(decode_recoverable(DecodeStatus::kBadLength));
}

TEST(NetWire, BadFrameTypeIsRecoverableAndConsumesTheFrame) {
  auto bytes = request_bytes(9, serve::Request{});
  bytes[kOffType] = static_cast<std::uint8_t>(kFrameTypeCount);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadFrameType);
  // Recoverable: the id and the frame boundary survive so the peer can be
  // answered and the stream resynchronized at the next frame.
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.request_id, 9u);
  EXPECT_TRUE(decode_recoverable(DecodeStatus::kBadFrameType));
}

TEST(NetWire, OutOfRangeEnumBytesAreRecoverable) {
  {
    auto bytes = request_bytes(1, serve::Request{});
    bytes[kOffEndpoint] = static_cast<std::uint8_t>(serve::kEndpointCount);
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadEnum);
    EXPECT_EQ(consumed, bytes.size());
  }
  {
    // The code byte is reserved (0) in requests.
    auto bytes = request_bytes(1, serve::Request{});
    bytes[kOffCode] = 1;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadEnum);
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_response(1, serve::Endpoint::kPredict, serve::Response{}, bytes);
    bytes[kOffCode] = static_cast<std::uint8_t>(serve::kStatusCount);
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadEnum);
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_error(1, WireError::kBadFrame, bytes);
    bytes[kOffCode] = static_cast<std::uint8_t>(kWireErrorCount);
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadEnum);
  }
  {
    // The endpoint byte is reserved (0) in error frames.
    std::vector<std::uint8_t> bytes;
    encode_error(1, WireError::kBadFrame, bytes);
    bytes[kOffEndpoint] = 1;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadEnum);
  }
}

TEST(NetWire, TrailingJunkInPayloadIsBadPayload) {
  auto bytes = request_bytes(1, serve::Request{});
  const auto claimed = static_cast<std::uint32_t>(bytes.size() - kHeaderSize + 4);
  patch_u32(bytes, kOffPayloadLen, claimed);
  bytes.insert(bytes.end(), {0xAA, 0xBB, 0xCC, 0xDD});
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadPayload);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_TRUE(decode_recoverable(DecodeStatus::kBadPayload));
}

TEST(NetWire, ShortPayloadClaimIsBadPayload) {
  auto bytes = request_bytes(1, serve::Request{});
  patch_u32(bytes, kOffPayloadLen,
            static_cast<std::uint32_t>(bytes.size() - kHeaderSize - 1));
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadPayload);
}

TEST(NetWire, NonFiniteDoublesAreRejected) {
  for (const double hostile : {std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()}) {
    auto bytes = request_bytes(1, serve::Request{});
    std::vector<std::uint8_t> patched;
    put_f64(patched, hostile);
    std::memcpy(bytes.data() + kHeaderSize, patched.data(), 8);  // read_ratio field
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadPayload);
  }
}

TEST(NetWire, WrongConfigCountIsBadPayload) {
  auto bytes = request_bytes(1, serve::Request{});
  // Config count u16 sits right after read_ratio (8) + deadline (8).
  const std::size_t off = kHeaderSize + 16;
  bytes[off] = static_cast<std::uint8_t>(engine::kParamCount + 1);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadPayload);
}

TEST(NetWire, NonBooleanFlagByteIsBadPayload) {
  std::vector<std::uint8_t> bytes;
  encode_response(1, serve::Endpoint::kPredict, serve::Response{}, bytes);
  // `reconfigured` is the third-from-last field: ... | u8 | u8 | u64.
  bytes[bytes.size() - 10] = 2;
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode(bytes, frame, consumed), DecodeStatus::kBadPayload);
}

TEST(NetWire, ByteByByteFeedDecodesExactlyOnce) {
  serve::Request request;
  request.read_ratio = 0.61;
  const auto bytes = request_bytes(31, request);
  std::vector<std::uint8_t> buffered;
  int decoded = 0;
  for (const auto byte : bytes) {
    buffered.push_back(byte);
    Frame frame;
    std::size_t consumed = 0;
    const auto status = decode_frame(buffered.data(), buffered.size(),
                                     kDefaultMaxPayload, frame, consumed);
    if (status == DecodeStatus::kOk) {
      ++decoded;
      EXPECT_EQ(buffered.size(), bytes.size());
      EXPECT_EQ(frame.request_id, 31u);
    } else {
      ASSERT_EQ(status, DecodeStatus::kNeedMore);
    }
  }
  EXPECT_EQ(decoded, 1);
}

// Deterministic fuzz: random garbage and randomly mutated valid frames. The
// invariants are (1) no crash / no out-of-bounds read (ASan enforces), (2)
// consumed never exceeds the buffer, (3) kOk never comes from a frame whose
// magic was destroyed.
TEST(NetWire, FuzzedInputNeverOverconsumes) {
  Rng rng(2024);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes;
    if (round % 2 == 0) {
      const auto size = static_cast<std::size_t>(rng.bounded(256));
      bytes.resize(size);
      for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng.bounded(256));
    } else {
      serve::Request request;
      request.read_ratio = rng.uniform();
      encode_request(rng.next_u64(), request, bytes);
      const auto flips = 1 + rng.bounded(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        bytes[static_cast<std::size_t>(rng.bounded(bytes.size()))] =
            static_cast<std::uint8_t>(rng.bounded(256));
      }
    }
    Frame frame;
    std::size_t consumed = 0;
    const auto status =
        decode_frame(bytes.data(), bytes.size(), kDefaultMaxPayload, frame, consumed);
    EXPECT_LE(consumed, bytes.size());
    const bool fatal = status == DecodeStatus::kBadMagic ||
                       status == DecodeStatus::kBadVersion ||
                       status == DecodeStatus::kBadLength;
    if (status == DecodeStatus::kNeedMore || fatal) {
      EXPECT_EQ(consumed, 0u);
    }
    if (status == DecodeStatus::kOk) {
      // A mutation can legally flip the version byte to 1 (a valid v1
      // frame), so the floor is the smaller v1 header.
      EXPECT_GE(consumed, kHeaderSizeV1);
    }
  }
}

}  // namespace
}  // namespace rafiki::net
