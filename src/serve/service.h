// The concurrent tuning service (the "middleware" in the paper's title, as a
// long-running process): N worker threads answer Predict / Optimize /
// ObserveWindow requests from a bounded MPMC queue against the currently
// published model snapshot.
//
//   * Admission control — a full queue rejects with Overloaded immediately;
//     producers never block past capacity. Each request carries a deadline
//     in injected-clock ticks, checked before execution.
//   * Micro-batching — concurrent Predict requests are coalesced (up to
//     ServiceOptions::max_batch, or a real-time flush window) into a single
//     batched ensemble evaluation (SurrogateEnsemble::predict_batch).
//   * Versioned snapshots — publish() atomically swaps the model behind an
//     atomic shared_ptr; in-flight requests keep the version they started
//     with. A background retrain republishes with zero downtime.
//   * Async retraining — ObserveWindow is stale-while-revalidate: a cache
//     miss answers immediately with the current config (Response::stale set)
//     and enqueues the bucket on a dedicated RetrainWorker thread; the GA
//     never runs on a request-path worker (serve/retrain.h).
//   * Telemetry — per-endpoint latency histograms, QPS / rejection /
//     queue-depth counters, batch-size distribution, retrain queue depth and
//     latency (serve/stats.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "opt/ga.h"
#include "serve/queue.h"
#include "serve/retrain.h"
#include "serve/snapshot.h"
#include "serve/stats.h"
#include "serve/types.h"

namespace rafiki::core {
class OnlineTuner;
}

namespace rafiki::serve {

struct ServiceOptions {
  /// Worker threads spawned by start(). 0 is valid (and useful in tests):
  /// requests queue deterministically until start() is called with workers.
  std::size_t workers = 2;
  /// Bounded request queue capacity; the admission-control limit.
  std::size_t queue_capacity = 256;
  /// Micro-batcher: flush a Predict batch at this many coalesced requests...
  std::size_t max_batch = 32;
  /// ...or once this much real time has passed since the batch opened.
  std::chrono::microseconds batch_window{200};
  /// Virtual clock for request deadlines. Deterministic by construction: the
  /// default never advances, so deadlines never expire unless a clock is
  /// injected (tests drive an atomic counter; a deployment would plug in a
  /// coarse ticker).
  std::function<Tick()> clock_fn;
  /// GA budget for the Optimize endpoint.
  opt::GaOptions ga{};
  StatsOptions stats{};
  /// Background retrain worker (ObserveWindow misses, tuner prefetches).
  RetrainOptions retrain{};
  /// stop(): finish the queued retrain backlog (true) or cancel it (false).
  /// Cancelling is the default — pending optimizations have no waiter once
  /// the service is going down, and a restart simply re-enqueues on the
  /// next stale window.
  bool drain_retrain_on_stop = false;
};

class TuningService {
 public:
  explicit TuningService(ServiceOptions options = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Atomically publishes a new model version (stamping a monotonically
  /// increasing version number) and returns it. In-flight requests keep the
  /// snapshot they already resolved; new requests see this one. Safe to call
  /// from any thread, including while serving.
  std::uint64_t publish(ModelSnapshot snapshot);

  /// Currently published snapshot (null before the first publish).
  std::shared_ptr<const ModelSnapshot> snapshot() const { return registry_.get(); }
  std::uint64_t model_version() const;

  /// Enables the ObserveWindow endpoint. The tuner (which must outlive this
  /// service) becomes stale-while-revalidate: its cache misses and
  /// prefetches are routed to this service's background RetrainWorker, and
  /// its publish hook is pointed at the snapshot registry, so every freshly
  /// optimized config is republished as a new snapshot version. Call before
  /// start().
  void attach_tuner(core::OnlineTuner& tuner);

  /// Asynchronous submission. Admission control resolves immediately: the
  /// returned future is already satisfied with Overloaded / ShuttingDown
  /// when the request was not admitted.
  std::future<Response> submit(Request request);

  /// Completion callback for try_submit. Invoked exactly once, from a worker
  /// thread (or from stop()'s drain when no worker ever ran).
  using ResponseCallback = std::function<void(Response)>;

  /// Callback-style submission for event-loop callers (the net::Server) that
  /// must not block on a future. Returns kOk when the request was admitted —
  /// `done` then fires exactly once with the response — or the admission
  /// verdict (Overloaded / ShuttingDown), in which case `done` is never
  /// invoked and the caller answers inline.
  Status try_submit(Request request, ResponseCallback done);

  /// Synchronous convenience wrapper: submit + wait.
  Response call(const Request& request);

  /// Spawns the worker pool (idempotent). Requests submitted before start()
  /// wait in the queue.
  void start();
  /// Closes admission, drains the backlog, joins workers. Queued requests
  /// are still answered (drained by the workers, or failed with
  /// ShuttingDown if no worker ever ran). Idempotent.
  void stop();

  const ServiceStats& stats() const noexcept { return stats_; }
  /// Mutable stats handle for front-ends (the net::Server) that fold their
  /// wire-level telemetry into the same sink. ServiceStats is internally
  /// synchronized.
  ServiceStats& stats() noexcept { return stats_; }
  std::size_t queue_depth() const { return queue_.size(); }
  /// Retrain tasks queued behind the background worker.
  std::size_t retrain_depth() const { return retrain_.depth(); }
  /// Blocks until the background retrain worker is idle — the barrier tests
  /// and benches use to observe the post-republish state.
  void wait_retrain_idle() { retrain_.wait_idle(); }
  const ServiceOptions& options() const noexcept { return options_; }

 private:
  struct Job {
    Request request;
    /// Exactly one completion channel is armed per job: `callback` when the
    /// job came through try_submit, `promise` otherwise.
    std::promise<Response> promise;
    ResponseCallback callback;
    std::chrono::steady_clock::time_point enqueued;
  };

  Status admit(Job job);

  void worker_loop();
  void run_single(Job job);
  void run_predict_batch(std::vector<Job> batch);
  void finish(Job& job, Response response);
  Tick now_tick() const { return options_.clock_fn ? options_.clock_fn() : 0; }
  bool expired(const Request& request, Tick now) const {
    return request.deadline != kNoDeadline && now > request.deadline;
  }
  std::uint64_t publish_locked(ModelSnapshot snapshot);
  void publish_tuned(int bucket, const engine::Config& config, double predicted);

  ServiceOptions options_;
  SnapshotRegistry registry_;
  std::uint64_t version_counter_ = 0;  // guarded by publish_mutex_
  std::mutex publish_mutex_;
  /// Tuned entries published before any real snapshot exists are parked here
  /// (guarded by publish_mutex_) instead of minting a version around a
  /// default-constructed, untrained ModelSnapshot; the first real publish
  /// folds them in.
  std::map<int, TunedEntry> pending_tuned_;
  BoundedQueue<Job> queue_;
  ServiceStats stats_;
  RetrainWorker retrain_;
  std::vector<std::thread> workers_;
  std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<core::OnlineTuner*> tuner_{nullptr};
};

}  // namespace rafiki::serve
