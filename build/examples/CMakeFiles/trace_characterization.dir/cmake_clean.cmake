file(REMOVE_RECURSE
  "CMakeFiles/trace_characterization.dir/trace_characterization.cpp.o"
  "CMakeFiles/trace_characterization.dir/trace_characterization.cpp.o.d"
  "trace_characterization"
  "trace_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
