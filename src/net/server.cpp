#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace rafiki::net {
namespace {

/// How long a draining loop sleeps in poll() between completion checks.
constexpr int kDrainPollMs = 50;

double elapsed_us(std::chrono::steady_clock::time_point since,
                  std::chrono::steady_clock::time_point until) {
  return std::chrono::duration<double, std::micro>(until - since).count();
}

WireError wire_error_for(DecodeStatus status, FrameType type) {
  switch (status) {
    case DecodeStatus::kBadVersion:
      return WireError::kUnsupportedVersion;
    case DecodeStatus::kBadLength:
      return WireError::kPayloadTooLarge;
    case DecodeStatus::kBadPayload:
      return WireError::kBadPayload;
    case DecodeStatus::kBadEnum:
      return type == FrameType::kRequest ? WireError::kUnknownEndpoint
                                         : WireError::kBadFrame;
    default:
      return WireError::kBadFrame;
  }
}

}  // namespace

Server::Waker::~Waker() {
  if (read_fd >= 0) ::close(read_fd);
  if (write_fd >= 0) ::close(write_fd);
}

void Server::Waker::wake() const noexcept {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; the result is moot.
  [[maybe_unused]] const ssize_t n = ::write(write_fd, &byte, 1);
}

void Server::Waker::drain() const noexcept {
  std::uint8_t sink[256];
  while (::read(read_fd, sink, sizeof sink) > 0) {
  }
}

Server::Server(serve::TuningBackend& service, ServerOptions options)
    : service_(service), options_(std::move(options)), stats_(service.stats()) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  if (options_.read_chunk == 0) options_.read_chunk = 4096;
}

Server::~Server() { stop(); }

bool Server::start() {
  MutexLock lock(lifecycle_mutex_);
  if (started_) return !stopped_;
  if (stopped_) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "inet_pton(" + options_.host + ") failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    last_error_ = "bind(" + options_.host + ") failed: " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    last_error_ = "listen() failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  loops_.clear();
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->waker = std::make_shared<Waker>();
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      last_error_ = "pipe2() failed";
      ::close(listen_fd_);
      listen_fd_ = -1;
      loops_.clear();
      return false;
    }
    loop->waker->read_fd = pipe_fds[0];
    loop->waker->write_fd = pipe_fds[1];
    loops_.push_back(std::move(loop));
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { loop_main(i); });
  }
  started_ = true;
  return true;
}

void Server::stop() {
  {
    MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  draining_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    if (loop->waker) loop->waker->wake();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loops are gone; close anything still registered (a connection handed to
  // a loop in the instant it exited never got served — close it cleanly).
  for (auto& loop : loops_) {
    {
      // The loop threads are joined; the lock is for the analysis (and any
      // future acceptor that might outlive them), not a live race.
      MutexLock lock(loop->incoming_mutex);
      for (auto& conn : loop->incoming) {
        if (conn->fd >= 0) close_connection(*conn);
      }
      loop->incoming.clear();
    }
    for (auto& conn : loop->conns) {
      if (conn->fd >= 0) close_connection(*conn);
    }
    loop->conns.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::loop_main(std::size_t index) {
  Loop& loop = *loops_[index];
  const bool acceptor = index == 0;
  std::vector<pollfd> pfds;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  for (;;) {
    {
      MutexLock lock(loop.incoming_mutex);
      for (auto& conn : loop.incoming) loop.conns.push_back(std::move(conn));
      loop.incoming.clear();
    }
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_deadline_set) {
      drain_deadline_set = true;
      // det:ok(wall-clock): the drain grace bounds real elapsed time by design
      drain_deadline = std::chrono::steady_clock::now() + options_.drain_grace;
    }
    if (draining && loop.conns.empty()) {
      // The accept queue may still hold connections whose handshake finished
      // before the drain began — possibly with frames already buffered.
      // Closing the listener would RST them mid-request, so adopt them and
      // let the drain path answer (kShuttingDown) before closing.
      if (acceptor) do_accept(loop);
      if (loop.conns.empty()) {
        MutexLock lock(loop.incoming_mutex);
        if (loop.incoming.empty()) return;
      }
      continue;  // late handoff or backlog adoption: serve it next pass
    }

    pfds.clear();
    pfds.push_back({loop.waker->read_fd, POLLIN, 0});
    const bool poll_listen = acceptor;
    if (poll_listen) pfds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t base = pfds.size();
    for (const auto& conn : loop.conns) {
      short events = 0;
      // dead is loop-thread-local state (see server.h): relaxed suffices.
      if (!conn->read_closed && !conn->fatal &&
          !conn->dead.load(std::memory_order_relaxed)) {
        events = static_cast<short>(events | POLLIN);
      }
      {
        MutexLock out_lock(conn->out_mutex);
        if (conn->opos < conn->obuf.size()) events = static_cast<short>(events | POLLOUT);
      }
      pfds.push_back({conn->fd, events, 0});
    }
    // do_accept below may append to loop.conns; only the first `polled`
    // entries have a pollfd, so bound the revents walk by this snapshot.
    const std::size_t polled = loop.conns.size();

    ::poll(pfds.data(), pfds.size(), draining ? kDrainPollMs : -1);
    loop.waker->drain();
    if (poll_listen && (pfds[1].revents & POLLIN) != 0) do_accept(loop);

    for (std::size_t i = 0; i < polled; ++i) {
      const ConnectionPtr& conn = loop.conns[i];
      const short revents = pfds[base + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) handle_read(*conn);
      process_frames(conn);
      flush(*conn);
    }

    for (std::size_t i = 0; i < loop.conns.size();) {
      const ConnectionPtr& conn = loop.conns[i];
      bool close = should_close(*conn);
      if (!close && draining && idle(*conn)) {
        // Catch bytes that raced in just before (or during) the drain and
        // answer them (kShuttingDown). An idle connection is then the
        // peer's to release: a client mid-burst may have frames on the wire
        // that a momentary idle observation would lose, so hold the
        // connection until its FIN arrives (read_closed -> should_close) —
        // or the drain grace expires, which bounds stop() against silent
        // peers.
        handle_read(*conn);
        process_frames(conn);
        flush(*conn);
        // det:ok(wall-clock): the drain grace bounds real elapsed time by design
        const bool grace_expired = std::chrono::steady_clock::now() >= drain_deadline;
        close = should_close(*conn) || (idle(*conn) && grace_expired);
      }
      if (close) {
        close_connection(*conn);
        loop.conns.erase(loop.conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

void Server::do_accept(Loop& loop) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient error): try again next poll
    // Approximate admission bound: closes on other loops may lag a beat,
    // which only makes the cap momentarily conservative. Relaxed is enough.
    if (open_connections_.load(std::memory_order_relaxed) >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    stats_.record_connection_open();

    // During a drain, sibling loops may already have exited; keep backlog
    // adoptions on the accepting loop so every registered connection is
    // polled until it is answered and closed. The drain grace still bounds
    // how long any of them can linger.
    const bool draining = draining_.load(std::memory_order_acquire);
    Loop& target = draining ? loop : *loops_[next_loop_];
    if (!draining) next_loop_ = (next_loop_ + 1) % loops_.size();
    conn->waker = target.waker;
    if (&target == &loop) {
      loop.conns.push_back(std::move(conn));
    } else {
      {
        MutexLock lock(target.incoming_mutex);
        target.incoming.push_back(std::move(conn));
      }
      target.waker->wake();
    }
  }
}

void Server::handle_read(Connection& conn) {
  if (conn.read_closed || conn.fatal || conn.dead.load(std::memory_order_relaxed)) return;
  // Bound unprocessed buffering: one oversized-frame claim is rejected at
  // decode, so two max frames of slack is plenty.
  const std::size_t cap = 2 * (options_.max_payload + kHeaderSize);
  for (;;) {
    if (conn.rbuf.size() - conn.rpos >= cap) return;
    const std::size_t old = conn.rbuf.size();
    conn.rbuf.resize(old + options_.read_chunk);
    const ssize_t n = ::recv(conn.fd, conn.rbuf.data() + old, options_.read_chunk, 0);
    if (n > 0) {
      conn.rbuf.resize(old + static_cast<std::size_t>(n));
      stats_.record_wire_read(static_cast<std::size_t>(n));
      continue;
    }
    conn.rbuf.resize(old);
    if (n == 0) {
      conn.read_closed = true;  // peer FIN; finish in-flight work, then close
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    // Loop-thread-only flag (see server.h): relaxed store, no ordering needed.
    conn.dead.store(true, std::memory_order_relaxed);
    return;
  }
}

void Server::process_frames(const ConnectionPtr& conn) {
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status =
        decode_frame(conn->rbuf.data() + conn->rpos, conn->rbuf.size() - conn->rpos,
                     options_.max_payload, frame, consumed);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kOk) {
      stats_.record_frame_in();
      conn->rpos += consumed;
      // Adopt the peer's dialect: every answer from here on is encoded in
      // the version of the last well-formed frame it sent.
      conn->wire_version = frame.version;
      if (frame.type == FrameType::kRequest) {
        handle_request(conn, frame);
      } else {
        // A client must only send requests; answer the misuse, keep the
        // stream (the frame itself was well-formed).
        queue_error(*conn, frame.request_id, WireError::kBadFrame, frame.tenant);
      }
      continue;
    }
    stats_.record_decode_error();
    const WireError error = wire_error_for(status, frame.type);
    if (decode_recoverable(status)) {
      conn->rpos += consumed;
      queue_error(*conn, frame.request_id, error);
      continue;
    }
    // Fatal: the stream offset is untrustworthy. One last error frame (id 0:
    // no header could be believed), then close once it flushes.
    queue_error(*conn, 0, error);
    conn->fatal = true;
    break;
  }
  if (conn->rpos == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rpos = 0;
  } else if (conn->rpos > 0) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<std::ptrdiff_t>(conn->rpos));
    conn->rpos = 0;
  }
}

void Server::handle_request(const ConnectionPtr& conn, const Frame& frame) {
  const std::uint64_t id = frame.request_id;
  const serve::Endpoint endpoint = frame.endpoint;
  const serve::TenantId tenant = frame.tenant;

  if (draining_.load(std::memory_order_acquire)) {
    serve::Response response;
    response.status = serve::Status::kShuttingDown;
    queue_response(*conn, id, endpoint, response, tenant);
    return;
  }
  // Loop-thread admission check: we see our own increments; a worker's
  // decrement arriving late only over-rejects for one pass. Relaxed is fine.
  if (conn->in_flight.load(std::memory_order_relaxed) >= options_.max_pipeline) {
    // Per-connection backpressure surfaces on the wire instead of stalling
    // TCP: the client sees a typed kOverloaded and can back off.
    serve::Response response;
    response.status = serve::Status::kOverloaded;
    queue_response(*conn, id, endpoint, response, tenant);
    return;
  }

  // det:ok(wall-clock): reporting-only wire-latency timestamp
  const auto t0 = std::chrono::steady_clock::now();
  // The submit handoff (queue mutex) publishes this increment to workers.
  conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  serve::ServiceStats* stats = &stats_;
  const std::shared_ptr<Waker> waker = conn->waker;
  // The callback snapshots the peer's dialect at submit time: wire_version
  // is loop-thread-owned, so a worker thread must not read it later.
  const std::uint8_t version = conn->wire_version;
  const serve::Status admitted = service_.try_submit(
      frame.request,
      [conn, waker, stats, id, endpoint, tenant, version, t0](serve::Response response) {
        // Runs on a service worker thread. Touches only ref-counted state
        // (connection buffers, the waker pipe) — never the Server itself.
        std::vector<std::uint8_t> bytes;
        encode_response(id, endpoint, response, bytes, tenant, version);
        {
          MutexLock lock(conn->out_mutex);
          conn->obuf.insert(conn->obuf.end(), bytes.begin(), bytes.end());
        }
        stats->record_frame_out();
        // det:ok(wall-clock): reporting-only wire-latency measurement
        const auto t1 = std::chrono::steady_clock::now();
        stats->record_wire_latency(endpoint, elapsed_us(t0, t1));
        conn->in_flight.fetch_sub(1, std::memory_order_release);
        waker->wake();
      });
  if (admitted != serve::Status::kOk) {
    // Not admitted — the callback will never fire. Answer inline with the
    // admission verdict (Overloaded / ShuttingDown).
    // Same-thread undo of the increment above; nothing to publish.
    conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
    serve::Response response;
    response.status = admitted;
    queue_response(*conn, id, endpoint, response, tenant);
  }
}

void Server::queue_response(Connection& conn, std::uint64_t request_id,
                            serve::Endpoint endpoint, const serve::Response& response,
                            serve::TenantId tenant) {
  std::vector<std::uint8_t> bytes;
  encode_response(request_id, endpoint, response, bytes, tenant, conn.wire_version);
  {
    MutexLock lock(conn.out_mutex);
    conn.obuf.insert(conn.obuf.end(), bytes.begin(), bytes.end());
  }
  stats_.record_frame_out();
  stats_.record_wire_latency(endpoint, 0.0);  // answered inline, no queueing
}

void Server::queue_error(Connection& conn, std::uint64_t request_id, WireError error,
                         serve::TenantId tenant) {
  std::vector<std::uint8_t> bytes;
  encode_error(request_id, error, bytes, tenant, conn.wire_version);
  {
    MutexLock lock(conn.out_mutex);
    conn.obuf.insert(conn.obuf.end(), bytes.begin(), bytes.end());
  }
  stats_.record_frame_out();
  stats_.record_error_frame();
}

void Server::flush(Connection& conn) {
  if (conn.dead.load(std::memory_order_relaxed)) return;
  MutexLock lock(conn.out_mutex);
  while (conn.opos < conn.obuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.obuf.data() + conn.opos,
                             conn.obuf.size() - conn.opos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.opos += static_cast<std::size_t>(n);
      stats_.record_wire_write(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;  // POLLOUT resumes
    if (n < 0 && errno == EINTR) continue;
    conn.dead.store(true, std::memory_order_relaxed);  // peer is gone; drop the rest
    conn.obuf.clear();
    conn.opos = 0;
    return;
  }
  conn.obuf.clear();
  conn.opos = 0;
}

bool Server::idle(Connection& conn) const {
  if (conn.fatal || conn.dead.load(std::memory_order_relaxed) || conn.read_closed) {
    return false;
  }
  // Acquire pairs with the callback's fetch_sub(release): once in_flight
  // reads 0 here, the worker's obuf append is visible too.
  if (conn.in_flight.load(std::memory_order_acquire) != 0) return false;
  if (conn.rpos < conn.rbuf.size()) return false;
  MutexLock lock(conn.out_mutex);
  return conn.opos >= conn.obuf.size();
}

bool Server::should_close(Connection& conn) const {
  if (conn.dead.load(std::memory_order_relaxed)) return true;
  if (!conn.fatal && !conn.read_closed) return false;
  // Acquire pairs with the callback's fetch_sub(release); see idle().
  if (conn.in_flight.load(std::memory_order_acquire) != 0) return false;
  MutexLock lock(conn.out_mutex);
  return conn.opos >= conn.obuf.size();
}

void Server::close_connection(Connection& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
    stats_.record_connection_close();
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace rafiki::net
