#include "ml/matrix.h"

#include <cmath>
#include <stdexcept>

namespace rafiki::ml {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  // Upper-triangle rank-1 accumulation; the straight-line inner loop keeps
  // the hot path (Gauss-Newton Hessian of the LM trainer) vectorizable.
  Matrix out(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      double* out_row = &out(i, i);
      for (std::size_t j = i; j < cols_; ++j) {
        out_row[j - i] += xi * x[j];
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

std::vector<double> Matrix::transpose_times(std::span<const double> v) const {
  if (v.size() != rows_) throw std::invalid_argument("Matrix::transpose_times: shape");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto x = row(r);
    if (v[r] == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += x[c] * v[r];
  }
  return out;
}

std::vector<double> Matrix::times(std::span<const double> v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::times: shape");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto x = row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += x[c] * v[c];
    out[r] = s;
  }
  return out;
}

Matrix& Matrix::add_diagonal(double value) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
  return *this;
}

bool Matrix::cholesky(Matrix& lower) const {
  if (rows_ != cols_) return false;
  const std::size_t n = rows_;
  lower = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= lower(i, k) * lower(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) return false;
        lower(i, i) = std::sqrt(s);
      } else {
        lower(i, j) = s / lower(j, j);
      }
    }
  }
  return true;
}

std::vector<double> Matrix::solve_spd(std::span<const double> b) const {
  Matrix lower;
  if (b.size() != rows_ || !cholesky(lower)) return {};
  const std::size_t n = rows_;
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= lower(i, k) * y[k];
    y[i] = s / lower(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lower(k, ii) * x[k];
    x[ii] = s / lower(ii, ii);
  }
  return x;
}

double Matrix::trace_inverse_spd() const {
  Matrix lower;
  if (!cholesky(lower)) return -1.0;
  // trace(A^-1) = sum of squared entries of L^-1 (column-wise forward solves).
  const std::size_t n = rows_;
  double trace = 0.0;
  std::vector<double> col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = i == j ? 1.0 : 0.0;
      for (std::size_t k = (i == 0 ? 0 : j); k < i; ++k) s -= lower(i, k) * col[k];
      col[i] = i >= j ? s / lower(i, i) : 0.0;
    }
    for (std::size_t i = j; i < n; ++i) trace += col[i] * col[i];
  }
  return trace;
}

}  // namespace rafiki::ml
