# Empty compiler generated dependencies file for rafiki_util.
# This may be replaced when dependencies are built.
