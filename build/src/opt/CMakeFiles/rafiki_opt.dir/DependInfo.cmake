
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/baselines.cpp" "src/opt/CMakeFiles/rafiki_opt.dir/baselines.cpp.o" "gcc" "src/opt/CMakeFiles/rafiki_opt.dir/baselines.cpp.o.d"
  "/root/repo/src/opt/ga.cpp" "src/opt/CMakeFiles/rafiki_opt.dir/ga.cpp.o" "gcc" "src/opt/CMakeFiles/rafiki_opt.dir/ga.cpp.o.d"
  "/root/repo/src/opt/space.cpp" "src/opt/CMakeFiles/rafiki_opt.dir/space.cpp.o" "gcc" "src/opt/CMakeFiles/rafiki_opt.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rafiki_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
