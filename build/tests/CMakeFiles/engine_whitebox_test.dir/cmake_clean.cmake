file(REMOVE_RECURSE
  "CMakeFiles/engine_whitebox_test.dir/engine_whitebox_test.cpp.o"
  "CMakeFiles/engine_whitebox_test.dir/engine_whitebox_test.cpp.o.d"
  "engine_whitebox_test"
  "engine_whitebox_test.pdb"
  "engine_whitebox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_whitebox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
