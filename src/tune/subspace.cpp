#include "tune/subspace.h"

#include <algorithm>
#include <string>

#include "ml/anova.h"

namespace rafiki::tune {

ActiveSubspace::ActiveSubspace(SubspaceOptions options) : options_(options) {}

bool ActiveSubspace::is_active(engine::ParamId id) const {
  return std::find(active_.begin(), active_.end(), id) != active_.end();
}

bool ActiveSubspace::recut(const std::vector<KnobScore>& ranking) {
  if (frozen_) return false;
  ++recuts_;

  // Canonicalize: a redundant knob's evidence belongs to its canonical knob
  // (they move the same mechanism), so fold the larger score forward and
  // keep only canonical knobs as candidates.
  std::vector<double> folded(engine::kParamCount, 0.0);
  for (const auto& entry : ranking) {
    if (entry.id == engine::ParamId::kCount) continue;
    const auto& spec = engine::param_spec(entry.id);
    const auto target =
        spec.redundant_with == engine::ParamId::kCount ? entry.id : spec.redundant_with;
    auto& slot = folded[static_cast<std::size_t>(target)];
    slot = std::max(slot, entry.score);
  }

  struct Candidate {
    engine::ParamId id;
    double boosted;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < engine::kParamCount; ++i) {
    const auto id = static_cast<engine::ParamId>(i);
    if (engine::param_spec(id).redundant_with != engine::ParamId::kCount) continue;
    double score = folded[i];
    // Hysteresis: incumbents compete with a (1 + h) boost, so a challenger
    // must beat an active knob by that margin to displace it.
    if (is_active(id)) score *= 1.0 + options_.hysteresis;
    candidates.push_back({id, score});
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.boosted != b.boosted) return a.boosted > b.boosted;
    return a.id < b.id;
  });

  std::vector<ml::AnovaRanking> scored;
  scored.reserve(candidates.size());
  for (const auto& c : candidates) {
    scored.push_back({std::string(engine::param_name(c.id)), c.boosted, 0.0, 1.0});
  }
  std::size_t k = ml::distinct_drop_cutoff(scored, options_.min_k, options_.max_k);
  k = std::min(k, candidates.size());

  std::vector<engine::ParamId> next;
  next.reserve(k);
  for (std::size_t i = 0; i < k; ++i) next.push_back(candidates[i].id);
  std::sort(next.begin(), next.end());  // genome layout is registry order

  if (next == active_) return false;
  active_ = std::move(next);
  ++changes_;
  return true;
}

void ActiveSubspace::force(std::vector<engine::ParamId> params) {
  std::sort(params.begin(), params.end());
  params.erase(std::unique(params.begin(), params.end()), params.end());
  if (params != active_) ++changes_;
  active_ = std::move(params);
  frozen_ = true;
}

opt::SearchSpace ActiveSubspace::space() const { return map().reduced(); }

opt::SubspaceMap ActiveSubspace::map() const {
  std::vector<opt::Dimension> full;
  full.reserve(engine::kParamCount);
  std::vector<double> pinned(engine::kParamCount, 0.0);
  for (const auto& spec : engine::param_registry()) {
    full.push_back({std::string(spec.name), spec.type != engine::ParamType::kReal,
                    spec.lo, spec.hi});
    pinned[static_cast<std::size_t>(spec.id)] = pinned_.get(spec.id);
  }
  std::vector<std::size_t> active;
  active.reserve(active_.size());
  for (auto id : active_) active.push_back(static_cast<std::size_t>(id));
  return opt::SubspaceMap(std::move(full), std::move(active), std::move(pinned));
}

engine::Config ActiveSubspace::to_config(const std::vector<double>& genome) const {
  engine::Config config = pinned_;
  const std::size_t n = std::min(genome.size(), active_.size());
  for (std::size_t i = 0; i < n; ++i) config.set(active_[i], genome[i]);
  return config;
}

std::vector<double> ActiveSubspace::to_genome(const engine::Config& config) const {
  return config.vector_for(active_);
}

}  // namespace rafiki::tune
