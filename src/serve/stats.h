// Thread-safe service telemetry: per-endpoint latency histograms (reusing
// util/histogram for the p50/p99 quantiles), admission/rejection/QPS
// counters, queue-depth samples, and the micro-batcher's batch-size
// distribution. Dumpable through the repo's standard ASCII-table/CSV
// renderer. Latencies are wall-clock measurements and reporting-only: no
// request result depends on them.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/types.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/table.h"

namespace rafiki::serve {

struct StatsOptions {
  /// Latency histogram range [0, latency_hi_us) in microseconds; samples
  /// beyond are clamped into the last bin.
  double latency_hi_us = 20000.0;
  std::size_t latency_bins = 400;
  /// Batch-size histogram range [1, max_batch + 1).
  std::size_t max_batch = 64;
  /// Retrain latency histogram range [0, retrain_hi_us): background GA runs
  /// are orders of magnitude slower than request service.
  double retrain_hi_us = 5.0e6;
  std::size_t retrain_bins = 200;
};

class ServiceStats {
 public:
  explicit ServiceStats(StatsOptions options = {});

  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    /// Turned away at admission: the bounded queue was full. Only
    /// record_reject touches this — never accepted work.
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t not_ready = 0;
    /// Turned away at admission: the service was already stopping.
    std::uint64_t rejected_shutdown = 0;
    /// Accepted, then finished with kShuttingDown (e.g. drained by stop()
    /// with no worker). Distinct from rejected_shutdown so admission-reject
    /// columns stay truthful and `accepted == completed` after drain.
    std::uint64_t failed_shutdown = 0;
    /// Accepted, then finished with kOverloaded (not currently produced by
    /// any path; kept so the failed-after-accept split is total).
    std::uint64_t failed_overload = 0;
    /// Responses served with Response::stale set (kObserveWindow only): the
    /// cache-missed window answered with the previous config while a
    /// background optimization was pending.
    std::uint64_t stale = 0;
  };

  /// Background-retrain telemetry (the RetrainWorker's counters).
  struct RetrainCounters {
    std::uint64_t runs = 0;       ///< tasks executed by the worker thread
    std::uint64_t coalesced = 0;  ///< enqueues absorbed by a pending same-bucket task
    std::uint64_t rejected = 0;   ///< enqueues dropped on a full retrain queue
    std::uint64_t cancelled = 0;  ///< queued tasks cancelled at shutdown
  };

  /// Wire-level telemetry from the RPC front-end (net::Server). Folded into
  /// the same sink as the request counters so one stats object describes the
  /// whole serving process.
  struct WireCounters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t frames_in = 0;   ///< well-formed frames decoded off sockets
    std::uint64_t frames_out = 0;  ///< response + error frames queued for write
    /// Malformed frames (bad magic/version/length/enum/payload). Recoverable
    /// ones are answered with an error frame; fatal ones close the connection.
    std::uint64_t decode_errors = 0;
    std::uint64_t error_frames_sent = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    /// Connections still open: accepted - closed.
    std::uint64_t active() const noexcept { return connections_accepted - connections_closed; }
  };

  /// A request passed admission control; `queue_depth` is sampled just after.
  void record_accept(Endpoint endpoint, std::size_t queue_depth);
  /// A request was turned away at admission (Overloaded / ShuttingDown).
  void record_reject(Endpoint endpoint, Status reason);
  /// A request ran (or was triaged) by a worker; latency is queue + service
  /// time in microseconds.
  void record_done(Endpoint endpoint, Status status, double latency_us);
  /// One Predict micro-batch was executed with this many coalesced requests.
  void record_batch(std::size_t batch_size);
  /// A stale-marked response was served on this endpoint.
  void record_stale(Endpoint endpoint);

  // --- wire-level recording (called by net::Server) ---
  void record_connection_open();
  void record_connection_close();
  /// Bytes moved on sockets, counted per read()/write() chunk.
  void record_wire_read(std::size_t bytes);
  void record_wire_write(std::size_t bytes);
  void record_frame_in();
  void record_frame_out();
  void record_decode_error();
  void record_error_frame();
  /// Wire-side latency (decode -> response queued for write) per endpoint.
  void record_wire_latency(Endpoint endpoint, double latency_us);

  /// One background retrain task finished; latency is the task's run time.
  void record_retrain(double latency_us);
  /// A retrain task was enqueued; `queue_depth` is sampled just after.
  void record_retrain_enqueue(std::size_t queue_depth);
  void record_retrain_coalesced();
  void record_retrain_rejected();
  void record_retrain_cancelled(std::uint64_t count);

  Counters counters(Endpoint endpoint) const;
  Counters totals() const;
  RetrainCounters retrain_counters() const;
  WireCounters wire_counters() const;
  double wire_latency_quantile(Endpoint endpoint, double q) const;
  double mean_wire_latency_us(Endpoint endpoint) const;
  double latency_quantile(Endpoint endpoint, double q) const;
  double mean_latency_us(Endpoint endpoint) const;
  double retrain_latency_quantile(double q) const;
  double mean_retrain_latency_us() const;
  double mean_retrain_depth() const;
  double max_retrain_depth() const;
  double mean_batch_size() const;
  double max_batch_size() const;
  double batch_quantile(double q) const;
  double mean_queue_depth() const;
  double max_queue_depth() const;
  std::uint64_t batches() const;

  /// Per-endpoint summary table ("endpoint | accepted | ok | overloaded |
  /// deadline | p50 | p99 | mean"); render() / to_csv() for output.
  Table table() const;
  /// Wire-level summary ("metric | value" rows: connections, frames, bytes,
  /// decode errors, per-endpoint wire p50/p99).
  Table wire_table() const;

 private:
  struct PerEndpoint {
    Counters counters;
    Histogram latency;
    OnlineStats latency_stats;
    Histogram wire_latency;
    OnlineStats wire_latency_stats;
    explicit PerEndpoint(const StatsOptions& options)
        : latency(0.0, options.latency_hi_us, options.latency_bins),
          wire_latency(0.0, options.latency_hi_us, options.latency_bins) {}
  };

  mutable std::mutex mutex_;
  StatsOptions options_;
  std::vector<PerEndpoint> per_endpoint_;
  Histogram batch_hist_;
  OnlineStats batch_stats_;
  OnlineStats depth_stats_;
  std::uint64_t batches_ = 0;
  WireCounters wire_;
  RetrainCounters retrain_;
  Histogram retrain_hist_;
  OnlineStats retrain_stats_;
  OnlineStats retrain_depth_stats_;
};

}  // namespace rafiki::serve
