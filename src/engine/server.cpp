#include "engine/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rafiki::engine {
namespace {

constexpr std::size_t kEpochOps = 256;
/// Number of pre-existing SSTables created by preload in size-tiered mode,
/// with geometric size fractions so the loaded state is bucket-stable.
constexpr double kPreloadFractions[] = {0.5, 0.25, 0.125, 0.0625, 0.0625};
/// Commit-log fsync service time (one write-channel operation).
constexpr double kSyncServiceUs = 400.0;
/// Index-probe inflation when the index summary budget is exceeded.
constexpr double kSummaryPenalty = 1.3;
constexpr double kSummaryBytesPerKey = 2.0;
constexpr double kKeyCacheBytesPerEntry = 64.0;

std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Server::Server(Config config, Hardware hardware, CostModel costs)
    : config_(std::move(config)), hardware_(hardware), costs_(costs) {
  chunk_kb_ = config_.get(ParamId::kCompressionChunkKb);
  sstable_target_bytes_ =
      config_.get(ParamId::kSstableSizeMb) * 1024.0 * 1024.0 * hardware_.mem_scale;
  leveled_ = config_.get_int(ParamId::kCompactionMethod) == 1;

  const double scale_bytes = 1024.0 * 1024.0 * hardware_.mem_scale;
  const double chunk_bytes = chunk_kb_ * 1024.0;
  const double nominal_row_bytes = 256.0 + Memtable::kRowOverheadBytes;
  row_cache_.set_capacity(static_cast<std::size_t>(
      config_.get(ParamId::kRowCacheSizeMb) * scale_bytes / nominal_row_bytes));
  key_cache_.set_capacity(static_cast<std::size_t>(
      config_.get(ParamId::kKeyCacheSizeMb) * scale_bytes / kKeyCacheBytesPerEntry));
  file_cache_.set_capacity(static_cast<std::size_t>(
      config_.get(ParamId::kFileCacheSizeMb) * scale_bytes / chunk_bytes));
  os_cache_.set_capacity(
      static_cast<std::size_t>(hardware_.os_cache_mb * scale_bytes / chunk_bytes));
}

double Server::memtable_space_bytes() const {
  double space = config_.get(ParamId::kMemtableSpaceMb) * 1024.0 * 1024.0 *
                 hardware_.mem_scale;
  if (config_.get_int(ParamId::kMemtableAllocationType) == 1) {
    space *= 1.15;  // offheap buffers escape JVM heap pressure
  }
  return space;
}

double Server::flush_threshold_bytes() const {
  return config_.get(ParamId::kMemtableCleanupThreshold) * memtable_space_bytes();
}

std::uint64_t Server::page_id(std::uint32_t table_id, std::size_t rank,
                              double row_bytes) const {
  const auto chunk = static_cast<std::uint64_t>(
      static_cast<double>(rank) * row_bytes / (chunk_kb_ * 1024.0));
  return (static_cast<std::uint64_t>(table_id) << 32) | chunk;
}

void Server::preload(std::span<const std::int64_t> keys, std::uint32_t value_bytes,
                     double version_dup) {
  if (!tables_.empty() || !active_.empty()) {
    throw std::logic_error("Server::preload: store is not empty");
  }
  const double avg_row =
      static_cast<double>(value_bytes) + static_cast<double>(Memtable::kRowOverheadBytes);
  const double bloom_fp = config_.get(ParamId::kBloomFilterFpChance);

  if (!leveled_) {
    // Striped assignment: every table spans the whole key range (overlapping
    // runs, as a size-tiered store looks after sustained load), with
    // geometric sizes so the bucketing does not immediately re-merge them.
    // Extra row versions from the update history land in additional tables,
    // which is exactly STCS's read-amplification mechanism.
    constexpr std::size_t kTables = std::size(kPreloadFractions);
    double cumulative[kTables];
    double acc = 0.0;
    for (std::size_t i = 0; i < kTables; ++i) {
      acc += kPreloadFractions[i];
      cumulative[i] = acc;
    }
    std::vector<std::vector<std::int64_t>> groups(kTables);
    for (auto key : keys) {
      const double u = static_cast<double>(mix64(static_cast<std::uint64_t>(key)) >> 11) *
                       0x1.0p-53;
      std::size_t g = 0;
      while (g + 1 < kTables && u > cumulative[g]) ++g;
      groups[g].push_back(key);
      // Older versions of this key in other tables.
      const double du = static_cast<double>(
                            mix64(static_cast<std::uint64_t>(key) * 0x2545f4914f6cdd1dull) >>
                            11) *
                        0x1.0p-53;
      int extras = static_cast<int>(version_dup);
      if (du < version_dup - static_cast<double>(extras)) ++extras;
      for (int e = 1; e <= extras; ++e) {
        const std::size_t other =
            (g + static_cast<std::size_t>(e)) % kTables;
        groups[other].push_back(key);
      }
    }
    for (auto& group : groups) {
      if (group.empty()) continue;
      tables_.emplace_back(next_table_id_++, std::move(group), avg_row, bloom_fp, 0);
    }
  } else {
    // Weighted striping across levels 1..L sized by the 10x level targets, so
    // each level spans the whole key range like a production leveled store.
    LeveledPlanner planner(sstable_target_bytes_);
    const double total_bytes = avg_row * static_cast<double>(keys.size());
    int max_level = 1;
    double capacity = planner.level_target_bytes(1);
    while (capacity < total_bytes && max_level < 7) {
      ++max_level;
      capacity += planner.level_target_bytes(max_level);
    }
    std::vector<double> cumulative(static_cast<std::size_t>(max_level));
    double acc = 0.0;
    for (int level = 1; level <= max_level; ++level) {
      acc += planner.level_target_bytes(level) / capacity;
      cumulative[static_cast<std::size_t>(level - 1)] = acc;
    }
    std::vector<std::vector<std::int64_t>> per_level(static_cast<std::size_t>(max_level));
    for (auto key : keys) {
      const double u = static_cast<double>(mix64(static_cast<std::uint64_t>(key) ^
                                                 0xabcdef1234567ull) >>
                                           11) *
                       0x1.0p-53;
      std::size_t level = 0;
      while (level + 1 < per_level.size() && u > cumulative[level]) ++level;
      per_level[level].push_back(key);
    }
    for (int level = 1; level <= max_level; ++level) {
      auto& level_keys = per_level[static_cast<std::size_t>(level - 1)];
      if (level_keys.empty()) continue;
      auto split = SSTable::split_into_tables(next_table_id_, std::move(level_keys),
                                              avg_row, sstable_target_bytes_, bloom_fp,
                                              level);
      for (auto& table : split) tables_.push_back(std::move(table));
    }
    // Recent update versions not yet promoted out of L0: leveled compaction
    // retires versions continuously, so only a fraction of the update
    // history is still duplicated.
    const double survive = std::min(1.0, 0.25 * version_dup);
    std::vector<std::int64_t> l0_keys;
    for (auto key : keys) {
      const double du = static_cast<double>(
                            mix64(static_cast<std::uint64_t>(key) * 0x2545f4914f6cdd1dull) >>
                            11) *
                        0x1.0p-53;
      if (du < survive) l0_keys.push_back(key);
    }
    if (!l0_keys.empty()) {
      tables_.emplace_back(next_table_id_++, std::move(l0_keys), avg_row, bloom_fp, 0);
    }
  }

  // Freshly-loaded data sits in the OS page cache to the extent it fits, so
  // measurement does not begin from an artificial all-cold state.
  for (const auto& table : tables_) {
    const auto pages = static_cast<std::uint64_t>(
        table.bytes() / (chunk_kb_ * 1024.0)) + 1;
    for (std::uint64_t chunk = 0; chunk < pages; ++chunk) {
      os_cache_.insert((static_cast<std::uint64_t>(table.id()) << 32) | chunk);
    }
  }
  for (const auto& table : tables_) total_table_keys_ += table.key_count();
  max_tables_ = std::max(max_tables_, tables_.size());
  level_index_dirty_ = true;
}

const SSTable* Server::find_table(std::uint32_t id) const {
  for (const auto& table : tables_) {
    if (table.id() == id) return &table;
  }
  return nullptr;
}

void Server::rebuild_level_index() {
  level_index_.clear();
  int max_level = 0;
  for (const auto& table : tables_) max_level = std::max(max_level, table.level());
  level_index_.resize(static_cast<std::size_t>(max_level) + 1);
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    level_index_[static_cast<std::size_t>(tables_[i].level())].push_back(
        static_cast<std::uint32_t>(i));
  }
  for (auto& level : level_index_) {
    std::sort(level.begin(), level.end(), [&](std::uint32_t a, std::uint32_t b) {
      return tables_[a].min_key() < tables_[b].min_key();
    });
  }
  level_index_dirty_ = false;
}

std::vector<const SSTable*> Server::read_candidates(std::int64_t key) const {
  std::vector<const SSTable*> out;
  if (!leveled_) {
    for (const auto& table : tables_) {
      if (table.range_covers(key)) out.push_back(&table);
    }
    return out;
  }
  auto* self = const_cast<Server*>(this);
  if (level_index_dirty_) self->rebuild_level_index();
  if (level_index_.empty()) return out;
  for (auto idx : level_index_[0]) {
    if (tables_[idx].range_covers(key)) out.push_back(&tables_[idx]);
  }
  for (std::size_t level = 1; level < level_index_.size(); ++level) {
    const auto& row = level_index_[level];
    // Tables within a level are non-overlapping and sorted by min key:
    // binary search for the unique candidate.
    auto it = std::upper_bound(row.begin(), row.end(), key,
                               [&](std::int64_t k, std::uint32_t idx) {
                                 return k < tables_[idx].min_key();
                               });
    if (it == row.begin()) continue;
    const auto& table = tables_[*(it - 1)];
    if (table.range_covers(key)) out.push_back(&table);
  }
  return out;
}

double Server::access_page(std::uint64_t page_id, Acc& acc) {
  ++file_lookups_;
  if (file_cache_.capacity() && file_cache_.touch(page_id)) {
    ++file_hits_;
    return 0.0;  // decompressed chunk already in the in-heap cache
  }
  ++os_lookups_;
  const double decompress =
      costs_.chunk_decompress_fixed_us + costs_.chunk_decompress_us_per_kb * chunk_kb_;
  if (os_cache_.touch(page_id)) {
    ++os_hits_;
    file_cache_.insert(page_id);
    acc.cpu_us += costs_.os_cache_hit_us + decompress;
    return costs_.os_cache_hit_us + decompress;
  }
  // Cold read: disk service time is charged to the disk resource via the
  // epoch accounting; the op's latency sees service plus queueing.
  ++acc.disk_random_reads;
  ++disk_random_reads_;
  os_cache_.insert(page_id);
  file_cache_.insert(page_id);
  const double queue_mult = 1.0 / (1.0 - std::min(disk_read_rho_, 0.9));
  acc.cpu_us += costs_.os_cache_hit_us + decompress;
  return costs_.os_cache_hit_us + decompress + costs_.disk_read_wait_us +
         hardware_.random_read_us * queue_mult;
}

void Server::execute_read(std::int64_t key, Acc& acc) {
  ++reads_;
  ++acc.reads;
  double cpu = costs_.read_base_us;
  double latency_extra = 0.0;  // non-CPU waits

  if (row_cache_.capacity() && row_cache_.touch(key)) {
    cpu += costs_.row_cache_hit_us;
    acc.cpu_us += cpu;
    acc.read_lat_us += cpu;
    return;
  }

  cpu += costs_.memtable_probe_us;
  (void)active_.contains(key);
  for (const auto& job : frozen_) {
    cpu += costs_.memtable_probe_us * 0.5;
    (void)job.memtable.contains(key);
  }

  const bool summary_tight =
      static_cast<double>(total_table_keys_) * kSummaryBytesPerKey >
      config_.get(ParamId::kIndexSummaryCapacityMb) * 1024.0 * 1024.0 *
          hardware_.mem_scale;
  const double summary_mult = summary_tight ? kSummaryPenalty : 1.0;

  double probes = 0.0;
  const double before_cpu = acc.cpu_us;
  for (const SSTable* table : read_candidates(key)) {
    cpu += costs_.bloom_check_us;
    if (!table->maybe_contains(key)) continue;
    probes += 1.0;
    const bool key_cached = key_cache_.capacity() && key_cache_.touch(key);
    cpu += costs_.index_probe_us * (key_cached ? 0.3 : 1.0) * summary_mult;
    if (!table->has_key(key)) continue;  // bloom false positive: index-only probe
    if (table->is_tombstone(key)) continue;  // deletion marker: no data page
    latency_extra += access_page(page_id(table->id(), table->key_rank(key),
                                         table->avg_row_bytes()),
                                 acc);
    cpu += costs_.data_read_us + 0.02 * config_.get(ParamId::kColumnIndexSizeKb);
  }
  // access_page charged its CPU directly into acc; separate it from waits.
  const double page_cpu = acc.cpu_us - before_cpu;
  latency_extra -= page_cpu;
  probes_total_ += probes;

  if (key_cache_.capacity()) key_cache_.insert(key);
  if (row_cache_.capacity()) row_cache_.insert(key);

  acc.cpu_us += cpu;
  acc.read_lat_us += cpu + page_cpu + latency_extra;
}

void Server::execute_write(const workload::Op& op, Acc& acc) {
  ++writes_;
  ++acc.writes;
  const bool is_delete = op.kind == workload::Op::Kind::kDelete;
  const double kb =
      (static_cast<double>(op.value_bytes) + Memtable::kRowOverheadBytes) / 1024.0;
  double cpu = costs_.write_base_us + costs_.memtable_insert_us +
               costs_.commitlog_us_per_kb * kb;
  if (config_.get_int(ParamId::kMemtableAllocationType) == 1) {
    cpu += 1.0;  // offheap buffer copy
  }
  const double write_queue_mult = 1.0 / (1.0 - std::min(disk_write_rho_, 0.7));
  const double wait = costs_.commitlog_wait_us * write_queue_mult;

  if (is_delete) {
    active_.put_tombstone(op.key);
  } else {
    active_.put(op.key, op.value_bytes);
  }
  row_cache_.erase(op.key);
  acc.commitlog_kb += kb;

  if (static_cast<double>(active_.bytes()) >= flush_threshold_bytes()) {
    freeze_memtable(acc);
  }
  acc.cpu_us += cpu;
  acc.write_lat_us += cpu + wait;
}

void Server::freeze_memtable(Acc& acc) {
  if (active_.empty()) return;
  // Backpressure (Section 2.2.1): all memtables — active plus flushing —
  // share one space budget; when a freeze would overflow it, writes stall
  // until the oldest flush drains.
  while (!frozen_.empty() &&
         frozen_bytes_ + static_cast<double>(active_.bytes()) > memtable_space_bytes()) {
    FlushJob& oldest = frozen_.front();
    const double stall_us = oldest.remaining_kb / costs_.flush_writer_kbps * 1e6;
    acc.stall_us += stall_us;
    stall_us_total_ += stall_us;
    frozen_bytes_ -= static_cast<double>(oldest.memtable.bytes());
    complete_flush(oldest);
    frozen_.pop_front();
  }
  FlushJob job;
  job.memtable = std::move(active_);
  active_ = Memtable{};
  // The per-SSTable fixed cost (metadata, bloom build, fsync) rides along as
  // a KB-equivalent so small flushes stay disproportionately expensive.
  job.total_kb = static_cast<double>(job.memtable.bytes()) / 1024.0 +
                 costs_.flush_fixed_us / costs_.flush_cpu_us_per_kb;
  job.remaining_kb = job.total_kb;
  frozen_bytes_ += static_cast<double>(job.memtable.bytes());
  frozen_.push_back(std::move(job));
}

void Server::complete_flush(FlushJob& job) {
  std::vector<std::int64_t> keys;
  std::vector<std::int64_t> tombstones;
  keys.reserve(job.memtable.row_count());
  double bytes = 0.0;
  std::size_t data_rows = 0;
  // det:ok(unordered-iter): sink is order-insensitive — the SSTable ctor sorts
  for (const auto& [key, row] : job.memtable.rows()) {
    keys.push_back(key);
    if (row.tombstone) {
      tombstones.push_back(key);
    } else {
      bytes += static_cast<double>(row.value_bytes) + Memtable::kRowOverheadBytes;
      ++data_rows;
    }
  }
  if (keys.empty()) return;
  const double avg_row =
      data_rows ? bytes / static_cast<double>(data_rows) : SSTable::kTombstoneBytes;
  tables_.emplace_back(next_table_id_, std::move(keys), avg_row,
                       config_.get(ParamId::kBloomFilterFpChance), 0,
                       std::move(tombstones));
  // Just-flushed data is hot in the page cache.
  const auto& table = tables_.back();
  const auto pages = static_cast<std::uint64_t>(table.bytes() / (chunk_kb_ * 1024.0)) + 1;
  for (std::uint64_t chunk = 0; chunk < pages; ++chunk) {
    os_cache_.insert((static_cast<std::uint64_t>(next_table_id_) << 32) | chunk);
  }
  ++next_table_id_;
  total_table_keys_ += table.key_count();
  ++flushes_;
  max_tables_ = std::max(max_tables_, tables_.size());
  level_index_dirty_ = true;
  plan_compactions();
}

void Server::plan_compactions() {
  const auto max_jobs = static_cast<std::size_t>(config_.get_int(ParamId::kConcurrentCompactors));
  while (active_compactions_.size() < max_jobs) {
    std::optional<CompactionPlan> plan;
    if (leveled_) {
      plan = LeveledPlanner(sstable_target_bytes_).plan(tables_, busy_);
    } else {
      plan = SizeTieredPlanner(config_.get_int(ParamId::kMinCompactionThreshold),
                               config_.get_int(ParamId::kMaxCompactionThreshold))
                 .plan(tables_, busy_);
    }
    if (!plan || plan->input_ids.size() < 2) break;
    CompactionJob job;
    job.plan = std::move(*plan);
    job.total_kb = costs_.compaction_fixed_us / costs_.compaction_cpu_us_per_kb;
    for (auto id : job.plan.input_ids) {
      const SSTable* table = find_table(id);
      job.total_kb += table ? table->bytes() / 1024.0 : 0.0;
      busy_.insert(id);
    }
    job.remaining_kb = job.total_kb;
    active_compactions_.push_back(std::move(job));
  }
}

void Server::complete_compaction(const CompactionJob& job) {
  std::vector<const SSTable*> inputs;
  for (auto id : job.plan.input_ids) {
    if (const SSTable* table = find_table(id)) inputs.push_back(table);
  }
  if (inputs.empty()) return;

  const double bloom_fp = config_.get(ParamId::kBloomFilterFpChance);

  // Tombstones may be evicted only when the merge is guaranteed to cover
  // every older version of its keys: a leveled merge into the deepest level,
  // or a size-tiered merge that includes the oldest table in the store.
  bool drop_tombstones = false;
  if (leveled_) {
    int deepest = 0;
    for (const auto& table : tables_) deepest = std::max(deepest, table.level());
    drop_tombstones = job.plan.output_level >= deepest;
  } else {
    std::uint32_t oldest_id = tables_.empty() ? 0 : tables_.front().id();
    for (const auto& table : tables_) oldest_id = std::min(oldest_id, table.id());
    drop_tombstones = std::find(job.plan.input_ids.begin(), job.plan.input_ids.end(),
                                oldest_id) != job.plan.input_ids.end();
  }
  std::size_t tombstones_in = 0;
  for (const SSTable* table : inputs) tombstones_in += table->tombstone_count();

  std::vector<SSTable> outputs;
  if (leveled_ && job.plan.output_level >= 1) {
    const auto merged = SSTable::merge(0, inputs, bloom_fp, job.plan.output_level,
                                       drop_tombstones);
    outputs = SSTable::split_into_tables(
        next_table_id_, {merged.keys().begin(), merged.keys().end()},
        merged.avg_row_bytes(), sstable_target_bytes_, bloom_fp, job.plan.output_level,
        {merged.tombstones().begin(), merged.tombstones().end()});
  } else {
    outputs.push_back(
        SSTable::merge(next_table_id_++, inputs, bloom_fp, 0, drop_tombstones));
  }
  std::size_t tombstones_out = 0;
  for (const auto& table : outputs) tombstones_out += table.tombstone_count();
  tombstones_purged_ += tombstones_in - std::min(tombstones_in, tombstones_out);

  // Retire inputs, install outputs.
  std::unordered_set<std::uint32_t> dead(job.plan.input_ids.begin(),
                                         job.plan.input_ids.end());
  for (const auto& table : tables_) {
    if (dead.contains(table.id())) total_table_keys_ -= table.key_count();
  }
  std::erase_if(tables_, [&](const SSTable& table) { return dead.contains(table.id()); });
  for (auto id : job.plan.input_ids) busy_.erase(id);
  for (auto& table : outputs) {
    total_table_keys_ += table.key_count();
    // Compaction output was just written through the page cache.
    const auto pages = static_cast<std::uint64_t>(table.bytes() / (chunk_kb_ * 1024.0)) + 1;
    for (std::uint64_t chunk = 0; chunk < pages; ++chunk) {
      os_cache_.insert((static_cast<std::uint64_t>(table.id()) << 32) | chunk);
    }
    tables_.push_back(std::move(table));
  }
  ++compactions_;
  compacted_kb_ += job.total_kb;
  max_tables_ = std::max(max_tables_, tables_.size());
  level_index_dirty_ = true;
}

double Server::advance_time(Acc& acc) {
  const auto n = static_cast<double>(acc.reads + acc.writes);
  if (n == 0.0) return 0.0;

  // Thread-contention inflation: beyond ~4 runnable threads per core the
  // scheduler and shared locks charge every operation a little extra.
  const double read_share = static_cast<double>(acc.reads) / n;
  const double write_share = static_cast<double>(acc.writes) / n;
  const double threads =
      config_.get(ParamId::kConcurrentWrites) * write_share +
      config_.get(ParamId::kConcurrentReads) * read_share +
      static_cast<double>(active_compactions_.size()) +
      static_cast<double>(std::min<std::size_t>(
          frozen_.size(),
          static_cast<std::size_t>(config_.get_int(ParamId::kMemtableFlushWriters))));
  const double excess = std::max(
      0.0, threads - costs_.contention_free_threads_per_core *
                         static_cast<double>(hardware_.cores));
  const double inflation_us = costs_.contention_us_per_thread * excess;

  const double mod = modulation_ ? modulation_(clock_us_ / 1e6) : 1.0;
  const double fg_cpu = (acc.cpu_us + inflation_us * n) * mod;
  const double fg_disk_read =
      static_cast<double>(acc.disk_random_reads) * hardware_.random_read_us;
  const double fg_disk_write = acc.commitlog_kb * hardware_.seq_write_us_per_kb;

  const double cores = static_cast<double>(hardware_.cores);
  const double t_cpu = fg_cpu / cores;
  const double t_disk_read = fg_disk_read / hardware_.disk_read_channels;
  const double t_disk_write = fg_disk_write / hardware_.disk_write_channels;
  const double t_lat_read =
      (acc.read_lat_us + inflation_us * static_cast<double>(acc.reads)) * mod /
      config_.get(ParamId::kConcurrentReads);
  const double t_lat_write =
      (acc.write_lat_us + inflation_us * static_cast<double>(acc.writes)) * mod /
      config_.get(ParamId::kConcurrentWrites);
  const double t_lat = std::max(t_lat_read, t_lat_write);

  // Background work (flushes, compactions, fsyncs) runs concurrently and
  // steals capacity from foreground traffic: model it as a per-microsecond
  // co-demand that stretches the epoch. Rates are capped so background can
  // take at most kBgMaxShare of any resource — beyond that, jobs back up
  // (compaction debt) instead of freezing the foreground.
  const auto writers = std::min<std::size_t>(
      frozen_.size(), static_cast<std::size_t>(config_.get_int(ParamId::kMemtableFlushWriters)));
  double flush_rate = static_cast<double>(writers) * costs_.flush_writer_kbps / 1e6;
  double comp_rate = 0.0;
  if (!active_compactions_.empty()) {
    comp_rate = std::min(static_cast<double>(active_compactions_.size()) *
                             costs_.compactor_kbps,
                         config_.get(ParamId::kCompactionThroughputMbs) * 1024.0) /
                1e6;
  }
  const double flush_disk_per_kb =
      hardware_.seq_write_us_per_kb *
      (config_.get_bool(ParamId::kTrickleFsync) ? 0.95 : 1.0);
  const double sync_rate =
      kSyncServiceUs / (config_.get(ParamId::kCommitlogSyncPeriodMs) * 1000.0);

  constexpr double kBgMaxShare = 0.6;
  auto bg_scale_for = [&](double rate_on_resource, double capacity) {
    const double cap = kBgMaxShare * capacity;
    return rate_on_resource > cap ? cap / rate_on_resource : 1.0;
  };
  double bg_cpu_rate = flush_rate * costs_.flush_cpu_us_per_kb +
                       comp_rate * costs_.compaction_cpu_us_per_kb;
  double bg_dr_rate = comp_rate * hardware_.seq_read_us_per_kb;
  double bg_dw_rate = flush_rate * flush_disk_per_kb +
                      comp_rate * hardware_.seq_write_us_per_kb + sync_rate;
  double scale = 1.0;
  scale = std::min(scale, bg_scale_for(bg_cpu_rate, cores));
  scale = std::min(scale, bg_scale_for(bg_dr_rate, hardware_.disk_read_channels));
  scale = std::min(scale, bg_scale_for(bg_dw_rate, hardware_.disk_write_channels));
  flush_rate *= scale;
  comp_rate *= scale;
  bg_cpu_rate *= scale;
  bg_dr_rate *= scale;
  bg_dw_rate *= scale;

  const double t_cpu_tot = fg_cpu / std::max(0.25 * cores, cores - bg_cpu_rate);
  const double t_dr_tot =
      fg_disk_read /
      std::max(0.25 * hardware_.disk_read_channels, hardware_.disk_read_channels - bg_dr_rate);
  const double t_dw_tot =
      fg_disk_write / std::max(0.25 * hardware_.disk_write_channels,
                               hardware_.disk_write_channels - bg_dw_rate);

  read_latency_total_us_ += acc.read_lat_us * mod;
  write_latency_total_us_ += acc.write_lat_us * mod;

  double t = std::max({t_cpu, t_disk_read, t_disk_write, t_cpu_tot, t_dr_tot, t_dw_tot,
                       t_lat, n * 0.4});
  {
    const double terms[5] = {std::max(t_cpu, t_cpu_tot), std::max(t_disk_read, t_dr_tot),
                             std::max(t_disk_write, t_dw_tot), t_lat_read, t_lat_write};
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < 5; ++i) {
      if (terms[i] > terms[argmax]) argmax = i;
    }
    ++binding_counts_[argmax];
    ++epochs_;
  }
  t += acc.stall_us;
  progress_background(t, flush_rate, comp_rate);

  // Utilization feedback for next epoch's queueing multipliers.
  disk_read_rho_ = std::clamp((fg_disk_read + bg_dr_rate * t) /
                                  (hardware_.disk_read_channels * t),
                              0.0, 0.85);
  disk_write_rho_ = std::clamp((fg_disk_write + bg_dw_rate * t) /
                                   (hardware_.disk_write_channels * t),
                               0.0, 0.85);
  return t;
}

void Server::progress_background(double t_us, double flush_rate_kb_per_us,
                                 double comp_rate_kb_per_us) {
  // Flushes: the granted rate is shared FIFO among the active writers.
  double flush_kb = flush_rate_kb_per_us * t_us;
  const auto writers = std::min<std::size_t>(
      frozen_.size(), static_cast<std::size_t>(config_.get_int(ParamId::kMemtableFlushWriters)));
  for (std::size_t i = 0; i < writers && flush_kb > 0.0; ++i) {
    FlushJob& job = frozen_[i];
    const double kb = std::min(job.remaining_kb, flush_kb);
    job.remaining_kb -= kb;
    flush_kb -= kb;
  }
  for (auto it = frozen_.begin(); it != frozen_.end();) {
    if (it->remaining_kb <= 1e-9) {
      frozen_bytes_ -= static_cast<double>(it->memtable.bytes());
      complete_flush(*it);
      it = frozen_.erase(it);
    } else {
      ++it;
    }
  }

  // Compactions: granted rate split evenly across active jobs.
  if (!active_compactions_.empty()) {
    const double share =
        comp_rate_kb_per_us * t_us / static_cast<double>(active_compactions_.size());
    bool completed_any = false;
    for (auto& job : active_compactions_) {
      job.remaining_kb -= std::min(job.remaining_kb, share);
      if (job.remaining_kb <= 1e-9) completed_any = true;
    }
    if (completed_any) {
      std::vector<CompactionJob> done;
      std::erase_if(active_compactions_, [&](CompactionJob& job) {
        if (job.remaining_kb <= 1e-9) {
          done.push_back(std::move(job));
          return true;
        }
        return false;
      });
      for (const auto& job : done) complete_compaction(job);
      plan_compactions();
    }
  }
}

void Server::record_window(double t_us, std::size_t ops_done) {
  if (!record_windows_ || t_us <= 0.0) return;
  double start = clock_us_ - t_us;
  const double rate = static_cast<double>(ops_done) / t_us;
  while (start < clock_us_) {
    const double window_end = window_start_us_ + window_us_;
    const double segment_end = std::min(clock_us_, window_end);
    window_ops_ += rate * (segment_end - start);
    if (segment_end >= window_end) {
      window_throughput_.push_back(window_ops_ / (window_us_ / 1e6));
      window_ops_ = 0.0;
      window_start_us_ = window_end;
    }
    start = segment_end;
  }
}

double Server::step(std::span<const workload::Op> ops) {
  Acc acc;
  for (const auto& op : ops) {
    if (op.kind == workload::Op::Kind::kRead) {
      execute_read(op.key, acc);
    } else {
      execute_write(op, acc);
    }
  }
  const double t = advance_time(acc);
  clock_us_ += t;
  record_window(t, ops.size());
  return t;
}

void Server::reset_counters() {
  reads_ = writes_ = flushes_ = compactions_ = 0;
  compacted_kb_ = 0.0;
  probes_total_ = 0.0;
  file_lookups_ = file_hits_ = os_lookups_ = os_hits_ = 0;
  disk_random_reads_ = 0;
  stall_us_total_ = 0.0;
  max_tables_ = tables_.size();
}

RunStats Server::run(workload::Generator& generator, const RunOptions& opts) {
  rng_.reseed(opts.seed);
  record_windows_ = opts.record_windows;
  window_us_ = opts.window_s * 1e6;
  window_start_us_ = clock_us_;
  window_ops_ = 0.0;
  window_throughput_.clear();

  const double clock_before = clock_us_;
  const std::size_t reads_before = reads_, writes_before = writes_;
  const double read_lat_before = read_latency_total_us_;
  const double write_lat_before = write_latency_total_us_;
  const std::size_t flushes_before = flushes_, compactions_before = compactions_;
  const double compacted_before = compacted_kb_;
  const double probes_before = probes_total_;
  const std::uint64_t fl_before = file_lookups_, fh_before = file_hits_;
  const std::uint64_t ol_before = os_lookups_, oh_before = os_hits_;
  const std::size_t dr_before = disk_random_reads_;
  const double stall_before = stall_us_total_;
  const auto binding_before = binding_counts_;
  const std::size_t epochs_before = epochs_;
  const std::size_t tombs_before = tombstones_purged_;

  std::vector<workload::Op> buffer;
  buffer.reserve(kEpochOps);
  std::size_t done = 0;
  while (done < opts.ops) {
    buffer.clear();
    const std::size_t n = std::min(kEpochOps, opts.ops - done);
    for (std::size_t i = 0; i < n; ++i) buffer.push_back(generator.next());
    step(buffer);
    done += n;
  }

  RunStats stats;
  stats.ops = done;
  stats.virtual_seconds = (clock_us_ - clock_before) / 1e6;
  stats.throughput_ops =
      stats.virtual_seconds > 0.0 ? static_cast<double>(done) / stats.virtual_seconds : 0.0;
  if (opts.measurement_noise_sd > 0.0) {
    stats.throughput_ops *= std::max(0.1, 1.0 + rng_.gaussian(0.0, opts.measurement_noise_sd));
  }
  stats.reads = reads_ - reads_before;
  stats.writes = writes_ - writes_before;
  stats.mean_read_latency_us =
      stats.reads ? (read_latency_total_us_ - read_lat_before) /
                        static_cast<double>(stats.reads)
                  : 0.0;
  stats.mean_write_latency_us =
      stats.writes ? (write_latency_total_us_ - write_lat_before) /
                         static_cast<double>(stats.writes)
                   : 0.0;
  stats.flushes = flushes_ - flushes_before;
  stats.compactions = compactions_ - compactions_before;
  stats.compacted_kb = compacted_kb_ - compacted_before;
  stats.avg_sstables_probed =
      stats.reads ? (probes_total_ - probes_before) / static_cast<double>(stats.reads) : 0.0;
  const auto fl = file_lookups_ - fl_before;
  stats.file_cache_hit_rate =
      fl ? static_cast<double>(file_hits_ - fh_before) / static_cast<double>(fl) : 0.0;
  const auto ol = os_lookups_ - ol_before;
  stats.os_cache_hit_rate =
      ol ? static_cast<double>(os_hits_ - oh_before) / static_cast<double>(ol) : 0.0;
  stats.disk_random_reads = disk_random_reads_ - dr_before;
  stats.write_stall_s = (stall_us_total_ - stall_before) / 1e6;
  stats.final_sstable_count = tables_.size();
  stats.max_sstable_count = max_tables_;
  stats.tombstones_purged = tombstones_purged_ - tombs_before;
  stats.window_throughput = window_throughput_;
  const auto epochs = epochs_ - epochs_before;
  if (epochs > 0) {
    for (std::size_t i = 0; i < stats.binding_fractions.size(); ++i) {
      stats.binding_fractions[i] =
          static_cast<double>(binding_counts_[i] - binding_before[i]) /
          static_cast<double>(epochs);
    }
  }
  return stats;
}

}  // namespace rafiki::engine
