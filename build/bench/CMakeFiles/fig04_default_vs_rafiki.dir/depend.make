# Empty dependencies file for fig04_default_vs_rafiki.
# This may be replaced when dependencies are built.
