// Figure 3: patterns of workload for MG-RAST — read/write ratio per
// 15-minute window over 4 days, with abrupt regime transitions. Also
// exercises the characterization pipeline (Section 3.3): stationary-window
// search and the exponential key-reuse-distance fit.
#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "workload/characterize.h"
#include "workload/mgrast.h"

using namespace rafiki;

namespace {

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (double v : values) {
    const auto idx = static_cast<std::size_t>(std::clamp(v, 0.0, 0.999) * 8.0);
    out += kLevels[idx];
  }
  return out;
}

}  // namespace

int main() {
  benchutil::section("Figure 3: MG-RAST workload pattern (4 days, 15-minute windows)");

  const auto windows = workload::synthesize_mgrast_windows({}, /*seed=*/31);
  std::printf("windows: %zu, read ratio per window (rows of 96 = 1 day), "
              "' '=write-heavy .. '#'=read-only\n\n", windows.size());
  std::vector<double> series;
  series.reserve(windows.size());
  for (const auto& w : windows) series.push_back(w.read_ratio);
  for (std::size_t day = 0; day * 96 < series.size(); ++day) {
    const auto begin = series.begin() + static_cast<std::ptrdiff_t>(day * 96);
    const auto end = series.begin() +
                     static_cast<std::ptrdiff_t>(std::min(series.size(), (day + 1) * 96));
    std::printf("day %zu |%s|\n", day + 1, sparkline({begin, end}).c_str());
  }

  std::size_t read_heavy = 0, write_heavy = 0, mixed = 0, abrupt = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] >= 0.7) {
      ++read_heavy;
    } else if (series[i] <= 0.3) {
      ++write_heavy;
    } else {
      ++mixed;
    }
    if (i && std::abs(series[i] - series[i - 1]) > 0.3) ++abrupt;
  }
  const auto n_windows = static_cast<double>(series.size());
  Table stats({"statistic", "value"});
  stats.add_row({"read-heavy windows (RR >= 0.7)",
                 Table::pct(100.0 * static_cast<double>(read_heavy) / n_windows)});
  stats.add_row({"write-heavy windows (RR <= 0.3)",
                 Table::pct(100.0 * static_cast<double>(write_heavy) / n_windows)});
  stats.add_row({"mixed windows", Table::pct(100.0 * static_cast<double>(mixed) / n_windows)});
  stats.add_row({"abrupt transitions (|dRR| > 0.3)", std::to_string(abrupt)});
  stats.add_row({"mean RR", Table::num(mean(series), 3)});
  benchutil::emit(stats, "Window statistics");

  // Characterization pass over a query-level slice of the trace.
  workload::WorkloadSpec base;
  base.krd_mean = 20000.0;
  const std::vector<workload::TraceWindow> slice(windows.begin(), windows.begin() + 48);
  const auto records = workload::synthesize_mgrast_queries(slice, 4000, base, 900.0, 77);
  const std::vector<double> candidates = {112.5, 225.0, 450.0, 900.0, 1800.0};
  const auto ch = workload::characterize(records, candidates);

  Table character({"characterization output", "value"});
  character.add_row({"stationary window (s)", Table::num(ch.window_s, 1)});
  character.add_row({"KRD exponential mean (queries)", Table::num(ch.krd_mean, 0)});
  character.add_row({"insert fraction of writes", Table::num(ch.insert_fraction, 2)});
  character.add_row({"mean payload (bytes)", Table::num(ch.mean_value_bytes, 0)});
  benchutil::emit(character, "Section 3.3 characterization of the synthesized trace");

  benchutil::compare("workload regime mix", "read-heavy most of the time, bursty writes",
                     Table::pct(100.0 * static_cast<double>(read_heavy) / n_windows) +
                         " read-heavy, " +
                         std::to_string(abrupt) + " abrupt transitions");
  benchutil::compare("stationary RR window", "15 minutes",
                     Table::num(ch.window_s / 60.0, 1) + " minutes");
  return 0;
}
