#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rafiki::ml {

void KnnRegressor::fit(const std::vector<std::vector<double>>& X, std::span<const double> y,
                       const KnnOptions& options) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("KnnRegressor::fit: bad training set");
  }
  options_ = options;
  norm_.fit_columns(X);
  X_.resize(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) X_[i] = norm_.map_row(X[i]);
  y_.assign(y.begin(), y.end());
}

double KnnRegressor::predict(std::span<const double> x) const {
  if (X_.empty()) throw std::logic_error("KnnRegressor::predict: not trained");
  const auto q = norm_.map_row(x);
  std::vector<std::pair<double, std::size_t>> distances(X_.size());
  for (std::size_t i = 0; i < X_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t c = 0; c < q.size(); ++c) {
      const double d = X_[i][c] - q[c];
      d2 += d * d;
    }
    distances[i] = {d2, i};
  }
  const std::size_t k = std::min(options_.k, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());
  double weighted = 0.0, weight_sum = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double d = std::sqrt(distances[j].first);
    if (d < 1e-12) return y_[distances[j].second];  // exact match
    const double w = options_.weight_power > 0.0 ? std::pow(d, -options_.weight_power) : 1.0;
    weighted += w * y_[distances[j].second];
    weight_sum += w;
  }
  return weighted / weight_sum;
}

}  // namespace rafiki::ml
