file(REMOVE_RECURSE
  "CMakeFiles/cluster_partition_test.dir/cluster_partition_test.cpp.o"
  "CMakeFiles/cluster_partition_test.dir/cluster_partition_test.cpp.o.d"
  "cluster_partition_test"
  "cluster_partition_test.pdb"
  "cluster_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
