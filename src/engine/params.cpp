#include "engine/params.h"

#include <algorithm>
#include <cmath>

namespace rafiki::engine {
namespace {

constexpr std::array<ParamSpec, kParamCount> kRegistry = {{
    {ParamId::kCompactionMethod, "compaction_method", ParamType::kCategorical, 0, 1, 0, 2,
     "SSTable compaction strategy: 0 = SizeTiered (write-friendly), 1 = Leveled (read-friendly)"},
    {ParamId::kConcurrentWrites, "concurrent_writes", ParamType::kInteger, 16, 96, 32, 5,
     "Writer thread-pool size; recommended 8x cores"},
    {ParamId::kFileCacheSizeMb, "file_cache_size_in_mb", ParamType::kInteger, 64, 2048, 512, 5,
     "Buffer cache holding decompressed SSTable chunks"},
    {ParamId::kMemtableCleanupThreshold, "memtable_cleanup_threshold", ParamType::kReal, 0.1,
     0.8, 0.33, 5, "Fraction of memtable space that triggers a flush"},
    {ParamId::kConcurrentCompactors, "concurrent_compactors", ParamType::kInteger, 1, 16, 2, 5,
     "Number of simultaneous compaction tasks"},

    {ParamId::kConcurrentReads, "concurrent_reads", ParamType::kInteger, 16, 96, 32, 5,
     "Reader thread-pool size"},
    {ParamId::kMemtableFlushWriters, "memtable_flush_writers", ParamType::kInteger, 1, 8, 2, 4,
     "Parallel memtable flush tasks", ParamId::kMemtableCleanupThreshold},
    {ParamId::kMemtableSpaceMb, "memtable_space_in_mb", ParamType::kInteger, 1024, 4096, 2048, 4,
     "Total heap/offheap budget for all memtables", ParamId::kMemtableCleanupThreshold},
    {ParamId::kRowCacheSizeMb, "row_cache_size_in_mb", ParamType::kInteger, 0, 512, 0, 4,
     "Whole-row cache; of limited value at MG-RAST's key-reuse distances"},
    {ParamId::kKeyCacheSizeMb, "key_cache_size_in_mb", ParamType::kInteger, 16, 512, 100, 4,
     "Cache of key -> SSTable offsets, skips index probes"},
    {ParamId::kCommitlogSyncPeriodMs, "commitlog_sync_period_in_ms", ParamType::kInteger, 50,
     10000, 10000, 4, "Periodic commit-log fsync interval"},
    {ParamId::kCommitlogSegmentSizeMb, "commitlog_segment_size_in_mb", ParamType::kInteger, 8,
     64, 32, 4, "Commit-log segment rotation size"},
    {ParamId::kSstableSizeMb, "sstable_size_in_mb", ParamType::kInteger, 64, 512, 160, 4,
     "Target SSTable size for leveled compaction"},
    {ParamId::kMinCompactionThreshold, "min_compaction_threshold", ParamType::kInteger, 3, 12,
     4, 4, "Similar-sized SSTables required to trigger a size-tiered merge"},
    {ParamId::kMaxCompactionThreshold, "max_compaction_threshold", ParamType::kInteger, 8, 64,
     32, 4, "Maximum SSTables merged by one size-tiered compaction"},
    {ParamId::kCompactionThroughputMbs, "compaction_throughput_mb_per_sec", ParamType::kInteger,
     8, 256, 64, 4, "Throttle on total background compaction bandwidth"},
    {ParamId::kBloomFilterFpChance, "bloom_filter_fp_chance", ParamType::kReal, 0.001, 0.2,
     0.01, 4, "Bloom-filter false-positive rate (memory vs wasted probes)"},
    {ParamId::kCompressionChunkKb, "compression_chunk_length_in_kb", ParamType::kInteger, 32,
     128, 64, 4, "Compression chunk size; larger chunks cost more per cold read"},
    {ParamId::kTrickleFsync, "trickle_fsync", ParamType::kCategorical, 0, 1, 0, 2,
     "Incremental fsync of SSTable writes"},
    {ParamId::kColumnIndexSizeKb, "column_index_size_in_kb", ParamType::kInteger, 4, 256, 64, 4,
     "Granularity of the per-row column index"},
    {ParamId::kIndexSummaryCapacityMb, "index_summary_capacity_in_mb", ParamType::kInteger, 16,
     512, 128, 4, "Memory budget for in-heap index summaries"},
    {ParamId::kMemtableAllocationType, "memtable_allocation_type", ParamType::kCategorical, 0,
     1, 0, 2, "0 = heap_buffers, 1 = offheap_buffers"},
}};

}  // namespace

double ParamSpec::snap(double value) const noexcept {
  double v = std::clamp(value, lo, hi);
  if (type != ParamType::kReal) v = std::round(v);
  return v;
}

bool ParamSpec::feasible(double value) const noexcept {
  if (value < lo || value > hi) return false;
  if (type != ParamType::kReal && value != std::round(value)) return false;
  return true;
}

const std::array<ParamSpec, kParamCount>& param_registry() noexcept { return kRegistry; }

const ParamSpec& param_spec(ParamId id) noexcept {
  return kRegistry[static_cast<std::size_t>(id)];
}

const std::vector<ParamId>& key_params() {
  static const std::vector<ParamId> kKeys = {
      ParamId::kCompactionMethod, ParamId::kConcurrentWrites, ParamId::kFileCacheSizeMb,
      ParamId::kMemtableCleanupThreshold, ParamId::kConcurrentCompactors};
  return kKeys;
}

std::string_view param_name(ParamId id) noexcept { return param_spec(id).name; }

ParamId find_param(std::string_view name) noexcept {
  for (const auto& spec : kRegistry) {
    if (spec.name == name) return spec.id;
  }
  return ParamId::kCount;
}

}  // namespace rafiki::engine
