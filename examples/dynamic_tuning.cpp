// Dynamic-workload tuning: replay a day of MG-RAST-style traffic and let the
// OnlineTuner reconfigure the store as the read ratio shifts (the paper's
// motivating scenario, Sections 1 and 2.4.1).
//
// For each 15-minute window the example measures the store's throughput
// under (a) the static default configuration and (b) the configuration the
// online controller holds for that window, charging a reconfiguration
// penalty whenever the controller switches configs.
#include <cstdio>

#include "collect/runner.h"
#include "core/online.h"
#include "workload/forecast.h"
#include "workload/mgrast.h"

using namespace rafiki;

int main() {
  // Train Rafiki offline on a reduced lattice.
  core::RafikiOptions options;
  options.workload_grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  options.n_configs = 14;
  options.collect.measure.ops = 30000;
  options.ensemble.n_nets = 10;
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  std::puts("offline phase: collecting + training the surrogate...");
  rafiki.train(rafiki.collect());

  // One synthesized day of 15-minute windows.
  workload::MgRastTraceOptions trace_options;
  trace_options.duration_s = 24 * 3600.0;
  const auto windows = workload::synthesize_mgrast_windows(trace_options, /*seed=*/5);

  core::OnlineTuner tuner(rafiki);
  // Future-work extension (Section 6): forecast the next window and prefetch
  // configurations for the likely regimes, so a regime switch never waits on
  // the optimizer inside the critical window.
  workload::WorkloadForecaster forecaster;
  collect::MeasureOptions measure = options.collect.measure;
  measure.ops = 15000;  // per-window measurement
  measure.warmup_ops = 3000;

  double static_total = 0.0, tuned_total = 0.0;
  double downtime_windows = 0.0;
  std::printf("\n%6s %5s %12s %12s %s\n", "window", "RR", "default", "tuned", "action");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const double rr = windows[w].read_ratio;
    workload::WorkloadSpec spec = options.base_workload;
    spec.read_ratio = rr;
    measure.seed = 9000 + w;

    const auto decision = tuner.on_window(rr);
    const double static_tput =
        collect::measure_throughput(engine::Config::defaults(), spec, measure);
    double tuned_tput = collect::measure_throughput(decision.config, spec, measure);
    if (decision.reconfigured) {
      // Rolling restart: a slice of the window runs degraded.
      const double penalty = tuner.options().reconfigure_downtime_s / 900.0;
      tuned_tput *= 1.0 - penalty;
      downtime_windows += penalty;
    }
    static_total += static_tput;
    tuned_total += tuned_tput;
    if (w < 12 || decision.reconfigured) {
      std::printf("%6zu %4.0f%% %12.0f %12.0f %s\n", w, rr * 100, static_tput, tuned_tput,
                  decision.reconfigured ? "reconfigured" : "");
    }

    forecaster.observe(rr);
    // Warm the tuner's cache for the two most likely next regimes.
    const auto ranked = forecaster.likely_next();
    for (std::size_t k = 0; k < 2 && k < ranked.size(); ++k) {
      tuner.prefetch(ranked[k].second);
    }
  }

  const auto n = static_cast<double>(windows.size());
  std::printf("\nday summary over %zu windows:\n", windows.size());
  std::printf("  static default mean throughput: %.0f ops/s\n", static_total / n);
  std::printf("  Rafiki online  mean throughput: %.0f ops/s  (%+.1f%%)\n", tuned_total / n,
              100.0 * (tuned_total - static_total) / static_total);
  std::printf("  reconfigurations: %zu (optimizer runs: %zu, downtime charged: %.1f%% "
              "of affected windows)\n",
              tuner.reconfigurations(), tuner.optimizer_runs(),
              100.0 * downtime_windows / n);
  std::printf("  forecaster: persistence prob now %.2f; next-window RR forecast %.2f\n",
              forecaster.persistence_probability(), forecaster.predict_next());
  return 0;
}
