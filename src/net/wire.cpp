#include "net/wire.h"

#include <bit>
#include <cmath>

#include "engine/config.h"
#include "engine/params.h"

namespace rafiki::net {
namespace {

// Payload body sizes are fixed per frame type (identical in protocol
// versions 1 and 2 — the version bump only grew the header); the decoder
// checks the length prefix against them before touching the body.
constexpr std::size_t kConfigWireSize = 2 + engine::kParamCount * 8;
constexpr std::size_t kRequestPayloadSize = 8 + 8 + kConfigWireSize;
constexpr std::size_t kResponsePayloadSize = 8 + 8 + 8 + 8 + kConfigWireSize + 8 + 1 + 1 + 8;
constexpr std::size_t kErrorPayloadSize = 0;

void put_header(std::vector<std::uint8_t>& out, FrameType type, std::uint8_t endpoint,
                std::uint8_t code, std::uint64_t request_id, serve::TenantId tenant,
                std::uint32_t payload_len, std::uint8_t version) {
  put_u32(out, kMagic);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u8(out, endpoint);
  put_u8(out, code);
  put_u64(out, request_id);
  if (version >= 2) put_u32(out, tenant);  // v1 headers have no tenant field
  put_u32(out, payload_len);
}

void put_config(std::vector<std::uint8_t>& out, const engine::Config& config) {
  put_u16(out, static_cast<std::uint16_t>(engine::kParamCount));
  for (std::size_t i = 0; i < engine::kParamCount; ++i) {
    put_f64(out, config.get(static_cast<engine::ParamId>(i)));
  }
}

bool get_finite_f64(WireReader& reader, double& v) {
  return reader.get_f64(v) && std::isfinite(v);
}

bool get_config(WireReader& reader, engine::Config& config) {
  std::uint16_t count = 0;
  if (!reader.get_u16(count) || count != engine::kParamCount) return false;
  for (std::size_t i = 0; i < engine::kParamCount; ++i) {
    double value = 0.0;
    if (!get_finite_f64(reader, value)) return false;
    // set() snaps into the parameter's domain; for values produced by a real
    // Config this is the identity, so round trips stay bit-exact — while a
    // hostile out-of-domain (but finite) value is clamped, never stored raw.
    config.set(static_cast<engine::ParamId>(i), value);
  }
  return true;
}

bool get_bool_byte(WireReader& reader, bool& v) {
  std::uint8_t byte = 0;
  if (!reader.get_u8(byte) || byte > 1) return false;
  v = byte != 0;
  return true;
}

DecodeStatus parse_request(WireReader& reader, serve::Request& request) {
  if (!get_finite_f64(reader, request.read_ratio)) return DecodeStatus::kBadPayload;
  if (!reader.get_u64(request.deadline)) return DecodeStatus::kBadPayload;
  if (!get_config(reader, request.config)) return DecodeStatus::kBadPayload;
  return reader.remaining() == 0 ? DecodeStatus::kOk : DecodeStatus::kBadPayload;
}

DecodeStatus parse_response(WireReader& reader, serve::Response& response) {
  std::uint64_t batch_size = 0;
  std::uint64_t evaluations = 0;
  if (!reader.get_u64(response.model_version)) return DecodeStatus::kBadPayload;
  if (!get_finite_f64(reader, response.mean)) return DecodeStatus::kBadPayload;
  if (!get_finite_f64(reader, response.stddev)) return DecodeStatus::kBadPayload;
  if (!reader.get_u64(batch_size)) return DecodeStatus::kBadPayload;
  if (!get_config(reader, response.config)) return DecodeStatus::kBadPayload;
  if (!get_finite_f64(reader, response.predicted_throughput)) {
    return DecodeStatus::kBadPayload;
  }
  if (!get_bool_byte(reader, response.reconfigured)) return DecodeStatus::kBadPayload;
  if (!get_bool_byte(reader, response.stale)) return DecodeStatus::kBadPayload;
  if (!reader.get_u64(evaluations)) return DecodeStatus::kBadPayload;
  response.batch_size = static_cast<std::size_t>(batch_size);
  response.surrogate_evaluations = static_cast<std::size_t>(evaluations);
  return reader.remaining() == 0 ? DecodeStatus::kOk : DecodeStatus::kBadPayload;
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kRequest:
      return "Request";
    case FrameType::kResponse:
      return "Response";
    case FrameType::kError:
      return "Error";
  }
  return "?";
}

const char* wire_error_name(WireError error) noexcept {
  switch (error) {
    case WireError::kNone:
      return "None";
    case WireError::kBadFrame:
      return "BadFrame";
    case WireError::kBadPayload:
      return "BadPayload";
    case WireError::kUnsupportedVersion:
      return "UnsupportedVersion";
    case WireError::kPayloadTooLarge:
      return "PayloadTooLarge";
    case WireError::kUnknownEndpoint:
      return "UnknownEndpoint";
  }
  return "?";
}

const char* decode_status_name(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk:
      return "Ok";
    case DecodeStatus::kNeedMore:
      return "NeedMore";
    case DecodeStatus::kBadMagic:
      return "BadMagic";
    case DecodeStatus::kBadVersion:
      return "BadVersion";
    case DecodeStatus::kBadLength:
      return "BadLength";
    case DecodeStatus::kBadFrameType:
      return "BadFrameType";
    case DecodeStatus::kBadEnum:
      return "BadEnum";
    case DecodeStatus::kBadPayload:
      return "BadPayload";
  }
  return "?";
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFu));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

bool WireReader::get_u8(std::uint8_t& v) noexcept {
  if (remaining() < 1) return false;
  v = data_[pos_++];
  return true;
}

bool WireReader::get_u16(std::uint16_t& v) noexcept {
  if (remaining() < 2) return false;
  v = static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) |
                                 static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return true;
}

bool WireReader::get_u32(std::uint32_t& v) noexcept {
  if (remaining() < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool WireReader::get_u64(std::uint64_t& v) noexcept {
  if (remaining() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool WireReader::get_f64(double& v) noexcept {
  std::uint64_t bits = 0;
  if (!get_u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

void encode_request(std::uint64_t request_id, const serve::Request& request,
                    std::vector<std::uint8_t>& out, std::uint8_t version) {
  put_header(out, FrameType::kRequest, static_cast<std::uint8_t>(request.endpoint), 0,
             request_id, request.tenant, static_cast<std::uint32_t>(kRequestPayloadSize),
             version);
  put_f64(out, request.read_ratio);
  put_u64(out, request.deadline);
  put_config(out, request.config);
}

void encode_response(std::uint64_t request_id, serve::Endpoint endpoint,
                     const serve::Response& response, std::vector<std::uint8_t>& out,
                     serve::TenantId tenant, std::uint8_t version) {
  put_header(out, FrameType::kResponse, static_cast<std::uint8_t>(endpoint),
             static_cast<std::uint8_t>(response.status), request_id, tenant,
             static_cast<std::uint32_t>(kResponsePayloadSize), version);
  put_u64(out, response.model_version);
  put_f64(out, response.mean);
  put_f64(out, response.stddev);
  put_u64(out, static_cast<std::uint64_t>(response.batch_size));
  put_config(out, response.config);
  put_f64(out, response.predicted_throughput);
  put_u8(out, response.reconfigured ? 1 : 0);
  put_u8(out, response.stale ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(response.surrogate_evaluations));
}

void encode_error(std::uint64_t request_id, WireError error,
                  std::vector<std::uint8_t>& out, serve::TenantId tenant,
                  std::uint8_t version) {
  put_header(out, FrameType::kError, 0, static_cast<std::uint8_t>(error), request_id,
             tenant, static_cast<std::uint32_t>(kErrorPayloadSize), version);
}

DecodeStatus decode_frame(const std::uint8_t* data, std::size_t size,
                          std::size_t max_payload, Frame& frame, std::size_t& consumed) {
  consumed = 0;
  // The fixed prefix shared by both header layouts (through the request id)
  // is 16 bytes; the version byte at offset 4 then selects how much more
  // header to expect. Never read past `size`.
  if (size < kHeaderSizeV1) return DecodeStatus::kNeedMore;

  WireReader header(data, size < kHeaderSize ? size : kHeaderSize);
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type_byte = 0;
  std::uint8_t endpoint_byte = 0;
  std::uint8_t code_byte = 0;
  std::uint64_t request_id = 0;
  serve::TenantId tenant = 0;
  std::uint32_t payload_len = 0;
  header.get_u32(magic);
  header.get_u8(version);
  header.get_u8(type_byte);
  header.get_u8(endpoint_byte);
  header.get_u8(code_byte);
  header.get_u64(request_id);

  // Fatal checks first: if these fail the stream offset itself is suspect
  // and no later frame boundary can be trusted. An unknown version is fatal
  // because the header *length* depends on it.
  if (magic != kMagic) return DecodeStatus::kBadMagic;
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return DecodeStatus::kBadVersion;
  }
  const std::size_t header_size = version == 1 ? kHeaderSizeV1 : kHeaderSize;
  if (size < header_size) return DecodeStatus::kNeedMore;
  if (version >= 2) header.get_u32(tenant);  // v1 compat decode: tenant 0
  header.get_u32(payload_len);
  if (payload_len > max_payload) return DecodeStatus::kBadLength;
  if (size < header_size + payload_len) return DecodeStatus::kNeedMore;

  // From here on the full frame is buffered and its length prefix is sane,
  // so every further failure is recoverable: report it, consume the frame,
  // and let the caller keep the connection.
  consumed = header_size + payload_len;
  frame.request_id = request_id;
  frame.version = version;
  frame.tenant = tenant;

  if (type_byte >= kFrameTypeCount) return DecodeStatus::kBadFrameType;
  frame.type = static_cast<FrameType>(type_byte);

  WireReader reader(data + header_size, payload_len);
  switch (frame.type) {
    case FrameType::kRequest: {
      if (endpoint_byte >= serve::kEndpointCount) return DecodeStatus::kBadEnum;
      if (code_byte != 0) return DecodeStatus::kBadEnum;  // reserved in requests
      frame.endpoint = static_cast<serve::Endpoint>(endpoint_byte);
      frame.request = serve::Request{};
      frame.request.endpoint = frame.endpoint;
      frame.request.tenant = tenant;
      return parse_request(reader, frame.request);
    }
    case FrameType::kResponse: {
      if (endpoint_byte >= serve::kEndpointCount) return DecodeStatus::kBadEnum;
      if (code_byte >= serve::kStatusCount) return DecodeStatus::kBadEnum;
      frame.endpoint = static_cast<serve::Endpoint>(endpoint_byte);
      frame.response = serve::Response{};
      frame.response.status = static_cast<serve::Status>(code_byte);
      return parse_response(reader, frame.response);
    }
    case FrameType::kError: {
      if (endpoint_byte != 0) return DecodeStatus::kBadEnum;  // reserved in errors
      if (code_byte >= kWireErrorCount) return DecodeStatus::kBadEnum;
      frame.error = static_cast<WireError>(code_byte);
      return reader.remaining() == 0 ? DecodeStatus::kOk : DecodeStatus::kBadPayload;
    }
  }
  return DecodeStatus::kBadFrameType;  // unreachable; switch is exhaustive
}

}  // namespace rafiki::net
