// Fleet replay benchmark for the multi-tenant serving layer (tenant::
// TenantFleet behind the RPC front-end):
//
//   A. Fleet replay — dozens of regime-switching tenant traces (one
//      pipelined net::Client per trace, each stamped with its tenant id in
//      the RKF2 header) hammer a TenantFleet through real sockets. Every
//      trace walks the paper's dynamic-workload schedule, offset per tenant
//      so regime storms hit all tenants at once; ObserveWindow misses are
//      answered stale-marked while each tenant's own RetrainWorker
//      republishes into that tenant's snapshot slot. Gates: zero failed
//      calls, zero decode errors, frames_in == frames_out (nothing lost on
//      the wire), zero admission rejects (no quotas configured), and every
//      tenant's model version advanced — per-tenant retrain fan-out is real.
//      An unknown-tenant probe rides along: a client outside the fleet's id
//      range must get a clean typed kNotReady for every call, never a
//      dropped frame.
//
//   C. Connection scaling — the million-user question in miniature: a fixed
//      request volume is spread over {64, 256, 1024} pipelined connections
//      (>= 64 tenants round-robin) and replayed against BOTH io backends.
//      Per point: QPS, client p99, and the wire flush counters — flushes,
//      flush syscalls, frames per flush, and flush syscalls per frame (the
//      hardware-independent cost metric). Gates: zero transport failures /
//      lost frames / decode errors at every point including 1024
//      connections on both backends (always on); edge-triggered epoll
//      spends measurably fewer flush syscalls per frame than the poll()
//      fallback at the largest sweep point (counter-based, always on when
//      both backends run); QPS at 1024 connections holds >= 0.9x the
//      256-connection figure per backend (perf gate: skipped under
//      sanitizers / < 8 hardware threads).
//
//   B. Noisy-tenant isolation — tenant 1 ("noisy") floods deep pipelines
//      through a tight per-tenant quota (in-flight cap + token bucket) while
//      tenant 0 ("victim") runs a closed loop at pipeline 1 with no quota.
//      The victim's p99 is measured twice — solo (no noisy traffic, same
//      topology) and contended — through identical transports. Gates (always
//      on): the noisy tenant sees typed kOverloaded backpressure (from BOTH
//      quota mechanisms) and loses nothing, the victim is NEVER rejected,
//      zero decode errors, and the fleet's fairness counters attribute every
//      reject exactly. Perf gate (skipped under sanitizers / < 8 hardware
//      threads, where the victim, noisy clients, and IO threads timeshare
//      cores and the tail measures the scheduler): contended victim p99
//      <= 2x solo.
//
// Results go to stdout (ASCII tables) and BENCH_fleet.json. `--smoke` keeps
// everything tiny for CI; `--out <path>` redirects the JSON; `--tenants N` /
// `--shards N` resize the phase-A fleet; `--io-backend poll|epoll` pins the
// event loop for every phase (phase C then sweeps only that backend and the
// cross-backend syscall gate is skipped).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/online.h"
#include "engine/params.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/snapshot.h"
#include "tenant/fleet.h"

using namespace rafiki;

namespace {

struct ReplayResult {
  std::size_t tenants = 0;
  std::size_t shards = 0;
  std::size_t traces = 0;
  double qps = 0.0;
  std::uint64_t predict_ok = 0;
  std::uint64_t windows = 0;
  std::uint64_t stale_windows = 0;
  std::uint64_t failed = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  serve::ServiceStats::FleetCounters fleet{};
  std::uint64_t tenants_republished = 0;
  // Unknown-tenant probe: calls from outside the id range, all of which must
  // come back as typed kNotReady responses.
  std::uint64_t probe_calls = 0;
  std::uint64_t probe_not_ready = 0;
};

/// One (backend, connection count) point of the phase-C sweep.
struct ScalePoint {
  net::IoBackend backend = net::IoBackend::kPoll;
  std::size_t connections = 0;
  std::size_t tenants = 0;
  double qps = 0.0;
  double client_p99_us = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t transport_failures = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flush_syscalls = 0;
  std::uint64_t flushed_frames = 0;
  std::uint64_t flush_eagain = 0;
  double frames_per_flush = 0.0;
  double syscalls_per_frame = 0.0;
};

struct VictimRun {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t failed = 0;
  std::uint64_t noisy_ok = 0;
  std::uint64_t noisy_overloaded = 0;
  std::uint64_t noisy_lost = 0;
  serve::ServiceStats::FleetCounters fleet{};
  std::uint64_t decode_errors = 0;
};

struct IsolationResult {
  VictimRun solo;
  VictimRun contended;
  double p99_ratio = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // det:ok(wall-clock): measuring throughput/latency is this benchmark's purpose
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Exact sample quantile (sorted copy) — the isolation gate compares p99s at
/// microsecond scale, where a bucketed histogram would quantize the ratio.
double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

/// One regime-switching tenant trace: every `window_every` calls the trace
/// opens a new read-ratio regime with one ObserveWindow (stale-marked on a
/// cache miss; the tenant's own RetrainWorker republishes behind it), then
/// fills the window with pipelined Predict bursts against that regime.
void replay_trace(std::uint16_t port, serve::TenantId tenant, std::size_t calls,
                  std::size_t pipeline, std::size_t window_every,
                  std::uint64_t& predict_ok, std::uint64_t& windows,
                  std::uint64_t& stale, std::uint64_t& failed) {
  net::ClientOptions client_options;
  client_options.tenant = tenant;
  net::Client client(client_options);
  if (client.connect("127.0.0.1", port) != net::NetStatus::kOk) {
    failed += calls;
    return;
  }
  const std::vector<double> regimes = {0.15, 0.85, 0.45, 0.95, 0.25};
  std::vector<std::uint64_t> ids;
  ids.reserve(pipeline);
  for (std::size_t i = 0; i < calls;) {
    // Offset the schedule by tenant id: regime boundaries line up across the
    // fleet (a coordinated storm) but each tenant shifts to a different
    // regime, so the per-tenant retrain key-spaces never coalesce.
    const double rr =
        regimes[(i / window_every + tenant) % regimes.size()];
    if (i % window_every == 0) {
      const auto result = client.observe_window(rr);  // typed wrapper stamps the tenant
      if (result.net == net::NetStatus::kOk &&
          result.response.status == serve::Status::kOk) {
        ++windows;
        if (result.response.stale) ++stale;
      } else {
        ++failed;
      }
      ++i;
      continue;
    }
    const std::size_t burst = std::min(
        {pipeline, calls - i, window_every - (i % window_every)});
    ids.clear();
    for (std::size_t b = 0; b < burst; ++b) {
      serve::Request request;
      request.endpoint = serve::Endpoint::kPredict;
      request.tenant = tenant;  // raw send() keeps the caller's tenant
      request.read_ratio = rr + 0.001 * static_cast<double>((i + b) % 10);
      const auto id = client.send(request);
      if (id == 0) {
        ++failed;
        continue;
      }
      ids.push_back(id);
    }
    for (const auto id : ids) {
      const auto result = client.wait(id);
      if (result.ok()) {
        ++predict_ok;
      } else {
        ++failed;
      }
    }
    i += burst;
  }
}

ReplayResult fleet_replay(const core::Rafiki& rafiki, net::IoBackend backend,
                          std::size_t tenants, std::size_t shards,
                          std::size_t clients_per_tenant,
                          std::size_t calls_per_trace, std::size_t pipeline,
                          std::size_t window_every) {
  tenant::FleetOptions fleet_options;
  fleet_options.tenants = tenants;
  fleet_options.shard.shards = shards;
  fleet_options.shard.service.workers = 2;
  fleet_options.shard.service.queue_capacity = 4096;
  tenant::TenantFleet fleet(fleet_options);
  fleet.attach_rafiki(rafiki);
  fleet.publish(serve::make_snapshot(rafiki));
  fleet.start();

  net::ServerOptions server_options;
  server_options.io_backend = backend;
  server_options.io_threads = 2;
  server_options.max_pipeline = pipeline + 1;  // the bench never self-throttles
  net::Server server(fleet, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "fleet_load: server start failed: %s\n",
                 server.last_error().c_str());
    return {};
  }

  const std::size_t traces = tenants * clients_per_tenant;
  std::vector<std::uint64_t> predict_ok(traces, 0);
  std::vector<std::uint64_t> windows(traces, 0);
  std::vector<std::uint64_t> stale(traces, 0);
  std::vector<std::uint64_t> failed(traces, 0);
  // det:ok(wall-clock): benchmark timing
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet_threads;
  for (std::size_t i = 0; i < traces; ++i) {
    const auto tenant_id = static_cast<serve::TenantId>(i % tenants);
    fleet_threads.emplace_back([&, i, tenant_id] {
      replay_trace(server.port(), tenant_id, calls_per_trace, pipeline,
                   window_every, predict_ok[i], windows[i], stale[i], failed[i]);
    });
  }
  for (auto& thread : fleet_threads) thread.join();
  const double elapsed = seconds_since(t0);

  // Unknown-tenant probe: an id past the fleet's range must get a typed
  // kNotReady for every call — answered on the wire, never dropped.
  ReplayResult result;
  {
    net::ClientOptions probe_options;
    probe_options.tenant = static_cast<serve::TenantId>(tenants + 3);
    net::Client probe(probe_options);
    if (probe.connect("127.0.0.1", server.port()) == net::NetStatus::kOk) {
      for (int i = 0; i < 4; ++i) {
        ++result.probe_calls;
        const auto r = probe.predict(0.5);
        if (r.net == net::NetStatus::kOk &&
            r.response.status == serve::Status::kNotReady) {
          ++result.probe_not_ready;
        }
      }
    }
  }

  // Let every tenant's in-flight background retrains republish before the
  // per-tenant version audit.
  fleet.wait_retrain_idle();
  for (std::size_t t = 0; t < tenants; ++t) {
    if (fleet.tenant_model_version(static_cast<serve::TenantId>(t)) > 1) {
      ++result.tenants_republished;
    }
  }
  server.stop();

  result.tenants = tenants;
  result.shards = shards;
  result.traces = traces;
  for (std::size_t i = 0; i < traces; ++i) {
    result.predict_ok += predict_ok[i];
    result.windows += windows[i];
    result.stale_windows += stale[i];
    result.failed += failed[i];
  }
  result.qps =
      static_cast<double>(result.predict_ok + result.windows) / elapsed;
  const auto wire = fleet.stats().wire_counters();
  result.decode_errors = wire.decode_errors;
  result.frames_in = wire.frames_in;
  result.frames_out = wire.frames_out;
  result.fleet = fleet.fleet_counters();
  fleet.stop();
  return result;
}

/// One phase-C point: `connections` pipelined clients (tenant = index mod
/// `tenants`) replay a fixed total request volume against one io backend.
/// A small pool of driver threads owns the connections; each round a driver
/// bursts `pipeline` Predicts down every one of its connections before
/// collecting any responses, so the server sees hundreds of connections with
/// frames in flight at once — the regime write coalescing is built for.
ScalePoint connection_scaling(const core::Rafiki& rafiki, std::size_t tenants,
                              std::size_t shards, net::IoBackend backend,
                              std::size_t connections, std::size_t calls_per_conn,
                              std::size_t pipeline) {
  tenant::FleetOptions fleet_options;
  fleet_options.tenants = tenants;
  fleet_options.shard.shards = shards;
  fleet_options.shard.service.workers = 2;
  fleet_options.shard.service.queue_capacity = 8192;
  tenant::TenantFleet fleet(fleet_options);
  fleet.publish(serve::make_snapshot(rafiki));
  fleet.start();

  net::ServerOptions server_options;
  server_options.io_backend = backend;
  server_options.io_threads = 2;
  server_options.backlog = static_cast<int>(connections);
  server_options.max_connections = connections + 8;
  server_options.max_pipeline = pipeline + 1;
  net::Server server(fleet, server_options);
  ScalePoint point;
  point.backend = backend;
  point.connections = connections;
  point.tenants = tenants;
  if (!server.start()) {
    std::fprintf(stderr, "fleet_load: server start failed: %s\n",
                 server.last_error().c_str());
    point.transport_failures = connections * calls_per_conn;
    return point;
  }

  const std::size_t drivers =
      std::min(connections, std::max<std::size_t>(4, benchutil::hw_threads()));
  std::vector<std::uint64_t> ok(drivers, 0);
  std::vector<std::uint64_t> failed(drivers, 0);
  std::vector<std::vector<double>> latencies(drivers);
  // det:ok(wall-clock): benchmark timing
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t d = 0; d < drivers; ++d) {
    pool.emplace_back([&, d] {
      // Connections are dealt round-robin so every driver's slice spans the
      // tenant range.
      std::vector<std::unique_ptr<net::Client>> conns;
      std::size_t owned = 0;
      for (std::size_t c = d; c < connections; c += drivers) {
        net::ClientOptions client_options;
        client_options.tenant = static_cast<serve::TenantId>(c % tenants);
        auto client = std::make_unique<net::Client>(client_options);
        if (client->connect("127.0.0.1", server.port()) != net::NetStatus::kOk) {
          failed[d] += calls_per_conn;
          conns.push_back(nullptr);
        } else {
          conns.push_back(std::move(client));
          ++owned;
        }
      }
      if (owned == 0) return;
      std::vector<std::vector<std::uint64_t>> ids(conns.size());
      for (std::size_t done = 0; done < calls_per_conn; done += pipeline) {
        const std::size_t burst = std::min(pipeline, calls_per_conn - done);
        // det:ok(wall-clock): benchmark timing
        const auto r0 = std::chrono::steady_clock::now();
        for (std::size_t c = 0; c < conns.size(); ++c) {
          if (conns[c] == nullptr) continue;
          ids[c].clear();
          for (std::size_t b = 0; b < burst; ++b) {
            serve::Request request;
            request.endpoint = serve::Endpoint::kPredict;
            request.tenant =
                static_cast<serve::TenantId>((d + c * drivers) % tenants);
            request.read_ratio =
                0.2 + 0.01 * static_cast<double>((done + b) % 60);
            const auto id = conns[c]->send(request);
            if (id == 0) {
              ++failed[d];
              continue;
            }
            ids[c].push_back(id);
          }
        }
        std::uint64_t round_ok = 0;
        for (std::size_t c = 0; c < conns.size(); ++c) {
          if (conns[c] == nullptr) continue;
          for (const auto id : ids[c]) {
            const auto result = conns[c]->wait(id);
            if (result.ok()) {
              ++round_ok;
            } else {
              ++failed[d];
            }
          }
        }
        ok[d] += round_ok;
        if (round_ok > 0) {
          latencies[d].push_back(1e6 * seconds_since(r0) /
                                 static_cast<double>(round_ok));
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const double elapsed = seconds_since(t0);
  server.stop();

  std::vector<double> merged;
  for (std::size_t d = 0; d < drivers; ++d) {
    point.ok += ok[d];
    point.transport_failures += failed[d];
    merged.insert(merged.end(), latencies[d].begin(), latencies[d].end());
  }
  point.qps = elapsed > 0.0 ? static_cast<double>(point.ok) / elapsed : 0.0;
  point.client_p99_us = exact_quantile(merged, 0.99);
  const auto wire = fleet.stats().wire_counters();
  point.decode_errors = wire.decode_errors;
  point.frames_in = wire.frames_in;
  point.frames_out = wire.frames_out;
  point.flushes = wire.flushes;
  point.flush_syscalls = wire.flush_syscalls;
  point.flushed_frames = wire.flushed_frames;
  point.flush_eagain = wire.flush_eagain;
  point.frames_per_flush = wire.frames_per_flush();
  point.syscalls_per_frame = wire.flush_syscalls_per_frame();
  fleet.stop();
  return point;
}

/// One victim pass: tenant 0 runs a pipeline-1 closed loop, optionally with
/// two noisy tenant-1 clients flooding deep pipelines through a tight quota
/// — an in-flight cap (pipeline >> cap, so bursts overflow it immediately)
/// plus a token bucket (so sustained admitted noisy throughput stays far
/// below one worker's capacity and the victim's tail is genuinely shielded).
/// Topology (shards, workers, io threads, quotas) is identical with and
/// without noise so the two p99s are comparable.
VictimRun victim_run(const core::Rafiki& rafiki, net::IoBackend backend,
                     std::size_t shards, std::size_t victim_calls,
                     bool with_noisy, std::size_t noisy_pipeline,
                     std::size_t noisy_cap) {
  tenant::FleetOptions fleet_options;
  fleet_options.tenants = 2;
  fleet_options.shard.shards = shards;
  fleet_options.shard.service.workers = 2;
  fleet_options.shard.service.queue_capacity = 4096;
  fleet_options.quota_for = [noisy_cap](serve::TenantId tenant) {
    tenant::QuotaOptions quota;
    if (tenant == 1) {
      quota.max_in_flight = noisy_cap;
      quota.rate_per_s = 500.0;
      quota.burst = 16.0;
    }
    return quota;
  };
  tenant::TenantFleet fleet(fleet_options);
  fleet.publish(serve::make_snapshot(rafiki));
  fleet.start();

  net::ServerOptions server_options;
  server_options.io_backend = backend;
  // One IO thread per connection (victim + 2 noisy): the cap under test is
  // the fleet's admission quota, not transport-thread contention.
  server_options.io_threads = 4;
  server_options.max_pipeline = noisy_pipeline + 2;
  net::Server server(fleet, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "fleet_load: server start failed: %s\n",
                 server.last_error().c_str());
    return {};
  }

  constexpr std::size_t kNoisyClients = 2;
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> noisy_ok(kNoisyClients, 0);
  std::vector<std::uint64_t> noisy_overloaded(kNoisyClients, 0);
  std::vector<std::uint64_t> noisy_lost(kNoisyClients, 0);
  std::vector<std::thread> noisy_threads;
  if (with_noisy) {
    for (std::size_t c = 0; c < kNoisyClients; ++c) {
      noisy_threads.emplace_back([&, c] {
        net::ClientOptions client_options;
        client_options.tenant = 1;
        net::Client client(client_options);
        if (client.connect("127.0.0.1", server.port()) != net::NetStatus::kOk) {
          return;
        }
        std::vector<std::uint64_t> ids;
        ids.reserve(noisy_pipeline);
        while (!stop.load(std::memory_order_relaxed)) {
          ids.clear();
          for (std::size_t b = 0; b < noisy_pipeline; ++b) {
            serve::Request request;
            request.endpoint = serve::Endpoint::kPredict;
            request.tenant = 1;
            request.read_ratio = 0.2 + 0.01 * static_cast<double>(b % 50);
            const auto id = client.send(request);
            if (id != 0) ids.push_back(id);
          }
          for (const auto id : ids) {
            const auto result = client.wait(id);
            if (result.net != net::NetStatus::kOk) {
              ++noisy_lost[c];
            } else if (result.response.status == serve::Status::kOk) {
              ++noisy_ok[c];
            } else if (result.response.status == serve::Status::kOverloaded) {
              ++noisy_overloaded[c];  // typed backpressure: answered, not lost
            } else {
              ++noisy_lost[c];
            }
          }
          // Pace the bursts: the pressure under test is pipeline depth vs the
          // quota (each burst still overflows the cap and drains the bucket),
          // not raw CPU starvation of the victim's cores by reject spinning.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    // Let the flood actually hit the quota before the victim starts
    // measuring, so the contended pass is contended from its first sample.
    // Bounded spin: with pipeline >> cap the first burst already overflows.
    // det:ok(wall-clock): benchmark warmup deadline
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (fleet.fleet_counters().inflight_rejected == 0) {
      // det:ok(wall-clock): benchmark warmup deadline
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  VictimRun run;
  std::vector<double> latency;
  latency.reserve(victim_calls);
  {
    net::Client victim;  // tenant 0 — the default namespace, no quota
    if (victim.connect("127.0.0.1", server.port()) != net::NetStatus::kOk) {
      run.failed = victim_calls;
    } else {
      // det:ok(wall-clock): benchmark timing
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < victim_calls; ++i) {
        // det:ok(wall-clock): benchmark timing
        const auto c0 = std::chrono::steady_clock::now();
        const auto result =
            victim.predict(0.3 + 0.01 * static_cast<double>(i % 40));
        latency.push_back(1e6 * seconds_since(c0));
        if (result.ok()) {
          ++run.ok;
        } else if (result.net == net::NetStatus::kOk &&
                   result.response.status == serve::Status::kOverloaded) {
          ++run.overloaded;
        } else {
          ++run.failed;
        }
      }
      run.qps = static_cast<double>(run.ok) / seconds_since(t0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : noisy_threads) thread.join();
  server.stop();

  run.p50_us = exact_quantile(latency, 0.5);
  run.p99_us = exact_quantile(latency, 0.99);
  for (std::size_t c = 0; c < kNoisyClients; ++c) {
    run.noisy_ok += noisy_ok[c];
    run.noisy_overloaded += noisy_overloaded[c];
    run.noisy_lost += noisy_lost[c];
  }
  run.fleet = fleet.fleet_counters();
  run.decode_errors = fleet.stats().wire_counters().decode_errors;
  fleet.stop();
  return run;
}

void write_json(const std::string& path, const ReplayResult& replay,
                const IsolationResult& isolation,
                const std::vector<ScalePoint>& scaling, bool smoke,
                const std::vector<std::string>& gates_skipped) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fleet_load: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"fleet_load\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(out, "  \"hw_threads\": %u,\n  \"gates_skipped\": %s,\n",
               benchutil::hw_threads(), benchutil::json_string_array(gates_skipped).c_str());
  std::fprintf(out,
               "  \"fleet_replay\": {\"tenants\": %zu, \"shards\": %zu, "
               "\"traces\": %zu, \"qps\": %.1f, \"predict_ok\": %llu, "
               "\"windows\": %llu, \"stale_windows\": %llu, \"failed\": %llu, "
               "\"decode_errors\": %llu, \"frames_in\": %llu, "
               "\"frames_out\": %llu, \"admitted\": %llu, "
               "\"quota_rejected\": %llu, \"inflight_rejected\": %llu, "
               "\"unknown_tenant\": %llu, \"tenants_republished\": %llu, "
               "\"probe_calls\": %llu, \"probe_not_ready\": %llu},\n",
               replay.tenants, replay.shards, replay.traces, replay.qps,
               static_cast<unsigned long long>(replay.predict_ok),
               static_cast<unsigned long long>(replay.windows),
               static_cast<unsigned long long>(replay.stale_windows),
               static_cast<unsigned long long>(replay.failed),
               static_cast<unsigned long long>(replay.decode_errors),
               static_cast<unsigned long long>(replay.frames_in),
               static_cast<unsigned long long>(replay.frames_out),
               static_cast<unsigned long long>(replay.fleet.admitted),
               static_cast<unsigned long long>(replay.fleet.quota_rejected),
               static_cast<unsigned long long>(replay.fleet.inflight_rejected),
               static_cast<unsigned long long>(replay.fleet.unknown_tenant),
               static_cast<unsigned long long>(replay.tenants_republished),
               static_cast<unsigned long long>(replay.probe_calls),
               static_cast<unsigned long long>(replay.probe_not_ready));
  const auto emit_run = [out](const char* key, const VictimRun& run,
                              const char* tail) {
    std::fprintf(out,
                 "  \"%s\": {\"victim_p50_us\": %.1f, \"victim_p99_us\": %.1f, "
                 "\"victim_qps\": %.1f, \"victim_ok\": %llu, "
                 "\"victim_overloaded\": %llu, \"victim_failed\": %llu, "
                 "\"noisy_ok\": %llu, \"noisy_overloaded\": %llu, "
                 "\"noisy_lost\": %llu, \"quota_rejected\": %llu, "
                 "\"inflight_rejected\": %llu, \"decode_errors\": %llu}%s\n",
                 key, run.p50_us, run.p99_us, run.qps,
                 static_cast<unsigned long long>(run.ok),
                 static_cast<unsigned long long>(run.overloaded),
                 static_cast<unsigned long long>(run.failed),
                 static_cast<unsigned long long>(run.noisy_ok),
                 static_cast<unsigned long long>(run.noisy_overloaded),
                 static_cast<unsigned long long>(run.noisy_lost),
                 static_cast<unsigned long long>(run.fleet.quota_rejected),
                 static_cast<unsigned long long>(run.fleet.inflight_rejected),
                 static_cast<unsigned long long>(run.decode_errors), tail);
  };
  emit_run("isolation_solo", isolation.solo, ",");
  emit_run("isolation_contended", isolation.contended, ",");
  std::fprintf(out, "  \"isolation_p99_ratio\": %.2f,\n",
               isolation.p99_ratio);
  std::fprintf(out, "  \"connection_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& sp = scaling[i];
    std::fprintf(out,
                 "    {\"io_backend\": \"%s\", \"connections\": %zu, "
                 "\"tenants\": %zu, \"qps\": %.1f, \"client_p99_us\": %.1f, "
                 "\"ok\": %llu, \"transport_failures\": %llu, "
                 "\"decode_errors\": %llu, \"frames_in\": %llu, "
                 "\"frames_out\": %llu, \"flushes\": %llu, "
                 "\"flush_syscalls\": %llu, \"flushed_frames\": %llu, "
                 "\"flush_eagain\": %llu, \"frames_per_flush\": %.2f, "
                 "\"flush_syscalls_per_frame\": %.4f}%s\n",
                 net::io_backend_name(sp.backend), sp.connections, sp.tenants,
                 sp.qps, sp.client_p99_us,
                 static_cast<unsigned long long>(sp.ok),
                 static_cast<unsigned long long>(sp.transport_failures),
                 static_cast<unsigned long long>(sp.decode_errors),
                 static_cast<unsigned long long>(sp.frames_in),
                 static_cast<unsigned long long>(sp.frames_out),
                 static_cast<unsigned long long>(sp.flushes),
                 static_cast<unsigned long long>(sp.flush_syscalls),
                 static_cast<unsigned long long>(sp.flushed_frames),
                 static_cast<unsigned long long>(sp.flush_eagain),
                 sp.frames_per_flush, sp.syscalls_per_frame,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  benchutil::note("wrote " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fleet.json";
  std::size_t tenants = 8;
  std::size_t shards = 2;
  bool backend_pinned = false;
  net::IoBackend pinned_backend = net::default_io_backend();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      tenants = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (tenants == 0) tenants = 1;
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (shards == 0) shards = 1;
    }
    if (std::strcmp(argv[i], "--io-backend") == 0 && i + 1 < argc) {
      if (!net::parse_io_backend(argv[++i], pinned_backend) ||
          !net::io_backend_available(pinned_backend)) {
        std::fprintf(stderr,
                     "fleet_load: unknown or unavailable io backend '%s'\n",
                     argv[i]);
        return 1;
      }
      backend_pinned = true;
    }
  }
  if (smoke && tenants > 4) tenants = 4;
  const net::IoBackend backend = pinned_backend;
  benchutil::note(std::string("io backend: ") + net::io_backend_name(backend) +
                  (backend_pinned ? " (pinned)" : " (platform default)"));

  core::RafikiOptions options;
  options.workload_grid = smoke ? std::vector<double>{0.2, 0.8}
                                : std::vector<double>{0.1, 0.5, 0.9};
  options.n_configs = smoke ? 5 : 10;
  options.collect.measure.ops = smoke ? 3000 : 20000;
  options.collect.measure.warmup_ops = smoke ? 300 : 2000;
  options.ensemble.n_nets = smoke ? 3 : 10;
  options.ensemble.train.max_epochs = smoke ? 30 : 100;
  benchutil::note("training the surrogate ensemble...");
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());

  // Phase A: regime-switching fleet replay through the wire.
  const std::size_t clients_per_tenant = smoke ? 2 : 3;
  const std::size_t calls_per_trace = smoke ? 48 : 240;
  const auto replay = fleet_replay(rafiki, backend, tenants, shards,
                                   clients_per_tenant, calls_per_trace,
                                   /*pipeline=*/8, /*window_every=*/16);
  Table replay_table({"metric", "value"});
  replay_table.add_row({"tenant traces",
                        std::to_string(replay.traces) + " (" +
                            std::to_string(replay.tenants) + " tenants x " +
                            std::to_string(clients_per_tenant) + " clients)"});
  replay_table.add_row({"fleet QPS", Table::ops(replay.qps)});
  replay_table.add_row({"Predict ok", std::to_string(replay.predict_ok)});
  replay_table.add_row({"ObserveWindow ok", std::to_string(replay.windows)});
  replay_table.add_row({"stale-served windows", std::to_string(replay.stale_windows)});
  replay_table.add_row({"failed calls", std::to_string(replay.failed)});
  replay_table.add_row({"decode errors", std::to_string(replay.decode_errors)});
  replay_table.add_row({"frames in / out", std::to_string(replay.frames_in) + " / " +
                                               std::to_string(replay.frames_out)});
  replay_table.add_row({"admitted", std::to_string(replay.fleet.admitted)});
  replay_table.add_row({"tenants republished",
                        std::to_string(replay.tenants_republished) + " / " +
                            std::to_string(replay.tenants)});
  replay_table.add_row({"unknown-tenant probe",
                        std::to_string(replay.probe_not_ready) + " / " +
                            std::to_string(replay.probe_calls) + " NotReady"});
  benchutil::emit(replay_table, "Phase A: multi-tenant fleet replay (loopback RPC)");
  benchutil::compare("failed calls across the fleet replay", "0",
                     std::to_string(replay.failed));
  benchutil::compare("tenants with a republished model", std::to_string(replay.tenants),
                     std::to_string(replay.tenants_republished));

  // Phase B: noisy-tenant isolation behind the per-tenant in-flight cap.
  const std::size_t victim_calls = smoke ? 300 : 1000;
  IsolationResult isolation;
  isolation.solo = victim_run(rafiki, backend, shards, victim_calls,
                              /*with_noisy=*/false, /*noisy_pipeline=*/32,
                              /*noisy_cap=*/4);
  isolation.contended = victim_run(rafiki, backend, shards, victim_calls,
                                   /*with_noisy=*/true, /*noisy_pipeline=*/32,
                                   /*noisy_cap=*/4);
  isolation.p99_ratio = isolation.solo.p99_us > 0.0
                            ? isolation.contended.p99_us / isolation.solo.p99_us
                            : 0.0;
  Table iso_table({"metric", "solo", "contended"});
  iso_table.add_row({"victim p50 us", Table::num(isolation.solo.p50_us, 1),
                     Table::num(isolation.contended.p50_us, 1)});
  iso_table.add_row({"victim p99 us", Table::num(isolation.solo.p99_us, 1),
                     Table::num(isolation.contended.p99_us, 1)});
  iso_table.add_row({"victim QPS", Table::ops(isolation.solo.qps),
                     Table::ops(isolation.contended.qps)});
  iso_table.add_row({"victim rejected", std::to_string(isolation.solo.overloaded),
                     std::to_string(isolation.contended.overloaded)});
  iso_table.add_row({"noisy answered Ok", std::to_string(isolation.solo.noisy_ok),
                     std::to_string(isolation.contended.noisy_ok)});
  iso_table.add_row({"noisy Overloaded",
                     std::to_string(isolation.solo.noisy_overloaded),
                     std::to_string(isolation.contended.noisy_overloaded)});
  iso_table.add_row({"noisy lost", std::to_string(isolation.solo.noisy_lost),
                     std::to_string(isolation.contended.noisy_lost)});
  iso_table.add_row({"rejects: in-flight cap",
                     std::to_string(isolation.solo.fleet.inflight_rejected),
                     std::to_string(isolation.contended.fleet.inflight_rejected)});
  iso_table.add_row({"rejects: token bucket",
                     std::to_string(isolation.solo.fleet.quota_rejected),
                     std::to_string(isolation.contended.fleet.quota_rejected)});
  benchutil::emit(iso_table,
                  "Phase B: noisy-tenant isolation (in-flight cap 4 + 500/s bucket)");
  benchutil::compare("victim rejects while the noisy tenant floods", "0",
                     std::to_string(isolation.contended.overloaded +
                                    isolation.contended.failed));
  benchutil::compare("contended victim p99 vs solo", "<= 2x",
                     Table::num(isolation.p99_ratio, 2) + "x");

  // Phase C: connection scaling across io backends. The full run spreads the
  // fleet across >= 64 tenants and sweeps {64, 256, 1024} connections; smoke
  // keeps the same shape at toy sizes.
  const std::size_t scale_tenants =
      smoke ? tenants : std::max<std::size_t>(tenants, 64);
  const std::vector<std::size_t> connection_sweep =
      smoke ? std::vector<std::size_t>{8, 16}
            : std::vector<std::size_t>{64, 256, 1024};
  const std::size_t scale_calls = smoke ? 8 : 24;
  const std::size_t scale_pipeline = smoke ? 4 : 8;
  const std::vector<net::IoBackend> backends =
      backend_pinned ? std::vector<net::IoBackend>{backend}
                     : net::available_io_backends();
  std::vector<ScalePoint> scaling;
  for (const auto sweep_backend : backends) {
    for (const auto connections : connection_sweep) {
      benchutil::note(std::string("connection scaling: ") +
                      net::io_backend_name(sweep_backend) + " x " +
                      std::to_string(connections) + " connections...");
      scaling.push_back(connection_scaling(rafiki, scale_tenants, shards,
                                           sweep_backend, connections,
                                           scale_calls, scale_pipeline));
    }
  }
  Table scale_table({"backend", "connections", "QPS", "client p99 us",
                     "frames/flush", "syscalls/frame", "EAGAIN", "failed",
                     "decode errors"});
  for (const auto& sp : scaling) {
    scale_table.add_row({net::io_backend_name(sp.backend),
                         std::to_string(sp.connections), Table::ops(sp.qps),
                         Table::num(sp.client_p99_us, 1),
                         Table::num(sp.frames_per_flush, 2),
                         Table::num(sp.syscalls_per_frame, 4),
                         std::to_string(sp.flush_eagain),
                         std::to_string(sp.transport_failures),
                         std::to_string(sp.decode_errors)});
  }
  benchutil::emit(scale_table,
                  "Phase C: connection scaling (" +
                      std::to_string(scale_tenants) + " tenants, pipeline " +
                      std::to_string(scale_pipeline) + ")");

  // Perf gates are meaningless under sanitizer instrumentation, and the
  // isolation ratio needs the victim, the two noisy clients, and the four
  // server IO threads to actually run in parallel: on fewer cores a noisy
  // burst's inline-rejected responses are encoded on the victim's core and
  // its p99 measures the scheduler, not the quota.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kPerfGate = false;  // GCC sanitizer macros
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr bool kPerfGate = false;  // clang spelling
#else
  constexpr bool kPerfGate = true;
#endif
#else
  constexpr bool kPerfGate = true;
#endif
  const bool ratio_gate = kPerfGate && std::thread::hardware_concurrency() >= 8;

  // The 1024-vs-256 QPS ratio needs real parallelism for the same reason the
  // isolation ratio does; the syscall-per-frame comparison is counter-based
  // and hardware-independent, but needs both backends in the sweep.
  const bool scaling_qps_gate = kPerfGate &&
                                std::thread::hardware_concurrency() >= 8 &&
                                !smoke;
  // Smoke volumes are too small for the batch-shape difference to clear the
  // margin reliably (a handful of rounds, pipeline 4); the full run is the
  // gate of record.
  const bool scaling_syscall_gate = backends.size() >= 2 && !smoke;

  std::vector<std::string> gates_skipped;
  if (!kPerfGate) gates_skipped.push_back("perf");
  if (!ratio_gate) gates_skipped.push_back("isolation_p99_ratio");
  if (!scaling_qps_gate) gates_skipped.push_back("connection_scaling_qps_ratio");
  if (!scaling_syscall_gate) {
    gates_skipped.push_back("connection_scaling_backend_syscalls");
  }
  write_json(out_path, replay, isolation, scaling, smoke, gates_skipped);

  // Phase A structural gates (always on, sanitizers included).
  bool pass = replay.failed == 0 && replay.decode_errors == 0;
  pass = pass && replay.frames_in == replay.frames_out;
  pass = pass && replay.fleet.quota_rejected == 0 &&
         replay.fleet.inflight_rejected == 0;
  pass = pass && replay.stale_windows >= 1;
  pass = pass && replay.tenants_republished == replay.tenants;
  pass = pass && replay.probe_calls > 0 &&
         replay.probe_not_ready == replay.probe_calls;
  pass = pass && replay.fleet.unknown_tenant >= replay.probe_calls;
  // Phase B structural gates: the quota speaks kOverloaded to the noisy
  // tenant only, nothing is lost, both quota mechanisms fire, and the
  // fairness counters attribute every reject exactly.
  for (const VictimRun* run : {&isolation.solo, &isolation.contended}) {
    pass = pass && run->failed == 0 && run->overloaded == 0;
    pass = pass && run->noisy_lost == 0 && run->decode_errors == 0;
  }
  pass = pass && isolation.solo.noisy_overloaded == 0;
  pass = pass && isolation.solo.fleet.quota_rejected == 0 &&
         isolation.solo.fleet.inflight_rejected == 0;
  pass = pass && isolation.contended.noisy_overloaded >= 1;
  pass = pass && isolation.contended.fleet.inflight_rejected >= 1;
  pass = pass && isolation.contended.fleet.quota_rejected >= 1;
  pass = pass && isolation.contended.fleet.inflight_rejected +
                         isolation.contended.fleet.quota_rejected ==
                     isolation.contended.noisy_overloaded;
  if (ratio_gate) pass = pass && isolation.p99_ratio <= 2.0;
  // Phase C structural gates: every point — including 1024 connections on
  // both backends — moved its full request volume with zero transport
  // failures, zero lost frames, zero decode errors, balanced accounting.
  for (const auto& sp : scaling) {
    const std::uint64_t expected =
        static_cast<std::uint64_t>(sp.connections) * scale_calls;
    pass = pass && sp.transport_failures == 0 && sp.decode_errors == 0;
    pass = pass && sp.ok == expected && sp.frames_in == sp.frames_out;
    pass = pass && sp.frames_in >= expected;
  }
  // Cross-backend flush-cost gate (counter-based, hardware-independent): at
  // the largest sweep point, edge-triggered epoll must spend measurably
  // fewer flush syscalls per frame than the poll() fallback — the absorb
  // rounds exist precisely to merge completions that poll's slower passes
  // pay one syscall each for.
  if (scaling_syscall_gate) {
    const std::size_t largest = connection_sweep.back();
    double poll_cost = 0.0;
    double epoll_cost = 0.0;
    for (const auto& sp : scaling) {
      if (sp.connections != largest) continue;
      if (sp.backend == net::IoBackend::kPoll) poll_cost = sp.syscalls_per_frame;
      if (sp.backend == net::IoBackend::kEpoll) epoll_cost = sp.syscalls_per_frame;
    }
    benchutil::compare(
        "epoll flush syscalls per frame vs poll (largest sweep)",
        "<= 0.9x", Table::num(poll_cost > 0.0 ? epoll_cost / poll_cost : 0.0, 3) + "x");
    pass = pass && poll_cost > 0.0 && epoll_cost > 0.0 &&
           epoll_cost <= 0.9 * poll_cost;
  }
  if (scaling_qps_gate && connection_sweep.size() >= 2) {
    const std::size_t largest = connection_sweep.back();
    const std::size_t mid = connection_sweep[connection_sweep.size() - 2];
    for (const auto backend_under_test : backends) {
      double qps_mid = 0.0;
      double qps_large = 0.0;
      for (const auto& sp : scaling) {
        if (sp.backend != backend_under_test) continue;
        if (sp.connections == mid) qps_mid = sp.qps;
        if (sp.connections == largest) qps_large = sp.qps;
      }
      pass = pass && qps_mid > 0.0 && qps_large >= 0.9 * qps_mid;
    }
  }
  std::printf("\nfleet_load: %s%s\n", pass ? "PASS" : "FAIL",
              ratio_gate ? ""
                         : " (p99 ratio gate skipped: sanitizer build or < 8 "
                           "hardware threads)");
  return pass ? 0 : 1;
}
