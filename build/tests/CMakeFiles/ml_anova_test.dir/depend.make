# Empty dependencies file for ml_anova_test.
# This may be replaced when dependencies are built.
