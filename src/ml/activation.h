// The MLP's hidden-layer activation: a branchless, SIMD-friendly tanh.
//
// std::tanh dominates surrogate inference (the [6->14->4->1] topology spends
// ~half its per-row time in 18 libm calls), and libm's implementation
// neither inlines nor vectorizes. fast_tanh evaluates
//
//   tanh(x) = (e^{2x} - 1) / (e^{2x} + 1)
//
// with a degree-7 polynomial exp reduced by 2x = n ln2 + r (|r| <= ln2/2),
// using the round-to-nearest "magic number" trick for n and exact bit
// assembly of 2^n. Max absolute error vs std::tanh is ~3.5e-9 — far below
// the surrogate's model error — and the formula is branch-free, so the
// batched path can evaluate it 4 or 8 rows at a time with SIMD.
//
// Determinism contract: every evaluation path (this scalar inline, and the
// AVX2 / AVX-512 blocks behind fast_tanh_block) performs the identical
// sequence of IEEE-754 double operations per element, so scalar and batched
// inference agree bit-for-bit (asserted by tests/ml_batch_test.cpp). Keep
// the operation ORDER in sync with activation.cpp when editing either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rafiki::ml {

namespace activation_detail {
/// Clamp on t = 2x; tanh(22) is 1 to double precision, so beyond +/-44 the
/// quotient saturates exactly.
inline constexpr double kClamp = 44.0;
inline constexpr double kLog2E = 1.4426950408889634074;
/// 1.5 * 2^52: adding it rounds to nearest integer and leaves that integer
/// in the low mantissa bits (valid for |v| < 2^51).
inline constexpr double kRoundMagic = 6755399441055744.0;
inline constexpr std::int64_t kRoundMagicBits = 0x4338000000000000LL;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
/// exp(r) Taylor coefficients c7..c0 for |r| <= ln2/2 (error ~5e-9 relative,
/// dominated by the truncation at r^7/7!).
inline constexpr double kC7 = 1.0 / 5040.0;
inline constexpr double kC6 = 1.0 / 720.0;
inline constexpr double kC5 = 1.0 / 120.0;
inline constexpr double kC4 = 1.0 / 24.0;
inline constexpr double kC3 = 1.0 / 6.0;
inline constexpr double kC2 = 0.5;
}  // namespace activation_detail

/// tanh approximation, |err| <= ~3.5e-9 absolute. See the header comment for
/// the formula; the bit-identical SIMD version lives in fast_tanh_block.
inline double fast_tanh(double x) noexcept {
  namespace d = activation_detail;
  double t = 2.0 * x;
  t = t > d::kClamp ? d::kClamp : t;
  t = t < -d::kClamp ? -d::kClamp : t;
  // n = round(t / ln2), captured exactly in the magic number's low bits.
  double nd = t * d::kLog2E + d::kRoundMagic;
  std::int64_t n;
  std::memcpy(&n, &nd, sizeof n);
  n -= d::kRoundMagicBits;
  nd -= d::kRoundMagic;
  // r = t - n ln2, with ln2 split for an exact-ish reduction.
  double r = t - nd * d::kLn2Hi;
  r -= nd * d::kLn2Lo;
  double p = d::kC7;
  p = p * r + d::kC6;
  p = p * r + d::kC5;
  p = p * r + d::kC4;
  p = p * r + d::kC3;
  p = p * r + d::kC2;
  p = p * r + 1.0;
  p = p * r + 1.0;
  // 2^n assembled directly in the exponent field (n in [-64, 64] after the
  // clamp, so no overflow/subnormal cases).
  const std::int64_t ebits = (n + 1023) << 52;
  double two_n;
  std::memcpy(&two_n, &ebits, sizeof two_n);
  const double e = p * two_n;  // e^{2x}
  return (e - 1.0) / (e + 1.0);
}

/// In-place fast_tanh over `values[0..n)`. Bit-for-bit identical to calling
/// fast_tanh per element; on x86-64 it runs 4 (AVX2) or 8 (AVX-512) elements
/// per instruction, picked once at runtime.
void fast_tanh_block(double* values, std::size_t n) noexcept;

/// Dense affine layer over a column-major (transposed) batch:
///
///   out_t[o*n + r] = bias[o] + sum_i w[o*in_dim + i] * in_t[i*n + r]
///
/// Activations are stored transposed ([unit][row]) so each inner loop is a
/// unit-stride axpy across the whole batch — the vector lane is the batch
/// dimension, which stays long no matter how narrow the layer is. `w` is the
/// layer's weight block in its native out_dim x in_dim layout. Each output
/// element accumulates bias-first then ascending input index — the exact
/// order Mlp::forward uses — and rows are independent lanes, so results are
/// bit-identical to the scalar path. Dispatched to AVX2 / AVX-512 codegen on
/// x86-64 at runtime.
void layer_affine_block(const double* in_t, std::size_t n, std::size_t in_dim,
                        const double* w, const double* bias, double* out_t,
                        std::size_t out_dim) noexcept;

}  // namespace rafiki::ml
