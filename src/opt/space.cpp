#include "opt/space.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rafiki::opt {

SearchSpace::SearchSpace(std::vector<Dimension> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("SearchSpace: no dimensions");
  for (const auto& d : dims_) {
    if (d.hi < d.lo) throw std::invalid_argument("SearchSpace: bad bounds for " + d.name);
  }
}

std::vector<double> SearchSpace::random_point(Rng& rng) const {
  std::vector<double> point(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    point[i] = rng.uniform(dims_[i].lo, dims_[i].hi);
    if (dims_[i].integral) point[i] = std::round(point[i]);
  }
  return point;
}

std::vector<double> SearchSpace::snap(std::vector<double> point) const {
  for (std::size_t i = 0; i < dims_.size() && i < point.size(); ++i) {
    point[i] = std::clamp(point[i], dims_[i].lo, dims_[i].hi);
    if (dims_[i].integral) point[i] = std::round(point[i]);
  }
  return point;
}

bool SearchSpace::feasible(std::span<const double> point) const {
  return violation(point) == 0.0;
}

double SearchSpace::violation(std::span<const double> point) const {
  double total = 0.0;
  for (std::size_t i = 0; i < dims_.size() && i < point.size(); ++i) {
    const auto& d = dims_[i];
    if (point[i] < d.lo) total += d.lo - point[i];
    if (point[i] > d.hi) total += point[i] - d.hi;
    if (d.integral) total += std::abs(point[i] - std::round(point[i]));
  }
  return total;
}

std::vector<double> SearchSpace::level_values(std::size_t dim_index,
                                              std::size_t levels) const {
  const auto& d = dims_.at(dim_index);
  std::vector<double> values;
  if (levels <= 1 || d.hi == d.lo) {
    values.push_back(d.integral ? std::round(d.lo) : d.lo);
    return values;
  }
  for (std::size_t k = 0; k < levels; ++k) {
    double v = d.lo + (d.hi - d.lo) * static_cast<double>(k) /
                          static_cast<double>(levels - 1);
    if (d.integral) v = std::round(v);
    values.push_back(v);
  }
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::size_t SearchSpace::grid_size(std::span<const std::size_t> levels) const {
  std::size_t total = 1;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    total *= level_values(i, levels[i]).size();
  }
  return total;
}

std::vector<std::vector<double>> SearchSpace::grid(
    std::span<const std::size_t> levels) const {
  if (levels.size() != dims_.size()) {
    throw std::invalid_argument("SearchSpace::grid: levels size mismatch");
  }
  std::vector<std::vector<double>> per_dim(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) per_dim[i] = level_values(i, levels[i]);

  std::vector<std::vector<double>> points;
  std::vector<std::size_t> counter(dims_.size(), 0);
  for (;;) {
    std::vector<double> point(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) point[i] = per_dim[i][counter[i]];
    points.push_back(std::move(point));
    std::size_t i = 0;
    while (i < dims_.size()) {
      if (++counter[i] < per_dim[i].size()) break;
      counter[i] = 0;
      ++i;
    }
    if (i == dims_.size()) break;
  }
  return points;
}

namespace {

std::vector<Dimension> select_dims(const std::vector<Dimension>& full,
                                   const std::vector<std::size_t>& active) {
  if (active.empty()) throw std::invalid_argument("SubspaceMap: no active dimensions");
  std::vector<Dimension> dims;
  dims.reserve(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i] >= full.size()) {
      throw std::invalid_argument("SubspaceMap: active index out of range");
    }
    if (i > 0 && active[i] <= active[i - 1]) {
      throw std::invalid_argument("SubspaceMap: active indices must be strictly increasing");
    }
    dims.push_back(full[active[i]]);
  }
  return dims;
}

}  // namespace

SubspaceMap::SubspaceMap(std::vector<Dimension> full_dims, std::vector<std::size_t> active,
                         std::vector<double> pinned)
    : active_(std::move(active)),
      pinned_(std::move(pinned)),
      reduced_(select_dims(full_dims, active_)) {
  if (pinned_.size() != full_dims.size()) {
    throw std::invalid_argument("SubspaceMap: pinned size must match full dimensions");
  }
}

std::vector<double> SubspaceMap::expand(std::span<const double> reduced_point) const {
  std::vector<double> full = pinned_;
  const std::size_t n = std::min(reduced_point.size(), active_.size());
  for (std::size_t i = 0; i < n; ++i) full[active_[i]] = reduced_point[i];
  return full;
}

std::vector<double> SubspaceMap::restrict(std::span<const double> full_point) const {
  std::vector<double> reduced;
  reduced.reserve(active_.size());
  for (std::size_t index : active_) {
    reduced.push_back(index < full_point.size() ? full_point[index] : 0.0);
  }
  return reduced;
}

}  // namespace rafiki::opt
