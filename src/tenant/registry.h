// The tenant registry: the fleet's authoritative map from tenant id to that
// tenant's admission quota and (once attach_rafiki runs) its own OnlineTuner
// — private memo cache, private GA state, private reconfiguration counters.
// Tenants are dense ids [0, size); the registry is sized at construction and
// never grows, so find() is a bounds check plus an index — no lock on the
// admission path.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>

#include "serve/types.h"
#include "tenant/quota.h"

namespace rafiki::core {
class OnlineTuner;
}

namespace rafiki::tenant {

/// Everything the fleet tracks for one tenant namespace. Immovable (the
/// quota owns a mutex), so the registry stores states in a deque.
struct TenantState {
  TenantState(serve::TenantId id_, QuotaOptions quota_options)
      : id(id_), quota(std::move(quota_options)) {}

  TenantState(const TenantState&) = delete;
  TenantState& operator=(const TenantState&) = delete;

  const serve::TenantId id;
  /// The tenant's own tuner (null until TenantFleet::attach_rafiki). All
  /// tenants share one trained Rafiki model, but each tuner memoizes and
  /// optimizes independently — tenant A's regime history never warms or
  /// poisons tenant B's cache.
  std::unique_ptr<core::OnlineTuner> tuner;
  TenantQuota quota;
};

class TenantRegistry {
 public:
  /// Builds `tenants` dense states; `quota_for` (may be null) supplies each
  /// tenant's quota — null means every tenant is unlimited.
  TenantRegistry(std::size_t tenants,
                 const std::function<QuotaOptions(serve::TenantId)>& quota_for);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// The tenant's state, or nullptr for an id outside [0, size()) — the
  /// fleet maps that to kNotReady (unknown tenant), not a crash.
  TenantState* find(serve::TenantId id) noexcept {
    return id < states_.size() ? &states_[id] : nullptr;
  }
  const TenantState* find(serve::TenantId id) const noexcept {
    return id < states_.size() ? &states_[id] : nullptr;
  }

  TenantState& at(std::size_t index) { return states_[index]; }
  const TenantState& at(std::size_t index) const { return states_[index]; }
  std::size_t size() const noexcept { return states_.size(); }

 private:
  std::deque<TenantState> states_;
};

}  // namespace rafiki::tenant
