# Empty dependencies file for trace_characterization.
# This may be replaced when dependencies are built.
