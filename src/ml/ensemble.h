// Ensemble of independently initialized surrogate networks (Section 3.6.2):
// the paper trains the same topology from 20 different initial weight
// vectors, prunes the 30% with the highest training error and averages the
// rest (leaving 14 active networks in the default setting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/mlp.h"
#include "ml/trainbr.h"

namespace rafiki::ml {

struct EnsembleOptions {
  std::size_t n_nets = 20;
  /// Fraction of worst-training-error networks removed before averaging.
  double prune_fraction = 0.3;
  /// Hidden-layer sizes; the paper settles on [14, 4] by trial and error.
  std::vector<std::size_t> hidden = {14, 4};
  TrainOptions train;
  std::uint64_t seed = 1234;
  /// Worker threads for member training: 0 = one per hardware thread, 1 =
  /// strictly serial. The paper's members train from independent initial
  /// weights, so they parallelize embarrassingly; per-net RNGs are pre-split
  /// in serial seed order, which keeps the trained weights bit-identical at
  /// any thread count (asserted in determinism_test).
  std::size_t train_threads = 0;
};

class SurrogateEnsemble {
 public:
  /// Fits the ensemble on raw (unnormalized) feature rows and targets;
  /// normalization to [-1, 1] is handled internally and reused at predict
  /// time, mirroring mapminmax + trainbr.
  void fit(const std::vector<std::vector<double>>& X, std::span<const double> y,
           const EnsembleOptions& options = {});

  /// Predicted target for one raw feature row (averaged over active nets).
  double predict(std::span<const double> x) const;

  /// Mean prediction plus the cross-member spread of the active networks
  /// (sample stddev in raw target units) — the uncertainty band the serve
  /// layer attaches to Predict responses.
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Prediction predict_with_uncertainty(std::span<const double> x) const;

  /// Batched prediction over raw feature rows: one matrix-matrix product per
  /// layer per member (Mlp::forward_batch) instead of a matrix-vector product
  /// per row. Bit-for-bit identical to calling predict() on each row. The
  /// Matrix overloads are the allocation-lean hot path (one flat block, no
  /// per-row vectors); the vector-of-rows forms delegate to them.
  std::vector<double> predict_batch(const Matrix& x_rows) const;
  std::vector<double> predict_batch(const std::vector<std::vector<double>>& x_rows) const;
  std::vector<Prediction> predict_batch_with_uncertainty(const Matrix& x_rows) const;
  std::vector<Prediction> predict_batch_with_uncertainty(
      const std::vector<std::vector<double>>& x_rows) const;

  bool trained() const noexcept { return !nets_.empty(); }
  std::size_t total_nets() const noexcept { return nets_.size(); }
  std::size_t active_nets() const noexcept;
  std::size_t feature_count() const noexcept { return norm_in_.features(); }
  /// Training MSE of each member (normalized target units), for tests.
  const std::vector<double>& member_errors() const noexcept { return errors_; }
  const std::vector<bool>& active_mask() const noexcept { return active_; }
  /// Trained member networks, for the determinism regression test: two runs
  /// from the same seed must produce bit-identical weight vectors.
  const std::vector<Mlp>& nets() const noexcept { return nets_; }

 private:
  Normalizer norm_in_;
  Normalizer norm_out_;
  std::vector<Mlp> nets_;
  std::vector<double> errors_;
  std::vector<bool> active_;
};

}  // namespace rafiki::ml
